"""Tests for repro.core.classify (the Fig. 9 access taxonomy)."""

import numpy as np
import pytest

from repro.core.classify import AccessClass, Classification, classify_log

R, W = False, True


def classify(records):
    """records: list of (block, is_write, logical_stage)."""
    blocks = np.array([r[0] for r in records], dtype=np.int64)
    is_write = np.array([r[1] for r in records], dtype=bool)
    stage = np.array([r[2] for r in records], dtype=np.int32)
    labels = classify_log(blocks, is_write, stage)
    from repro.core.classify import _CLASS_OF_CODE

    return [_CLASS_OF_CODE[int(code)] for code in labels]


class TestRequired:
    def test_first_read_is_compulsory(self):
        assert classify([(1, R, 0)]) == [AccessClass.REQUIRED]

    def test_final_write_is_compulsory(self):
        labels = classify([(1, R, 0), (1, W, 0)])
        assert labels == [AccessClass.REQUIRED, AccessClass.REQUIRED]

    def test_long_range_reuse_is_required(self):
        labels = classify([(1, R, 0), (1, R, 3)])
        assert labels[1] is AccessClass.REQUIRED

    def test_write_reread_far_later_is_required(self):
        labels = classify([(1, W, 0), (1, R, 5)])
        assert labels[0] is AccessClass.REQUIRED
        assert labels[1] is AccessClass.REQUIRED

    def test_write_overwritten_is_required(self):
        labels = classify([(1, W, 0), (1, W, 1)])
        assert labels == [AccessClass.REQUIRED, AccessClass.REQUIRED]


class TestSpills:
    def test_wr_spill_labels_both_sides(self):
        labels = classify([(1, W, 0), (1, R, 1)])
        assert labels == [AccessClass.WR_SPILL, AccessClass.WR_SPILL]

    def test_rr_spill(self):
        labels = classify([(1, R, 0), (1, R, 1)])
        assert labels[1] is AccessClass.RR_SPILL

    def test_spill_chain(self):
        # Written in stage 0, read in 1, read again in 2.
        labels = classify([(1, W, 0), (1, R, 1), (1, R, 2)])
        assert labels[0] is AccessClass.WR_SPILL
        assert labels[1] is AccessClass.WR_SPILL
        assert labels[2] is AccessClass.RR_SPILL


class TestContention:
    def test_rr_contention(self):
        labels = classify([(1, R, 0), (1, R, 0)])
        assert labels[1] is AccessClass.RR_CONTENTION

    def test_wr_contention_labels_both_sides(self):
        labels = classify([(1, W, 0), (1, R, 0)])
        assert labels == [AccessClass.WR_CONTENTION, AccessClass.WR_CONTENTION]

    def test_streaming_has_no_contention(self):
        records = [(b, R, 0) for b in range(100)]
        labels = classify(records)
        assert all(label is AccessClass.REQUIRED for label in labels)

    def test_thrashing_is_contention(self):
        records = [(b, R, 0) for b in range(10)] * 3
        labels = classify(records)
        contended = [l for l in labels if l is AccessClass.RR_CONTENTION]
        assert len(contended) == 20  # all but the first pass


class TestInterleavedBlocks:
    def test_blocks_classified_independently(self):
        labels = classify([(1, R, 0), (2, R, 0), (1, R, 0), (2, R, 1)])
        assert labels[2] is AccessClass.RR_CONTENTION  # block 1 same stage
        assert labels[3] is AccessClass.RR_SPILL  # block 2 next stage

    def test_every_access_gets_exactly_one_label(self):
        rng = np.random.default_rng(0)
        n = 500
        records = [
            (int(rng.integers(0, 50)), bool(rng.integers(0, 2)), int(rng.integers(0, 5)))
            for _ in range(n)
        ]
        # Stages must be non-decreasing in program order for the model.
        records.sort(key=lambda r: r[2])
        labels = classify(records)
        assert len(labels) == n


class TestClassification:
    def test_counts_and_fractions(self):
        counts = {cls: 0 for cls in AccessClass}
        counts[AccessClass.REQUIRED] = 60
        counts[AccessClass.RR_CONTENTION] = 40
        cls = Classification(counts=counts)
        assert cls.total == 100
        assert cls.fraction(AccessClass.RR_CONTENTION) == pytest.approx(0.4)
        assert cls.contention_fraction == pytest.approx(0.4)
        assert cls.spill_fraction == 0.0
        assert cls.avoidable == 40

    def test_empty_classification(self):
        cls = Classification(counts={c: 0 for c in AccessClass})
        assert cls.total == 0
        assert cls.fraction(AccessClass.REQUIRED) == 0.0

    def test_empty_log(self):
        labels = classify([])
        assert labels == []


class TestClassifyResult:
    def test_contention_appears_when_footprint_exceeds_cache(
        self, discrete, tiny_options
    ):
        from repro.core.classify import classify_result
        from repro.pipeline.builder import PipelineBuilder
        from repro.pipeline.patterns import AccessPattern
        from repro.pipeline.stage import BufferAccess
        from repro.sim.engine import simulate
        from repro.units import MB

        b = PipelineBuilder("t")
        b.buffer("big", 64 * MB)
        b.copy_h2d("big")
        b.gpu_kernel(
            "k",
            flops=1e6,
            reads=[BufferAccess("big_dev", AccessPattern.RANDOM, passes=4.0)],
        )
        result = simulate(b.build(), discrete, tiny_options)
        cls = classify_result(result)
        assert cls.counts[AccessClass.RR_CONTENTION] > 0
        assert cls.contention_fraction > 0.2

    def test_streaming_pipeline_mostly_required(self, discrete, tiny_options):
        from repro.core.classify import classify_result
        from repro.pipeline.builder import PipelineBuilder
        from repro.pipeline.stage import BufferAccess
        from repro.sim.engine import simulate
        from repro.units import MB

        b = PipelineBuilder("t")
        b.buffer("data", 32 * MB)
        b.copy_h2d("data")
        b.gpu_kernel("k", flops=1e6, reads=[BufferAccess("data_dev")])
        result = simulate(b.build(), discrete, tiny_options)
        cls = classify_result(result)
        # One sweep over streamed data: contention should be negligible.
        assert cls.contention_fraction < 0.05
