"""Job store eviction safety and waiter wakeup semantics.

Two serve-layer bugfixes pinned here:

* Eviction could drop a terminal job an SSE client was about to replay
  (its GET then 404ed).  Now jobs with live waiters — and jobs inside a
  grace window after finishing — are never evicted.
* ``Job`` waiters used ``asyncio.Condition``; before Python 3.12 a
  cancellation during ``Condition.wait``'s lock reacquisition could be
  lost or corrupt the lock (cpython gh-90467), and every SSE disconnect
  cancels a waiter.  The rotating-:class:`asyncio.Event` replacement has
  no lock, so cancellation always propagates cleanly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.jobs import DONE, QUEUED, RUNNING, Job, JobStore
from repro.serve.schemas import JobSpec


def _spec(seed: int = 0) -> JobSpec:
    return JobSpec(
        kind="sweep",
        benchmarks=("lonestar/bfs",),
        versions=("copy", "limited-copy"),
        scale=1 / 128,
        seed=seed,
    )


def _run(coro):
    return asyncio.run(coro)


class TestEvictionSafety:
    def test_grace_window_shields_fresh_terminal_jobs(self):
        async def scenario():
            store = JobStore(max_jobs=1, evict_grace_s=60.0)
            first, _ = store.submit(_spec(seed=1))
            await store.finish(first, DONE, result={})
            store.submit(_spec(seed=2))
            return store.get(first.id)

        assert _run(scenario()) is not None

    def test_old_terminal_jobs_are_evicted_after_grace(self):
        async def scenario():
            store = JobStore(max_jobs=1, evict_grace_s=0.0)
            first, _ = store.submit(_spec(seed=1))
            await store.finish(first, DONE, result={})
            store.submit(_spec(seed=2))
            return store.get(first.id)

        assert _run(scenario()) is None

    def test_live_waiter_shields_a_finishing_job(self):
        """The 404 race: an SSE stream is parked on a running job; the job
        finishes and — before the waiter resumes — a submission triggers
        eviction.  The registered waiter must shield the job so its
        terminal replay still finds it."""

        async def scenario():
            store = JobStore(max_jobs=1, evict_grace_s=0.0)
            first, _ = store.submit(_spec(seed=1))
            await store.mark_running(first)
            waiter = asyncio.ensure_future(
                first.wait_events(len(first.events), timeout=5.0)
            )
            await asyncio.sleep(0)  # let the waiter park and register
            assert first.waiters == 1
            # Wakes the waiter, but it has not resumed yet when the next
            # submission runs eviction.
            await store.finish(first, DONE, result={})
            store.submit(_spec(seed=2))
            survived = store.get(first.id) is not None
            events, terminal = await waiter
            return survived, events, terminal, first.waiters

        survived, events, terminal, waiters = _run(scenario())
        assert survived
        assert terminal is True
        assert [e["event"] for e in events] == ["finished"]
        assert waiters == 0  # the finished waiter deregistered itself

    def test_running_jobs_are_never_evicted(self):
        async def scenario():
            store = JobStore(max_jobs=1, evict_grace_s=0.0)
            first, _ = store.submit(_spec(seed=1))
            await store.mark_running(first)
            store.submit(_spec(seed=2))
            return store.get(first.id)

        job = _run(scenario())
        assert job is not None and job.status == RUNNING


class TestWaiterWakeups:
    def test_publish_wakes_every_parked_waiter(self):
        async def scenario():
            job = Job(id="j", spec=_spec(), content_hash="h")
            waiters = [
                asyncio.ensure_future(job.wait_events(0, timeout=5.0))
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            await job.publish("progress", completed=1)
            return await asyncio.gather(*waiters)

        for events, terminal in _run(scenario()):
            assert [e["event"] for e in events] == ["progress"]
            assert terminal is False

    def test_waiters_across_epochs_see_their_events(self):
        async def scenario():
            job = Job(id="j", spec=_spec(), content_hash="h")
            early = asyncio.ensure_future(job.wait_events(0, timeout=5.0))
            await asyncio.sleep(0)
            await job.publish("one")
            await early
            # A waiter arriving after the first rotation parks on the
            # fresh epoch event and still wakes on the next publish.
            late = asyncio.ensure_future(job.wait_events(1, timeout=5.0))
            await asyncio.sleep(0)
            await job.publish("two")
            return await late

        events, _ = _run(scenario())
        assert [e["event"] for e in events] == ["two"]

    def test_wait_events_times_out_without_events(self):
        async def scenario():
            job = Job(id="j", spec=_spec(), content_hash="h")
            return await job.wait_events(0, timeout=0.01)

        events, terminal = _run(scenario())
        assert events == [] and terminal is False

    def test_wait_terminal_wakes_on_status_flip(self):
        async def scenario():
            job = Job(id="j", spec=_spec(), content_hash="h")

            async def finisher():
                await asyncio.sleep(0.01)
                job.status = DONE
                await job.publish("finished", status=DONE)

            task = asyncio.ensure_future(finisher())
            reached = await job.wait_terminal(timeout=5.0)
            await task
            return reached

        assert _run(scenario()) is True

    def test_cancellation_mid_wait_propagates_and_cleans_up(self):
        """The gh-90467 regression: cancelling a parked waiter must raise
        CancelledError in the waiter and leave the job fully usable."""

        async def scenario():
            job = Job(id="j", spec=_spec(), content_hash="h")
            waiter = asyncio.ensure_future(job.wait_events(0, timeout=5.0))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert job.waiters == 0
            # A publish after the cancelled wait must still wake new waiters.
            fresh = asyncio.ensure_future(job.wait_events(0, timeout=5.0))
            await asyncio.sleep(0)
            await job.publish("alive")
            return await fresh

        events, _ = _run(scenario())
        assert [e["event"] for e in events] == ["alive"]

    def test_no_timeout_wait_blocks_until_publish(self):
        async def scenario():
            job = Job(id="j", spec=_spec(), content_hash="h")
            waiter = asyncio.ensure_future(job.wait_events(0, timeout=None))
            await asyncio.sleep(0)
            assert not waiter.done()
            await job.publish("event")
            return await waiter

        events, _ = _run(scenario())
        assert len(events) == 1

    def test_job_starts_queued(self):
        job = Job(id="j", spec=_spec(), content_hash="h")
        assert job.status == QUEUED and not job.terminal
