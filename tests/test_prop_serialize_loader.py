"""Property-based tests for serialization and the declarative loader."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import discrete_gpu_system
from repro.sim.engine import ENGINE_VERSION, SimOptions, simulate
from repro.sim.resultcache import cache_key
from repro.sim.results import InvariantViolation
from repro.sim.serialize import (
    result_from_dict,
    result_to_dict,
    result_to_full_dict,
    result_to_json,
    results_identical,
    summary_from_json,
)
from repro.workloads.loader import parse_size, pipeline_from_dict

from tests.conftest import TINY_SCALE

# --- parse_size properties ---------------------------------------------------


@given(
    value=st.floats(0.001, 1000.0),
    suffix=st.sampled_from(["B", "KB", "MB", "GB"]),
)
@settings(max_examples=100, deadline=None)
def test_parse_size_matches_arithmetic(value, suffix):
    factor = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3}[suffix]
    expected = int(value * factor)
    if expected <= 0:
        return
    assert parse_size(f"{value}{suffix}") == expected


@given(size=st.integers(1, 10**12))
@settings(max_examples=100, deadline=None)
def test_parse_size_identity_on_integers(size):
    assert parse_size(size) == size


# --- declarative loader round trips ----------------------------------------------


@st.composite
def workload_specs(draw):
    num_buffers = draw(st.integers(1, 4))
    buffers = [
        {
            "name": f"buf{i}",
            "size": draw(st.integers(128 * 1024, 4 * 1024 * 1024)),
        }
        for i in range(num_buffers)
    ]
    stages = []
    for k in range(draw(st.integers(1, 5))):
        target = draw(st.integers(0, num_buffers - 1))
        stages.append(
            {
                "op": draw(st.sampled_from(["gpu", "cpu"])),
                "name": f"s{k}",
                "flops": draw(st.floats(1.0, 1e8)),
                "reads": [
                    {
                        "buffer": f"buf{target}",
                        "pattern": draw(
                            st.sampled_from(
                                ["streaming", "random", "graph", "stencil"]
                            )
                        ),
                        "passes": draw(st.floats(0.5, 4.0)),
                    }
                ],
            }
        )
    return {"name": "prop/app", "buffers": buffers, "stages": stages}


@given(spec=workload_specs())
@settings(max_examples=40, deadline=None)
def test_loaded_pipelines_always_validate(spec):
    pipeline = pipeline_from_dict(spec)
    assert len(pipeline.stages) == len(spec["stages"])
    assert pipeline.topological_order()


@given(spec=workload_specs())
@settings(max_examples=15, deadline=None)
def test_loaded_pipelines_always_simulate(spec):
    pipeline = pipeline_from_dict(spec)
    result = simulate(
        pipeline, discrete_gpu_system(), SimOptions(scale=TINY_SCALE)
    )
    assert result.roi_s >= 0.0
    assert len(result.stages) == len(pipeline.stages)


@given(spec=workload_specs())
@settings(max_examples=15, deadline=None)
def test_serialized_results_are_valid_json_and_consistent(spec):
    pipeline = pipeline_from_dict(spec)
    result = simulate(
        pipeline, discrete_gpu_system(), SimOptions(scale=TINY_SCALE)
    )
    payload = summary_from_json(result_to_json(result))
    assert payload["roi_s"] == pytest.approx(result.roi_s)
    assert len(payload["stages"]) == len(result.stages)
    # Busy times in the payload match the result's accounting.
    for component, busy in payload["busy_s"].items():
        assert busy >= 0.0
    # Per-stage intervals are consistent with the ROI.
    for stage in payload["stages"]:
        assert stage["end_s"] <= payload["roi_s"] + 1e-12


@given(spec=workload_specs())
@settings(max_examples=10, deadline=None)
def test_include_log_round_trips_counts(spec):
    pipeline = pipeline_from_dict(spec)
    result = simulate(
        pipeline, discrete_gpu_system(), SimOptions(scale=TINY_SCALE)
    )
    payload = json.loads(result_to_json(result, include_log=True))
    assert len(payload["log"]["blocks"]) == result.offchip_accesses()
    assert len(payload["log"]["is_write"]) == result.offchip_accesses()


# --- v2-full compatibility across the observe layer --------------------------


def _small_result():
    spec = {
        "name": "compat/app",
        "buffers": [{"name": "buf0", "size": 512 * 1024}],
        "stages": [
            {
                "op": "gpu",
                "name": "s0",
                "flops": 1e6,
                "reads": [{"buffer": "buf0", "pattern": "streaming"}],
            }
        ],
    }
    return simulate(
        pipeline_from_dict(spec),
        discrete_gpu_system(),
        SimOptions(scale=TINY_SCALE),
    )


def test_old_v2_full_payloads_still_deserialize():
    """Pre-violations cache entries (no 'violations' key) must load."""
    result = _small_result()
    payload = result_to_full_dict(result)
    # A clean result never writes the key, so stored payloads from before
    # the field existed and stored payloads from after are byte-identical.
    assert "violations" not in payload
    legacy = json.loads(json.dumps(payload))
    legacy.pop("violations", None)
    restored = result_from_dict(legacy)
    assert restored.violations == ()
    assert results_identical(result, restored)


def test_violations_round_trip_through_v2_full():
    import copy

    flagged = copy.copy(_small_result())
    flagged.violations = (
        InvariantViolation(
            rule="INV001",
            message="busy mismatch",
            ordinal=3,
            component="gpu",
            measured=1.5,
            expected=1.0,
        ),
    )
    payload = result_to_full_dict(flagged)
    assert [entry["rule"] for entry in payload["violations"]] == ["INV001"]
    restored = result_from_dict(json.loads(json.dumps(payload)))
    assert restored.violations == flagged.violations
    assert results_identical(flagged, restored)


def test_engine_version_bump_invalidates_cache_keys():
    """Stale persistent entries are unreachable after an engine bump."""
    from repro.config.system import discrete_gpu_system as system_factory
    from repro.workloads.registry import get

    spec = get("rodinia/kmeans")
    options = SimOptions(scale=TINY_SCALE)
    system = system_factory()
    current = cache_key(spec, "copy", system, options)
    assert current == cache_key(
        spec, "copy", system, options, engine_version=ENGINE_VERSION
    )
    previous = cache_key(
        spec, "copy", system, options, engine_version="repro-sim/1"
    )
    assert previous != current


def test_engine_version_reflects_the_violations_field():
    """The observe layer shipped with a version bump: v1 keys are stale."""
    assert ENGINE_VERSION == "repro-sim/2"
