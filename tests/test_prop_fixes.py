"""Property-based tests for the ``repro lint --fix`` autofix engine.

The generator produces pipelines seeded with the two fixable defects —
uploads nothing reads (dead copies) and host-bounce round trips between
device buffers (fusible chains) — mixed into otherwise healthy copy
pipelines.  The engine must fix to a fixpoint, stay idempotent, never
touch compute stages, and never introduce findings the original pipeline
did not have.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, lint_pipeline
from repro.analysis.dataflow.fixes import apply_fixes
from repro.pipeline.buffers import MemorySpace
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB


@st.composite
def fixable_pipelines(draw):
    """A copy pipeline with 0+ dead uploads and 0+ host-bounce chains."""
    n_inputs = draw(st.integers(1, 3))
    n_dead = draw(st.integers(0, 2))
    n_bounces = draw(st.integers(0, 2))
    b = PipelineBuilder("prop/fixes", metadata={"outputs": ("out",)})
    available = []
    for i in range(n_inputs):
        name = f"in{i}"
        b.buffer(name, draw(st.sampled_from([1 * MB, 2 * MB])))
        b.copy_h2d(name)
        available.append(f"{name}_dev")
    for i in range(n_dead):
        # An upload whose device mirror nothing ever reads: RPL301.
        name = f"unused{i}"
        b.buffer(name, 1 * MB)
        b.copy_h2d(name, name=f"h2d_dead{i}")
    b.buffer("out", 1 * MB)
    b.mirror("out")
    n_kernels = draw(st.integers(1, 3))
    for k in range(n_kernels):
        is_last = k == n_kernels - 1
        target = "out_dev" if is_last else f"tmp{k}"
        if not is_last:
            b.buffer(target, 1 * MB, temporary=True)
        reads = draw(
            st.lists(
                st.sampled_from(available),
                min_size=1,
                max_size=min(3, len(available)),
                unique=True,
            )
        )
        b.gpu_kernel(
            f"k{k}",
            flops=float(draw(st.integers(1, 1000)) * 1000),
            reads=reads,
            writes=[BufferAccess(target)],
        )
        if not is_last and draw(st.booleans()) and n_bounces > 0:
            n_bounces -= 1
            # Round-trip the fresh temporary through a host bounce
            # buffer into a second device buffer: a fusible RPL302
            # chain whose fused form is a device-to-device copy.
            b.buffer(f"bounce{k}", 1 * MB)
            b.buffer(
                f"tmp{k}b", 1 * MB, space=MemorySpace.GPU, temporary=True
            )
            b.copy_d2h(target, f"bounce{k}", name=f"d2h_b{k}", mirror=False)
            b.copy_h2d(
                f"bounce{k}", f"tmp{k}b", name=f"h2d_b{k}", mirror=False
            )
            available.append(f"tmp{k}b")
        else:
            available.append(target)
    b.copy_d2h("out_dev", "out", name="d2h_out")
    return b.build()


def warning_keys(pipeline):
    report = lint_pipeline(pipeline)
    return {
        (d.rule, d.stage, d.buffer)
        for d in report.at_least(Severity.WARNING)
    }


def fixable_rules(pipeline):
    return [
        d for d in lint_pipeline(pipeline) if d.rule in ("RPL301", "RPL302")
    ]


@given(pipeline=fixable_pipelines())
@settings(max_examples=50, deadline=None)
def test_fix_is_idempotent(pipeline):
    once = apply_fixes(pipeline)
    twice = apply_fixes(once.pipeline)
    assert not twice.changed
    assert twice.pipeline == once.pipeline


@given(pipeline=fixable_pipelines())
@settings(max_examples=50, deadline=None)
def test_fix_reaches_fixpoint_unless_guarded(pipeline):
    result = apply_fixes(pipeline)
    if not result.skipped:
        assert fixable_rules(result.pipeline) == []


@given(pipeline=fixable_pipelines())
@settings(max_examples=50, deadline=None)
def test_fix_never_introduces_findings(pipeline):
    result = apply_fixes(pipeline)
    assert warning_keys(result.pipeline) <= warning_keys(pipeline)


@given(pipeline=fixable_pipelines())
@settings(max_examples=50, deadline=None)
def test_fix_preserves_compute_stages(pipeline):
    result = apply_fixes(pipeline)

    def compute(p):
        return sorted(
            (s.name, s.kind, s.flops, s.reads, s.writes)
            for s in p.stages
            if s.flops > 0
        )

    assert compute(result.pipeline) == compute(pipeline)


@given(pipeline=fixable_pipelines())
@settings(max_examples=50, deadline=None)
def test_fix_only_removes_copies(pipeline):
    result = apply_fixes(pipeline)
    before = {s.name for s in pipeline.stages}
    after = {s.name for s in result.pipeline.stages}
    assert after <= before
    by_name = {s.name: s for s in pipeline.stages}
    for removed in before - after:
        assert by_name[removed].kind.value == "copy"
