"""Property-based tests for persistent cache keying.

The cache key must be a pure function of the run's semantic inputs:
stable across process restarts (no dependence on hash randomization or
object identity), insensitive to dict ordering, and sensitive to every
:class:`SimOptions` field.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import discrete_gpu_system
from repro.sim.engine import SimOptions
from repro.sim.resultcache import cache_key, canonical, spec_fingerprint
from repro.workloads.registry import get, simulatable_specs

SPEC = get("rodinia/kmeans")
DISCRETE = discrete_gpu_system()


def sim_options_strategy():
    return st.builds(
        SimOptions,
        seed=st.integers(0, 2**31 - 1),
        scale=st.sampled_from([1.0, 1 / 2, 1 / 16, 1 / 32, 1 / 64, 1 / 128]),
        line_bytes=st.sampled_from([32, 64, 128, 256]),
        collect_log=st.booleans(),
        dram_row_model=st.booleans(),
    )


@given(options=sim_options_strategy())
@settings(max_examples=50, deadline=None)
def test_key_is_deterministic_per_options(options):
    first = cache_key(SPEC, "copy", DISCRETE, options)
    second = cache_key(SPEC, "copy", DISCRETE, options)
    assert first == second
    assert len(first) == 64 and set(first) <= set("0123456789abcdef")


@given(a=sim_options_strategy(), b=sim_options_strategy())
@settings(max_examples=100, deadline=None)
def test_key_equal_iff_options_equal(a, b):
    key_a = cache_key(SPEC, "copy", DISCRETE, a)
    key_b = cache_key(SPEC, "copy", DISCRETE, b)
    assert (key_a == key_b) == (a == b)


@given(
    items=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
        min_size=1,
        max_size=8,
    ),
    seed=st.randoms(),
)
@settings(max_examples=50, deadline=None)
def test_canonical_json_is_insensitive_to_dict_order(items, seed):
    entries = list(items.items())
    seed.shuffle(entries)
    shuffled = dict(entries)
    assert json.dumps(canonical(items), sort_keys=True) == json.dumps(
        canonical(shuffled), sort_keys=True
    )


@given(spec=st.sampled_from(simulatable_specs()))
@settings(max_examples=20, deadline=None)
def test_spec_fingerprint_is_json_stable(spec):
    fingerprint = spec_fingerprint(spec)
    assert "build" not in fingerprint
    text = json.dumps(fingerprint, sort_keys=True)
    assert json.loads(text) == fingerprint


def test_distinct_benchmarks_never_collide():
    options = SimOptions(scale=1 / 32)
    keys = {
        cache_key(spec, "copy", DISCRETE, options)
        for spec in simulatable_specs()
    }
    assert len(keys) == len(simulatable_specs())


def test_key_is_stable_across_process_restarts():
    """Two interpreters with different hash seeds agree on the key."""
    src_dir = pathlib.Path(__file__).resolve().parent.parent / "src"
    script = (
        "from repro.sim.engine import SimOptions\n"
        "from repro.sim.resultcache import cache_key\n"
        "from repro.config.system import discrete_gpu_system\n"
        "from repro.workloads.registry import get\n"
        "print(cache_key(get('rodinia/kmeans'), 'copy', discrete_gpu_system(),"
        " SimOptions(scale=1/32, seed=11)))\n"
    )
    keys = []
    for hash_seed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            capture_output=True,
            text=True,
            env=env,
        ).stdout.strip()
        keys.append(output)
    in_process = cache_key(
        get("rodinia/kmeans"),
        "copy",
        discrete_gpu_system(),
        SimOptions(scale=1 / 32, seed=11),
    )
    assert keys[0] == keys[1] == in_process
