"""Shared fixtures: tiny-scale simulation options and small pipelines."""

from __future__ import annotations

import os

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess
from repro.sim.engine import SimOptions
from repro.units import MB

#: Scale used throughout the test suite: big enough for cache behaviour to
#: be non-trivial, small enough that a full pipeline simulates in ~10ms.
TINY_SCALE = 1 / 128


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/*.json figure fixtures instead of "
        "comparing against them",
    )


@pytest.fixture(scope="session", autouse=True)
def _isolated_sweep_cache(tmp_path_factory):
    """Point the persistent sweep cache at a throwaway directory.

    Anything in the suite that falls back to the default cache location
    (CLI commands under test, runners built without an explicit dir) must
    not read from or write to the developer's real ~/.cache/repro-sweeps.
    """
    cache_dir = tmp_path_factory.mktemp("repro-sweep-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def tiny_options() -> SimOptions:
    return SimOptions(scale=TINY_SCALE, seed=7)


@pytest.fixture
def golden_json(request):
    """Compare a payload against a golden JSON fixture (or regenerate it).

    ``golden_json("serve/bad_json", payload)`` pins ``payload`` against
    ``tests/fixtures/serve/bad_json.json``; running pytest with
    ``--update-goldens`` rewrites the fixture instead of comparing.
    """
    import json
    from pathlib import Path

    def check(name: str, payload) -> None:
        path = Path(__file__).parent / "fixtures" / f"{name}.json"
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if request.config.getoption("--update-goldens"):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(rendered)
            return
        assert path.exists(), (
            f"missing golden fixture {path}; run pytest --update-goldens"
        )
        assert json.loads(path.read_text()) == payload, (
            f"payload drifted from golden {path.name}; if intentional, run "
            f"pytest --update-goldens and review the diff"
        )

    return check


@pytest.fixture
def discrete():
    return discrete_gpu_system()


@pytest.fixture
def heterogeneous():
    return heterogeneous_processor()


def build_offload_pipeline(
    name: str = "test/offload",
    data_mb: int = 8,
    result_mb: int = 2,
    iterations: int = 2,
) -> "Pipeline":
    """A miniature kmeans-shaped pipeline: h2d, loop(kernel, d2h, cpu), out."""
    b = PipelineBuilder(name, metadata={"outputs": ("result",)})
    b.buffer("data", data_mb * MB)
    b.buffer("result", result_mb * MB)
    b.copy_h2d("data", chunkable=True)
    b.mirror("result")
    for i in range(iterations):
        b.gpu_kernel(
            f"map_{i}",
            flops=5e7,
            reads=[BufferAccess("data_dev", AccessPattern.STREAMING)],
            writes=[BufferAccess("result_dev", AccessPattern.STREAMING)],
            efficiency=0.5,
            chunkable=True,
        )
        b.copy_d2h("result_dev", "result", name=f"d2h_{i}", chunkable=True)
        b.cpu_stage(
            f"reduce_{i}",
            flops=1e6,
            reads=[BufferAccess("result", AccessPattern.STREAMING)],
            occupancy=0.25,
            chunkable=True,
            migratable=True,
        )
    return b.build()


@pytest.fixture
def offload_pipeline():
    return build_offload_pipeline()
