"""End-to-end integration tests: one benchmark per suite, both versions.

These exercise the entire stack — workload construction, porting transform,
trace generation, cache/memory simulation, scheduling, and the analytical
models — and check cross-module consistency invariants.
"""

import numpy as np
import pytest

from repro.core.classify import classify_result
from repro.core.footprint import footprint_breakdown
from repro.core.opportunity import opportunity_report
from repro.core.overlap import ComponentTimes, component_overlap_runtime
from repro.core.migrate import migrated_compute_runtime
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE

REPRESENTATIVES = (
    "lonestar/sssp",
    "pannotia/pr",
    "parboil/stencil",
    "rodinia/kmeans",
)


@pytest.fixture(scope="module", params=REPRESENTATIVES)
def pair(request, ):
    from repro.config.system import discrete_gpu_system, heterogeneous_processor

    spec = get(request.param)
    pipeline = spec.pipeline()
    options = SimOptions(scale=TINY_SCALE)
    copy_result = simulate(pipeline, discrete_gpu_system(), options)
    limited_result = simulate(
        remove_copies(pipeline), heterogeneous_processor(), options
    )
    return spec, copy_result, limited_result


class TestCrossModuleConsistency:
    def test_roi_positive_and_finite(self, pair):
        _, copy_result, limited_result = pair
        for result in (copy_result, limited_result):
            assert 0 < result.roi_s < 1.0

    def test_busy_times_bounded_by_roi(self, pair):
        _, copy_result, limited_result = pair
        for result in (copy_result, limited_result):
            for component in Component:
                assert result.busy_time(component) <= result.roi_s * (1 + 1e-9)

    def test_offchip_log_component_counts_consistent(self, pair):
        _, copy_result, _ = pair
        by_component = copy_result.offchip_by_component()
        assert sum(by_component.values()) == copy_result.offchip_accesses()

    def test_limited_copy_has_no_copy_traffic_unless_residual(self, pair):
        spec, _, limited_result = pair
        pipeline = remove_copies(spec.pipeline())
        copy_traffic = limited_result.offchip_by_component()[Component.COPY]
        if pipeline.copy_stages:
            assert copy_traffic > 0
        else:
            assert copy_traffic == 0

    def test_footprint_shrinks_or_holds(self, pair):
        _, copy_result, limited_result = pair
        copy_fp = footprint_breakdown(copy_result).total_bytes
        limited_fp = footprint_breakdown(limited_result).total_bytes
        assert limited_fp <= copy_fp

    def test_classification_partitions_log(self, pair):
        _, copy_result, _ = pair
        classification = classify_result(copy_result)
        assert classification.total == copy_result.offchip_accesses()

    def test_overlap_estimate_bounded(self, pair):
        _, copy_result, _ = pair
        estimate = component_overlap_runtime(ComponentTimes.from_result(copy_result))
        assert estimate.runtime_s <= copy_result.roi_s * 1.0001
        assert estimate.runtime_s >= copy_result.busy_time(Component.GPU) - 1e-12

    def test_migrate_estimate_bounded_by_overlap_sum(self, pair):
        from repro.config.system import discrete_gpu_system

        _, copy_result, _ = pair
        times = ComponentTimes.from_result(copy_result)
        estimate = migrated_compute_runtime(
            times, discrete_gpu_system(), float(copy_result.offchip_bytes())
        )
        assert estimate.runtime_s <= times.cpu_s + times.copy_s + times.gpu_s + 1e-9

    def test_opportunity_report_consistent(self, pair):
        from repro.config.system import discrete_gpu_system

        _, copy_result, _ = pair
        report = opportunity_report(copy_result, discrete_gpu_system())
        assert 0.0 <= report.flop_opportunity_cost <= 1.0
        assert report.gpu_compute_share > 0.5  # GPU does the majority of work

    def test_every_stage_executed_once(self, pair):
        spec, copy_result, _ = pair
        pipeline = spec.pipeline()
        executed = {record.name for record in copy_result.stages}
        assert executed == {stage.name for stage in pipeline.stages}

    def test_stage_ordinals_are_dense(self, pair):
        _, copy_result, _ = pair
        ordinals = sorted(record.ordinal for record in copy_result.stages)
        assert ordinals == list(range(len(copy_result.stages)))

    def test_log_stage_ordinals_valid(self, pair):
        _, copy_result, _ = pair
        if len(copy_result.log_stage):
            assert copy_result.log_stage.max() <= len(copy_result.stages)
            assert copy_result.log_stage.min() >= 0

    def test_touched_blocks_sorted_unique(self, pair):
        _, copy_result, _ = pair
        for blocks in copy_result.touched_blocks.values():
            assert np.array_equal(blocks, np.unique(blocks))
