"""The fault injector itself, and the cache-damage recovery it drives.

Covers rule targeting/decoding, cross-process attempt counting, the
parent-process kill guard, and the :class:`ResultCache` promises: damaged
entries degrade to misses (and are removed), transient I/O errors degrade
to misses (and are *kept*), and the maintenance walkers survive entries
vanishing underneath them.
"""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.config.system import discrete_gpu_system
from repro.experiments.parallel import COPY
from repro.sim.engine import SimOptions
from repro.sim.resultcache import ResultCache, cache_key
from repro.sim.serialize import results_identical
from repro.testing.faults import (
    FAULT_DIR_ENV,
    FAULT_SPEC_ENV,
    FaultInjected,
    FaultRule,
    attempts_recorded,
    decode_rules,
    encode_rules,
    injected_faults,
    maybe_inject,
    plant_corrupt_entry,
    plant_foreign_schema_entry,
    plant_truncated_entry,
)
from repro.workloads.registry import get


class TestRules:
    def test_encode_decode_round_trip(self):
        rules = {
            "a/b:copy": FaultRule("raise"),
            "c/d": FaultRule("hang", times=2, hang_s=1.5),
            "*": FaultRule("kill", times=1),
        }
        assert decode_rules(encode_rules(rules)) == rules

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultRule("explode")

    def test_no_env_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        maybe_inject("any/thing", COPY)  # must not raise

    def test_target_precedence_exact_then_benchmark_then_wildcard(self):
        with injected_faults(
            {
                "a/b:copy": FaultRule("raise"),
                "a/b": FaultRule("hang", hang_s=0.0),
                "*": FaultRule("hang", hang_s=0.0),
            }
        ):
            with pytest.raises(FaultInjected):
                maybe_inject("a/b", "copy")
            maybe_inject("a/b", "limited-copy")  # benchmark rule: harmless hang
            maybe_inject("x/y", "copy")  # wildcard rule: harmless hang

    def test_times_limits_injections_and_counts_attempts(self, tmp_path):
        rules = {"a/b:copy": FaultRule("raise", times=2)}
        with injected_faults(rules, counter_dir=tmp_path):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    maybe_inject("a/b", "copy")
            maybe_inject("a/b", "copy")  # third attempt: fault exhausted
            assert attempts_recorded("a/b:copy") == 3
        assert attempts_recorded("a/b:copy") == 0  # env restored

    def test_kill_in_parent_process_degrades_to_raise(self):
        """``os._exit`` in the parent would take down the test runner; the
        guard must turn the kill into a catchable exception here."""
        with injected_faults({"a/b:copy": FaultRule("kill")}):
            with pytest.raises(FaultInjected, match="refused in parent"):
                maybe_inject("a/b", "copy")

    def test_context_manager_restores_environment(self, tmp_path):
        os.environ.pop(FAULT_SPEC_ENV, None)
        os.environ.pop(FAULT_DIR_ENV, None)
        with injected_faults({"a/b": FaultRule("raise")}, counter_dir=tmp_path):
            assert FAULT_SPEC_ENV in os.environ
            assert os.environ[FAULT_DIR_ENV] == str(tmp_path)
        assert FAULT_SPEC_ENV not in os.environ
        assert FAULT_DIR_ENV not in os.environ


def _stored_entry(tmp_path):
    """A real simulated result stored in a fresh cache; returns (cache, key)."""
    from repro.experiments.parallel import SweepTask, run_tasks
    from repro.config.system import heterogeneous_processor

    spec = get("rodinia/kmeans")
    options = SimOptions(scale=1 / 512, seed=11)
    cache = ResultCache(tmp_path / "cache")
    results, _ = run_tasks(
        [SweepTask(spec, COPY)],
        discrete=discrete_gpu_system(),
        heterogeneous=heterogeneous_processor(),
        options=options,
        jobs=1,
        cache=cache,
    )
    key = cache_key(spec, COPY, discrete_gpu_system(), options)
    assert cache.load(key) is not None
    return cache, key, results[(spec.full_name, COPY)]


class TestCacheDamage:
    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache, key, _ = _stored_entry(tmp_path)
        path = plant_corrupt_entry(cache, key)
        assert cache.load(key) is None
        assert not path.exists()

    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        cache, key, _ = _stored_entry(tmp_path)
        path = plant_truncated_entry(cache, key)
        assert cache.load(key) is None
        assert not path.exists()

    def test_foreign_schema_entry_is_a_miss_and_removed(self, tmp_path):
        cache, key, _ = _stored_entry(tmp_path)
        path = plant_foreign_schema_entry(cache, key)
        assert cache.load(key) is None
        assert not path.exists()

    def test_damaged_entry_heals_through_resimulation(self, tmp_path):
        """End to end: a torn cache write degrades to a re-simulation that
        rewrites the entry bit-identically."""
        cache, key, original = _stored_entry(tmp_path)
        plant_truncated_entry(cache, key)
        cache2, key2, replayed = _stored_entry(tmp_path)
        assert key2 == key
        entry = cache2.load(key)
        assert entry is not None
        assert results_identical(entry.result, original)
        assert results_identical(replayed, original)

    def test_transient_read_error_keeps_the_entry(self, tmp_path, monkeypatch):
        cache, key, _ = _stored_entry(tmp_path)
        path = cache.path_for(key)

        def deny(*args, **kwargs):
            raise PermissionError(13, "injected EACCES", str(path))

        monkeypatch.setattr(gzip, "open", deny)
        assert cache.load(key) is None  # miss, not crash
        monkeypatch.undo()
        assert path.exists()  # healthy file survived the hiccup
        assert cache.load(key) is not None

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load("0" * 64) is None


class TestCacheMaintenanceRaces:
    def test_len_and_size_survive_entries_vanishing(self, tmp_path, monkeypatch):
        cache, key, _ = _stored_entry(tmp_path)
        ghost = cache.path_for("f" * 64)

        real_entries = list(cache.entries())
        monkeypatch.setattr(
            ResultCache, "entries", lambda self: iter(real_entries + [ghost])
        )
        assert len(cache) == 2  # listing itself still counts the ghost...
        assert cache.size_bytes() > 0  # ...but stat'ing it does not raise
        assert cache.clear() == 1  # only the real entry is removable

    def test_entries_skips_stray_files_in_root(self, tmp_path):
        cache, key, _ = _stored_entry(tmp_path)
        (cache.root / "README.txt").write_text("not an entry")
        (cache.root / "aa").mkdir(exist_ok=True)
        (cache.root / "aa" / "notes.md").write_text("also not an entry")
        assert len(cache) == 1

    def test_entries_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert list(cache.entries()) == []
        assert len(cache) == 0
        assert cache.size_bytes() == 0
        assert cache.clear() == 0
