"""Property-based tests for the extension transforms (fusion, dynpar)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.components import GpuConfig
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.dynpar import dynamic_parallelism
from repro.pipeline.fusion import fuse_kernels, migrate_kernels_to_cpu
from repro.pipeline.stage import StageKind
from repro.pipeline.transforms import remove_copies
from repro.units import KB, MB


def kernel_chain(lengths):
    """A linear chain of GPU kernels threaded through temporaries."""
    b = PipelineBuilder("prop", metadata={"outputs": ("buf_out",)})
    b.buffer("buf_in", 1 * MB)
    b.buffer("buf_out", 1 * MB)
    previous = "buf_in"
    for i, flops in enumerate(lengths):
        is_last = i == len(lengths) - 1
        target = "buf_out" if is_last else f"tmp{i}"
        if not is_last:
            b.buffer(target, 1 * MB, temporary=True)
        b.gpu_kernel(
            f"k{i}", flops=float(flops), reads=[previous], writes=[target]
        )
        previous = target
    return b.build()


@given(lengths=st.lists(st.integers(1, 1000), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_fusion_conserves_flops(lengths):
    pipeline = kernel_chain(lengths)
    fused = fuse_kernels(pipeline)
    assert fused.total_flops == pytest.approx(pipeline.total_flops)


@given(lengths=st.lists(st.integers(1, 1000), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_fusion_collapses_unconstrained_chain_fully(lengths):
    pipeline = kernel_chain(lengths)
    fused = fuse_kernels(pipeline)
    # No resources declared: the whole chain fuses into one kernel.
    assert len(fused.stages) == 1
    assert fused.topological_order()


@given(lengths=st.lists(st.integers(1, 1000), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_fusion_keeps_output_buffer(lengths):
    pipeline = kernel_chain(lengths)
    fused = fuse_kernels(pipeline)
    merged = fused.stages[0]
    assert "buf_out" in {a.buffer for a in merged.writes}


@given(
    lengths=st.lists(st.integers(1, 1000), min_size=2, max_size=8),
    threshold=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_cpu_migration_threshold_respected(lengths, threshold):
    pipeline = kernel_chain(lengths)
    limited = pipeline.with_stages(pipeline.stages, limited_copy=True)
    migrated = migrate_kernels_to_cpu(limited, max_flops=float(threshold))
    for original, moved in zip(limited.stages, migrated.stages):
        if original.flops <= threshold:
            assert moved.kind is StageKind.CPU
        else:
            assert moved.kind is StageKind.GPU_KERNEL


def looped_pipeline(iterations):
    b = PipelineBuilder("prop")
    b.buffer("data", 1 * MB)
    b.buffer("flag", 4 * KB)
    for i in range(iterations):
        b.gpu_kernel(f"k{i}", flops=1e6, reads=["data"], writes=["flag"])
        b.cpu_stage(f"check{i}", flops=1.0, reads=["flag"])
    pipeline = b.build()
    return pipeline.with_stages(pipeline.stages, limited_copy=True)


@given(iterations=st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_dynpar_preserves_kernels(iterations):
    pipeline = looped_pipeline(iterations)
    transformed = dynamic_parallelism(pipeline)
    kernels_before = {
        s.name for s in pipeline.stages if s.kind is StageKind.GPU_KERNEL
    }
    kernels_after = {
        s.name for s in transformed.stages if s.kind is StageKind.GPU_KERNEL
    }
    assert kernels_before == kernels_after


@given(iterations=st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_dynpar_removes_all_checks_and_stays_acyclic(iterations):
    pipeline = looped_pipeline(iterations)
    transformed = dynamic_parallelism(pipeline)
    assert all(s.kind is StageKind.GPU_KERNEL for s in transformed.stages)
    assert transformed.topological_order()
    assert pipeline.total_flops == pytest.approx(
        transformed.total_flops, rel=1e-6
    )


@given(iterations=st.integers(2, 10))
@settings(max_examples=30, deadline=None)
def test_dynpar_chain_order_preserved(iterations):
    pipeline = looped_pipeline(iterations)
    transformed = dynamic_parallelism(pipeline)
    order = [s.name for s in transformed.topological_order()]
    assert order == [f"k{i}" for i in range(iterations)]
