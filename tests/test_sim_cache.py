"""Tests for repro.sim.cache (set-associative LRU)."""

import numpy as np
import pytest

from repro.config.components import CacheConfig
from repro.sim.cache import SetAssocCache
from repro.trace.stream import AccessStream


def cache_of(lines: int, assoc: int = 2) -> SetAssocCache:
    return SetAssocCache(
        CacheConfig(lines * 128, line_bytes=128, associativity=assoc), name="t"
    )


def run(cache, blocks, writes=None):
    blocks = np.asarray(blocks, dtype=np.int64)
    if writes is None:
        writes = np.zeros(len(blocks), dtype=bool)
    else:
        writes = np.asarray(writes, dtype=bool)
    return cache.access_stream(AccessStream(blocks, writes))


class TestHitsAndMisses:
    def test_first_access_misses_second_hits(self):
        cache = cache_of(8)
        out = run(cache, [3, 3])
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert list(out.blocks) == [3]

    def test_downstream_contains_one_read_per_miss(self):
        cache = cache_of(8)
        out = run(cache, [0, 1, 2, 0, 1])
        assert list(out.blocks) == [0, 1, 2]
        assert not out.is_write.any()

    def test_capacity_eviction(self):
        # Fully-associative single set of 2 lines.
        cache = cache_of(2, assoc=2)
        run(cache, [0, 2, 4])  # same set (num_sets == 1)
        assert 0 not in cache
        assert 2 in cache and 4 in cache

    def test_lru_order_respected(self):
        cache = cache_of(2, assoc=2)
        run(cache, [0, 2, 0, 4])  # touching 0 makes 2 the LRU victim
        assert 0 in cache and 4 in cache
        assert 2 not in cache

    def test_sets_isolate_conflicts(self):
        cache = cache_of(4, assoc=2)  # 2 sets
        # Blocks 0,2,4 map to set 0; block 1 maps to set 1.
        run(cache, [0, 2, 4, 1])
        assert 1 in cache
        assert 0 not in cache  # evicted from set 0


class TestWriteback:
    def test_dirty_eviction_produces_writeback(self):
        cache = cache_of(2, assoc=2)
        out = run(cache, [0, 2, 4], writes=[True, False, False])
        writebacks = out.blocks[out.is_write]
        assert list(writebacks) == [0]

    def test_clean_eviction_silent(self):
        cache = cache_of(2, assoc=2)
        out = run(cache, [0, 2, 4])
        assert not out.is_write.any()

    def test_write_hit_marks_dirty(self):
        cache = cache_of(2, assoc=2)
        run(cache, [0])
        out = run(cache, [0, 2, 4], writes=[True, False, False])
        assert 0 in out.blocks[out.is_write]

    def test_refetched_block_is_clean_again(self):
        cache = cache_of(2, assoc=2)
        run(cache, [0], writes=[True])
        run(cache, [2, 4])  # evicts dirty 0 (writeback), then fills 2,4
        out = run(cache, [0, 2, 4])  # refetch 0 clean; evictions silent
        assert not out.is_write.any()


class TestMaintenance:
    def test_invalidate_drops_without_writeback(self):
        cache = cache_of(4)
        run(cache, [0, 1], writes=[True, True])
        dropped = cache.invalidate([0, 1, 99])
        assert dropped == 2
        assert 0 not in cache and 1 not in cache

    def test_flush_writes_back_dirty_only(self):
        cache = cache_of(4, assoc=4)
        run(cache, [0, 1, 2], writes=[True, False, True])
        written = cache.flush([0, 1, 2, 99])
        assert sorted(written) == [0, 2]
        assert cache.occupancy == 0

    def test_extract_removes_silently(self):
        cache = cache_of(4)
        run(cache, [5], writes=[True])
        assert cache.extract(5)
        assert 5 not in cache
        assert not cache.extract(5)

    def test_drain_returns_all_dirty(self):
        cache = cache_of(8, assoc=8)
        run(cache, [0, 1, 2, 3], writes=[True, True, False, False])
        written = cache.drain()
        assert sorted(written) == [0, 1]
        assert cache.occupancy == 0

    def test_stats_accumulate(self):
        cache = cache_of(8)
        run(cache, [0, 0, 1])
        assert cache.stats.accesses == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_empty_stream(self):
        cache = cache_of(8)
        out = cache.access_stream(AccessStream.empty())
        assert len(out) == 0
        assert cache.stats.accesses == 0

    def test_occupancy_bounded_by_capacity(self):
        cache = cache_of(16, assoc=4)
        run(cache, list(range(1000)))
        assert cache.occupancy <= 16
