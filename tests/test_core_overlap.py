"""Tests for repro.core.overlap (Eq. 1) and repro.core.opportunity."""

import pytest

from repro.config.system import discrete_gpu_system
from repro.core.opportunity import OpportunityReport
from repro.core.overlap import (
    ComponentTimes,
    component_overlap_runtime,
)
from repro.sim.hierarchy import Component


def times(cpu=0.0, copy=0.0, gpu=0.0, cserial=0.0, roi=None):
    if roi is None:
        roi = cpu + copy + gpu
    return ComponentTimes(
        cpu_s=cpu, copy_s=copy, gpu_s=gpu, cserial_s=cserial, roi_s=roi
    )


class TestEquationOne:
    def test_gpu_bound(self):
        estimate = component_overlap_runtime(times(cpu=1.0, copy=2.0, gpu=5.0))
        assert estimate.runtime_s == pytest.approx(5.0)
        assert estimate.bottleneck is Component.GPU

    def test_copy_bound(self):
        estimate = component_overlap_runtime(times(cpu=1.0, copy=7.0, gpu=5.0))
        assert estimate.runtime_s == pytest.approx(7.0)
        assert estimate.bottleneck is Component.COPY
        assert estimate.copy_s == pytest.approx(7.0)

    def test_cserial_added_on_top(self):
        estimate = component_overlap_runtime(
            times(cpu=3.0, copy=1.0, gpu=5.0, cserial=0.5)
        )
        assert estimate.runtime_s == pytest.approx(0.5 + 5.0)
        assert estimate.cserial_s == 0.5

    def test_cserial_subtracted_from_cpu(self):
        # CPU 6s total of which 2 serial: overlappable CPU is 4s < GPU 5s.
        estimate = component_overlap_runtime(
            times(cpu=6.0, copy=1.0, gpu=5.0, cserial=2.0)
        )
        assert estimate.bottleneck is Component.GPU
        assert estimate.runtime_s == pytest.approx(2.0 + 5.0)

    def test_cpu_bound_when_cpu_dominates(self):
        estimate = component_overlap_runtime(times(cpu=10.0, copy=1.0, gpu=2.0))
        assert estimate.bottleneck is Component.CPU
        assert estimate.runtime_s == pytest.approx(10.0)

    def test_estimate_never_exceeds_serialized_sum(self):
        t = times(cpu=3.0, copy=2.0, gpu=4.0, cserial=1.0)
        estimate = component_overlap_runtime(t)
        assert estimate.runtime_s <= t.cpu_s + t.copy_s + t.gpu_s

    def test_estimate_at_least_each_component(self):
        t = times(cpu=3.0, copy=2.0, gpu=4.0, cserial=1.0)
        estimate = component_overlap_runtime(t)
        assert estimate.runtime_s >= t.gpu_s
        assert estimate.runtime_s >= t.copy_s
        assert estimate.runtime_s >= t.cpu_s


class TestComponentTimesValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            times(cpu=-1.0)

    def test_cserial_cannot_exceed_cpu(self):
        with pytest.raises(ValueError, match="Cserial"):
            times(cpu=1.0, cserial=2.0)

    def test_from_result(self, offload_pipeline, discrete, tiny_options):
        from repro.sim.engine import simulate

        result = simulate(offload_pipeline, discrete, tiny_options)
        t = ComponentTimes.from_result(result)
        assert t.roi_s == result.roi_s
        assert t.gpu_s == pytest.approx(result.busy_time(Component.GPU))
        assert 0.0 <= t.cserial_s <= t.cpu_s


class TestOpportunity:
    def make_report(self, roi=10.0, cpu_busy=2.0, gpu_busy=5.0):
        system = discrete_gpu_system()
        return OpportunityReport(
            roi_s=roi,
            cpu_busy_s=cpu_busy,
            gpu_busy_s=gpu_busy,
            cpu_peak_flops=system.cpu.peak_flops,
            gpu_peak_flops=system.gpu.peak_flops,
            cpu_flops_done=1e9,
            gpu_flops_done=19e9,
        )

    def test_utilizations(self):
        report = self.make_report()
        assert report.cpu_utilization == pytest.approx(0.2)
        assert report.gpu_utilization == pytest.approx(0.5)

    def test_gpu_compute_share(self):
        assert self.make_report().gpu_compute_share == pytest.approx(0.95)

    def test_opportunity_cost_bounds(self):
        report = self.make_report()
        assert 0.0 <= report.flop_opportunity_cost <= 1.0

    def test_fully_busy_has_zero_opportunity_cost(self):
        report = self.make_report(roi=10.0, cpu_busy=10.0, gpu_busy=10.0)
        assert report.flop_opportunity_cost == pytest.approx(0.0)

    def test_fully_idle_has_full_opportunity_cost(self):
        report = self.make_report(roi=10.0, cpu_busy=0.0, gpu_busy=0.0)
        assert report.flop_opportunity_cost == pytest.approx(1.0)

    def test_gpu_idle_dominates_opportunity(self):
        # GPU peak is ~6.4x CPU peak, so GPU idling costs more FLOPs.
        gpu_idle = self.make_report(roi=10.0, cpu_busy=10.0, gpu_busy=0.0)
        cpu_idle = self.make_report(roi=10.0, cpu_busy=0.0, gpu_busy=10.0)
        assert gpu_idle.flop_opportunity_cost > cpu_idle.flop_opportunity_cost
