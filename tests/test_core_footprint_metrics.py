"""Tests for repro.core.footprint and repro.core.metrics."""

import numpy as np
import pytest

from repro.core.footprint import (
    SUBSET_ORDER,
    footprint_breakdown,
    subset_label,
)
from repro.core.metrics import geomean, improvement, normalize, safe_ratio
from repro.sim.hierarchy import Component
from repro.sim.results import SimResult


def fake_result(cpu_blocks, gpu_blocks, copy_blocks, line_bytes=128):
    return SimResult(
        pipeline_name="t",
        system_kind="discrete",
        roi_s=1.0,
        stages=(),
        busy={c: [] for c in Component},
        launch_intervals=[],
        line_bytes=line_bytes,
        touched_blocks={
            Component.CPU: np.asarray(sorted(cpu_blocks), dtype=np.int64),
            Component.GPU: np.asarray(sorted(gpu_blocks), dtype=np.int64),
            Component.COPY: np.asarray(sorted(copy_blocks), dtype=np.int64),
        },
    )


class TestFootprintBreakdown:
    def test_exclusive_partition(self):
        result = fake_result(
            cpu_blocks=[1, 2, 3],
            gpu_blocks=[3, 4],
            copy_blocks=[4, 5],
        )
        breakdown = footprint_breakdown(result)
        get = lambda *comps: breakdown.bytes_by_subset.get(
            frozenset(comps), 0
        )
        assert get(Component.CPU) == 2 * 128            # blocks 1,2
        assert get(Component.CPU, Component.GPU) == 128  # block 3
        assert get(Component.GPU, Component.COPY) == 128  # block 4
        assert get(Component.COPY) == 128                # block 5
        assert breakdown.total_bytes == 5 * 128

    def test_bytes_touched_by_component(self):
        result = fake_result([1, 2], [2, 3], [])
        breakdown = footprint_breakdown(result)
        assert breakdown.bytes_touched_by(Component.CPU) == 2 * 128
        assert breakdown.bytes_touched_by(Component.GPU) == 2 * 128
        assert breakdown.bytes_touched_by(Component.COPY) == 0

    def test_fractions_sum_to_one(self):
        result = fake_result([1, 2], [3], [4, 5, 6])
        breakdown = footprint_breakdown(result)
        assert sum(
            breakdown.fraction(s) for s in breakdown.bytes_by_subset
        ) == pytest.approx(1.0)

    def test_normalized_to_other_total(self):
        result = fake_result([1], [], [])
        breakdown = footprint_breakdown(result)
        normalized = breakdown.normalized_to(4 * 128)
        assert normalized[frozenset({Component.CPU})] == pytest.approx(0.25)

    def test_normalized_rejects_zero_baseline(self):
        result = fake_result([1], [], [])
        with pytest.raises(ValueError):
            footprint_breakdown(result).normalized_to(0)

    def test_empty_result(self):
        breakdown = footprint_breakdown(fake_result([], [], []))
        assert breakdown.total_bytes == 0

    def test_subset_labels(self):
        assert subset_label(frozenset({Component.CPU})) == "cpu"
        assert subset_label(frozenset({Component.CPU, Component.GPU})) == "cpu+gpu"
        assert subset_label(frozenset()) == "untouched"

    def test_subset_order_covers_all_nonempty_combinations(self):
        assert len(SUBSET_ORDER) == 7
        assert len(set(SUBSET_ORDER)) == 7


class TestMetrics:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_normalize(self):
        assert normalize({"a": 2.0, "b": 4.0}, 2.0) == {"a": 1.0, "b": 2.0}

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize({"a": 1.0}, 0.0)

    def test_safe_ratio(self):
        assert safe_ratio(1.0, 2.0) == 0.5
        assert safe_ratio(1.0, 0.0) == 0.0
        assert safe_ratio(1.0, 0.0, default=-1.0) == -1.0

    def test_improvement(self):
        assert improvement(10.0, 6.3) == pytest.approx(0.37)
        assert improvement(10.0, 10.0) == 0.0
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)
