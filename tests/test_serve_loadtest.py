"""The ``repro loadtest`` harness and the CI load smoke.

The smoke is the ISSUE's acceptance scenario scaled to test time: ~200
concurrent sweep submissions with a high duplicate ratio against an
in-process server, asserting the duplicates deduplicated down to one
computation per content hash and that warm hits never re-simulate.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve.loadtest import (
    LOADTEST_SCHEMA,
    LoadTestConfig,
    check_report,
    loadtest_in_process,
    render_report,
)

FAST_SCALE = 1 / 256


class TestRequestMix:
    def test_bodies_deterministic_under_seed(self):
        config = LoadTestConfig(requests=50, duplicate_ratio=0.8, seed=7)
        assert config.bodies() == config.bodies()
        reordered = LoadTestConfig(requests=50, duplicate_ratio=0.8, seed=8)
        assert sorted(
            map(json.dumps, config.bodies())
        ) == sorted(map(json.dumps, reordered.bodies()))

    def test_duplicate_ratio_shapes_the_mix(self):
        config = LoadTestConfig(requests=100, duplicate_ratio=0.9)
        assert config.distinct_jobs() == 10
        seeds = [body["seed"] for body in config.bodies()]
        assert len(set(seeds)) == 10
        assert seeds.count(0) == 91  # the hot job: 90 duplicates + its own

    def test_all_duplicates_still_one_distinct_job(self):
        config = LoadTestConfig(requests=10, duplicate_ratio=1.0)
        assert config.distinct_jobs() == 1
        assert {body["seed"] for body in config.bodies()} == {0}

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            LoadTestConfig(requests=0).bodies()
        with pytest.raises(ValueError):
            LoadTestConfig(duplicate_ratio=1.5).bodies()


class TestCheckReport:
    def _report(self, **overrides):
        report = {
            "schema": LOADTEST_SCHEMA,
            "config": {"requests": 100, "distinct_jobs": 10},
            "storm": {"requests": 100, "errors": 0, "wall_s": 1.0},
            "warm": {
                "requests": 10,
                "errors": 0,
                "outer_s": {"p50": 0.01, "p95": 0.02, "max": 0.03},
            },
            "server": {
                "computed_runs": 20,
                "warm_phase_computed_runs": 0,
            },
        }
        for key, value in overrides.items():
            section, _, field = key.partition(".")
            report[section][field] = value
        return report

    def test_clean_report_passes(self):
        assert check_report(self._report()) == []

    def test_dedup_failure_flagged(self):
        problems = check_report(self._report(**{"server.computed_runs": 150}))
        assert any("dedup failed" in problem for problem in problems)

    def test_warm_recompute_flagged(self):
        problems = check_report(
            self._report(**{"server.warm_phase_computed_runs": 2})
        )
        assert any("re-simulated" in problem for problem in problems)

    def test_slow_warm_hits_flagged(self):
        report = self._report()
        report["warm"]["outer_s"]["p50"] = 9.0
        problems = check_report(report, warm_p50_bound_s=2.0)
        assert any("p50" in problem for problem in problems)

    def test_request_errors_flagged(self):
        problems = check_report(self._report(**{"storm.errors": 3}))
        assert any("storm" in problem for problem in problems)


class TestLoadSmoke:
    def test_200_requests_high_duplicate_ratio(self):
        """The CI smoke: computed runs stay far below the request count
        and the warm phase is answered entirely from the ResultCache."""
        config = LoadTestConfig(
            requests=200,
            duplicate_ratio=0.9,
            concurrency=32,
            scale=FAST_SCALE,
            warm_requests=10,
            job_timeout_s=300.0,
        )
        report = loadtest_in_process(config)
        assert report["schema"] == LOADTEST_SCHEMA
        # Generous p50 bound: this catches hangs, not slow CI machines.
        problems = check_report(report, warm_p50_bound_s=10.0)
        assert problems == [], "\n".join(problems)
        server = report["server"]
        assert server["submitted"] == 210
        # 20 distinct jobs x 2 versions; every duplicate coalesced or
        # answered warm.  Exactly-once per content hash.
        assert server["computed_runs"] == 2 * report["config"]["distinct_jobs"]
        assert server["warm_phase_computed_runs"] == 0
        assert report["storm"]["errors"] == 0
        assert set(report["storm_statuses"]) == {"done"}
        rendered = render_report(report)
        assert "dedup:" in rendered and "210 submitted" in rendered


class TestCli:
    def test_rejects_bad_duplicate_ratio(self, capsys):
        assert main(["loadtest", "--duplicate-ratio", "1.5"]) == 2
        assert "duplicate-ratio" in capsys.readouterr().err

    def test_rejects_zero_requests(self, capsys):
        assert main(["loadtest", "--requests", "0"]) == 2
        assert "requests" in capsys.readouterr().err

    def test_rejects_unparseable_url(self, capsys):
        assert main(["loadtest", "--url", "nonsense"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_in_process_run_with_check(self, capsys):
        code = main(
            [
                "loadtest",
                "--requests", "12",
                "--duplicate-ratio", "0.75",
                "--concurrency", "8",
                "--scale", str(FAST_SCALE),
                "--warm-requests", "3",
                "--warm-p50-bound", "10.0",
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "checks passed" in out

    def test_json_output_is_the_report(self, capsys):
        code = main(
            [
                "loadtest",
                "--requests", "4",
                "--duplicate-ratio", "0.5",
                "--scale", str(FAST_SCALE),
                "--warm-requests", "0",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == LOADTEST_SCHEMA
        assert report["server"]["submitted"] == 4
