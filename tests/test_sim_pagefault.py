"""Tests for repro.sim.pagefault."""

import numpy as np
import pytest

from repro.config.system import PageFaultConfig
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess, StageKind
from repro.sim.pagefault import PageFaultModel, premapped_pages
from repro.trace.generator import BufferLayout
from repro.units import KB


def build_pipeline():
    b = PipelineBuilder("t")
    b.buffer("input", 64 * KB)     # read first: true input
    b.buffer("output", 64 * KB)    # written first: unmapped at ROI start
    b.buffer("scratch", 64 * KB, temporary=True)
    b.gpu_kernel(
        "k",
        flops=1.0,
        reads=[BufferAccess("input")],
        writes=[BufferAccess("output"), BufferAccess("scratch")],
    )
    return b.build()


class TestPremappedPages:
    def test_inputs_premapped_outputs_not(self):
        pipeline = build_pipeline()
        layout = BufferLayout(pipeline)
        mapped = premapped_pages(pipeline, layout)
        input_page = layout.base_block("input") // layout.blocks_per_page
        output_page = layout.base_block("output") // layout.blocks_per_page
        assert input_page in mapped
        assert output_page not in mapped

    def test_temporaries_never_premapped(self):
        pipeline = build_pipeline()
        layout = BufferLayout(pipeline)
        mapped = premapped_pages(pipeline, layout)
        scratch_page = layout.base_block("scratch") // layout.blocks_per_page
        assert scratch_page not in mapped

    def test_read_after_write_not_premapped(self):
        b = PipelineBuilder("t")
        b.buffer("x", 64 * KB)
        b.gpu_kernel("w", flops=1.0, writes=[BufferAccess("x")])
        b.gpu_kernel("r", flops=1.0, reads=[BufferAccess("x")])
        pipeline = b.build()
        layout = BufferLayout(pipeline)
        assert premapped_pages(pipeline, layout) == set()


class TestPageFaultModel:
    def make_model(self, heavy=False, mapped=None):
        pipeline = build_pipeline()
        layout = BufferLayout(pipeline)
        config = PageFaultConfig(service_latency_s=5e-6)
        return (
            PageFaultModel(config, layout, mapped or set(), serialization_heavy=heavy),
            layout,
        )

    def test_gpu_first_touch_faults(self):
        model, layout = self.make_model()
        blocks = np.arange(64, dtype=np.int64)  # two pages
        result = model.touch(blocks, StageKind.GPU_KERNEL)
        assert result.faults == 2
        assert result.service_time_s > 0

    def test_second_touch_does_not_fault(self):
        model, _ = self.make_model()
        blocks = np.arange(32, dtype=np.int64)
        model.touch(blocks, StageKind.GPU_KERNEL)
        result = model.touch(blocks, StageKind.GPU_KERNEL)
        assert result.faults == 0
        assert result.service_time_s == 0.0

    def test_cpu_touch_maps_without_fault_cost(self):
        model, _ = self.make_model()
        blocks = np.arange(32, dtype=np.int64)
        result = model.touch(blocks, StageKind.CPU)
        assert result.faults == 0
        assert len(result.zeroed_blocks) == 32
        # Pages are now mapped; a GPU touch no longer faults.
        gpu = model.touch(blocks, StageKind.GPU_KERNEL)
        assert gpu.faults == 0

    def test_zeroed_blocks_cover_whole_pages(self):
        model, layout = self.make_model()
        result = model.touch(np.array([0], dtype=np.int64), StageKind.GPU_KERNEL)
        assert len(result.zeroed_blocks) == layout.blocks_per_page

    def test_premapped_pages_do_not_fault(self):
        pipeline = build_pipeline()
        layout = BufferLayout(pipeline)
        mapped = premapped_pages(pipeline, layout)
        model = PageFaultModel(PageFaultConfig(), layout, mapped)
        base = layout.base_block("input")
        result = model.touch(
            np.arange(base, base + 32, dtype=np.int64), StageKind.GPU_KERNEL
        )
        assert result.faults == 0

    def test_serialization_heavy_costs_more(self):
        light, _ = self.make_model(heavy=False)
        heavy, _ = self.make_model(heavy=True)
        blocks = np.arange(320, dtype=np.int64)
        light_result = light.touch(blocks, StageKind.GPU_KERNEL)
        heavy_result = heavy.touch(blocks, StageKind.GPU_KERNEL)
        assert heavy_result.service_time_s > 10 * light_result.service_time_s

    def test_disabled_config_never_faults(self):
        pipeline = build_pipeline()
        layout = BufferLayout(pipeline)
        model = PageFaultModel(PageFaultConfig(enabled=False), layout, set())
        result = model.touch(np.arange(64, dtype=np.int64), StageKind.GPU_KERNEL)
        assert result.faults == 0
        assert len(result.zeroed_blocks) == 0
