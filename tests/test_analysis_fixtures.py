"""Negative fixtures: every lint rule has a deliberately broken pipeline
under tests/fixtures/lint/ proving the rule fires at the right location."""

import importlib.util
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_pipeline

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "lint"
FIXTURE_PATHS = sorted(FIXTURE_DIR.glob("rpl*.py"))


def load_fixture(path):
    spec = importlib.util.spec_from_file_location(f"lint_fixture_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def lint_fixture(module):
    """Lint a fixture pipeline, enabling the RPL303-305 opportunity rules
    when the fixture opts in via a module-level ``OPPORTUNITIES = True``."""
    pipeline, bench_spec = module.build()
    report = lint_pipeline(
        pipeline,
        bench_spec,
        opportunities=getattr(module, "OPPORTUNITIES", False),
    )
    return pipeline, report


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_fixture_fires_expected_rule(path):
    module = load_fixture(path)
    pipeline, report = lint_fixture(module)
    matches = [d for d in report if d.rule == module.RULE]
    assert matches, (
        f"{path.stem}: expected {module.RULE} to fire, got "
        f"{[d.format() for d in report]}"
    )
    for diagnostic in matches:
        assert diagnostic.pipeline == pipeline.name
        assert diagnostic.severity is RULES[module.RULE].severity
    if module.STAGE is not None:
        assert any(d.stage == module.STAGE for d in matches), (
            f"{path.stem}: {module.RULE} fired but not at stage "
            f"{module.STAGE!r}: {[d.stage for d in matches]}"
        )
    if module.BUFFER is not None:
        assert any(d.buffer == module.BUFFER for d in matches), (
            f"{path.stem}: {module.RULE} fired but not at buffer "
            f"{module.BUFFER!r}: {[d.buffer for d in matches]}"
        )


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_fixture_fires_no_unrelated_rule_family(path):
    """A fixture triggers its own rule, not a zoo of incidental findings:
    any extra rule must at least stay below the fixture rule's severity."""
    module = load_fixture(path)
    pipeline, report = lint_fixture(module)
    expected_rank = RULES[module.RULE].severity.rank
    for diagnostic in report:
        if diagnostic.rule != module.RULE:
            assert diagnostic.severity.rank <= expected_rank, (
                f"{path.stem}: unexpected {diagnostic.format()}"
            )


def test_every_rule_has_a_fixture():
    covered = set()
    for path in FIXTURE_PATHS:
        covered.add(load_fixture(path).RULE)
    assert covered == set(RULES), (
        f"rules without fixtures: {sorted(set(RULES) - covered)}; "
        f"fixtures for unknown rules: {sorted(covered - set(RULES))}"
    )
