"""Invariants over every suite's workload parameters."""

import pytest

from repro.pipeline.patterns import IRREGULAR_PATTERNS
from repro.pipeline.stage import StageKind
from repro.pipeline.transforms import remove_copies
from repro.units import MB
from repro.workloads.registry import simulatable_specs, suite_specs


ALL_SIMULATABLE = list(simulatable_specs())


class TestFootprints:
    @pytest.mark.parametrize("spec", ALL_SIMULATABLE, ids=lambda s: s.full_name)
    def test_paper_footprint_band(self, spec):
        # Copy versions: at least 6MB and below 128MB (paper: 6MB-90MB,
        # plus mirrors).
        footprint = spec.pipeline().footprint_bytes
        assert 6 * MB <= footprint <= 128 * MB

    @pytest.mark.parametrize("spec", ALL_SIMULATABLE, ids=lambda s: s.full_name)
    def test_limited_copy_at_least_3_5mb(self, spec):
        # Paper: limited-copy footprints are at least 3.5MB.
        limited = remove_copies(spec.pipeline())
        assert limited.footprint_bytes >= 3.5 * MB


class TestStageParameters:
    @pytest.mark.parametrize("spec", ALL_SIMULATABLE, ids=lambda s: s.full_name)
    def test_every_kernel_has_positive_flops(self, spec):
        for stage in spec.pipeline().stages_of_kind(StageKind.GPU_KERNEL):
            assert stage.flops > 0, stage.name

    @pytest.mark.parametrize("spec", ALL_SIMULATABLE, ids=lambda s: s.full_name)
    def test_every_kernel_touches_memory(self, spec):
        for stage in spec.pipeline().stages_of_kind(StageKind.GPU_KERNEL):
            assert stage.accesses, stage.name


class TestFlagConsistency:
    def test_irregular_specs_use_irregular_patterns(self):
        # A spec flagged irregular must have at least one irregular access
        # in its pipeline (graph/random/pointer-chase).
        for spec in ALL_SIMULATABLE:
            if not spec.irregular:
                continue
            patterns = {
                access.pattern
                for stage in spec.pipeline().stages
                for access in stage.accesses
            }
            assert patterns & IRREGULAR_PATTERNS, spec.full_name

    def test_misaligned_specs_have_unaligned_buffers(self):
        for spec in ALL_SIMULATABLE:
            if not spec.misaligned_limited_copy:
                continue
            pipeline = spec.pipeline()
            unaligned = [
                b for b in pipeline.buffers.values() if not b.cpu_line_aligned
            ]
            assert unaligned, spec.full_name

    def test_pagefault_heavy_matches_metadata(self):
        for spec in ALL_SIMULATABLE:
            metadata_flag = bool(
                spec.pipeline().metadata.get("pagefault_heavy", False)
            )
            assert metadata_flag == spec.pagefault_heavy, spec.full_name

    def test_sw_queue_specs_have_worklists(self):
        for spec in ALL_SIMULATABLE:
            if not spec.sw_queue:
                continue
            assert "worklist" in spec.pipeline().buffers, spec.full_name


class TestSuiteComposition:
    def test_lonestar_simulatable_count(self):
        assert sum(s.simulatable for s in suite_specs("lonestar")) == 11

    def test_pannotia_all_simulatable(self):
        assert all(s.simulatable for s in suite_specs("pannotia"))

    def test_parboil_simulatable_count(self):
        assert sum(s.simulatable for s in suite_specs("parboil")) == 8

    def test_rodinia_simulatable_count(self):
        assert sum(s.simulatable for s in suite_specs("rodinia")) == 17

    def test_descriptions_non_empty(self):
        for spec in ALL_SIMULATABLE:
            assert spec.description.strip()
