"""Property-based tests for pipeline structures and transforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess, Region
from repro.pipeline.transforms import chunk_stages, remove_copies
from repro.units import KB


def build_chain(num_iterations: int, chunkable: bool):
    b = PipelineBuilder("prop")
    b.buffer("data", 256 * KB)
    b.buffer("out", 64 * KB)
    b.copy_h2d("data", chunkable=chunkable)
    b.mirror("out")
    for i in range(num_iterations):
        b.gpu_kernel(
            f"k{i}",
            flops=100.0,
            reads=[BufferAccess("data_dev")],
            writes=[BufferAccess("out_dev")],
            chunkable=chunkable,
        )
    b.copy_d2h("out_dev", "out", name="d2h", chunkable=chunkable)
    return b.build()


@given(iterations=st.integers(1, 5), chunks=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_chunking_preserves_total_flops(iterations, chunks):
    pipeline = build_chain(iterations, chunkable=True)
    chunked = chunk_stages(pipeline, chunks)
    assert chunked.total_flops == pytest.approx(pipeline.total_flops)


@given(iterations=st.integers(1, 4), chunks=st.integers(2, 12))
@settings(max_examples=40, deadline=None)
def test_chunk_regions_tile_the_buffer(iterations, chunks):
    pipeline = build_chain(iterations, chunkable=True)
    chunked = chunk_stages(pipeline, chunks)
    pieces = [
        s.reads[0].region
        for s in chunked.stages
        if s.logical_name == "k0" and s.reads
    ]
    pieces.sort(key=lambda r: r.start)
    assert pieces[0].start == 0.0
    assert pieces[-1].end == 1.0
    for left, right in zip(pieces, pieces[1:]):
        assert left.end == pytest.approx(right.start)


@given(iterations=st.integers(1, 5), chunks=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_chunked_pipeline_still_validates(iterations, chunks):
    pipeline = build_chain(iterations, chunkable=True)
    chunked = chunk_stages(pipeline, chunks)
    order = chunked.topological_order()  # raises on cycles
    assert len(order) == len(chunked.stages)


@given(iterations=st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_remove_copies_preserves_compute_stages(iterations):
    pipeline = build_chain(iterations, chunkable=False)
    limited = remove_copies(pipeline)
    original_kernels = {s.name for s in pipeline.stages if s.flops}
    limited_kernels = {s.name for s in limited.stages if s.flops}
    assert original_kernels == limited_kernels


@given(iterations=st.integers(1, 5), chunks=st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_transform_order_commutes_on_stage_counts(iterations, chunks):
    pipeline = build_chain(iterations, chunkable=True)
    a = chunk_stages(remove_copies(pipeline), chunks)
    b = remove_copies(chunk_stages(pipeline, chunks))
    assert len(a.stages) == len(b.stages)
    assert {s.logical_name for s in a.stages} == {s.logical_name for s in b.stages}


@given(
    start=st.floats(0.0, 0.98),
    width=st.floats(0.01, 1.0),
    count=st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_region_subranges_partition(start, width, count):
    end = min(1.0, start + max(width, 0.01))
    if end <= start:
        end = min(1.0, start + 0.01)
    region = Region(start, end)
    parts = [region.subrange(i, count) for i in range(count)]
    assert parts[0].start == pytest.approx(region.start)
    assert parts[-1].end == pytest.approx(region.end)
    total = sum(p.span for p in parts)
    assert total == pytest.approx(region.span)
