"""Hypothesis property tests: FastSetAssocCache == SetAssocCache.

Random block ranges, strides, and overlapping segments — plus interleaved
maintenance operations — must leave the vectorized cache bit-identical to
the reference on every observable: the downstream stream (contents and
order), the statistics counters, and the full per-set LRU state including
dirty bits.  Failures shrink to minimal streams because everything is
generated from plain Hypothesis strategies.

The offline path is forced by patching ``SERIAL_CUTOFF`` to zero (and the
scan-budget/serial paths by patching their knobs), so short generated
streams still exercise the vectorized passes.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.fastcache as fastcache
from repro.config.components import CacheConfig
from repro.sim.cache import SetAssocCache
from repro.sim.fastcache import FastSetAssocCache
from repro.trace.stream import AccessStream

geometries = st.sampled_from(
    [(1, 1), (1, 4), (2, 2), (3, 2), (4, 4), (8, 2), (8, 16), (24, 4)]
)

#: One access segment: a strided range walk (stride 0 = one repeated
#: block), the building block of overlapping/reversed/sparse streams.
segments = st.tuples(
    st.integers(min_value=0, max_value=600),  # start block
    st.integers(min_value=-3, max_value=3),  # stride
    st.integers(min_value=1, max_value=40),  # count
    st.booleans(),  # is_write for the whole segment
)

streams = st.lists(segments, min_size=1, max_size=8)


def build_stream(segs) -> AccessStream:
    blocks = []
    writes = []
    for start, stride, count, is_write in segs:
        seg = start + stride * np.arange(count, dtype=np.int64)
        np.clip(seg, 0, None, out=seg)
        blocks.append(seg)
        writes.append(np.full(count, is_write, dtype=bool))
    return AccessStream(np.concatenate(blocks), np.concatenate(writes))


def make_pair(geometry):
    num_sets, assoc = geometry
    config = CacheConfig(
        capacity_bytes=num_sets * assoc * 128, associativity=assoc, line_bytes=128
    )
    return SetAssocCache(config), FastSetAssocCache(config)


def reference_state(cache: SetAssocCache):
    return [[(b, b in cache._dirty) for b in lru] for lru in cache._sets]


def fast_state(cache: FastSetAssocCache):
    return [list(lru.items()) for lru in cache._sets]


def assert_equivalent(ref: SetAssocCache, fast: FastSetAssocCache, down_ref, down_fast):
    assert np.array_equal(down_ref.blocks, down_fast.blocks)
    assert np.array_equal(down_ref.is_write, down_fast.is_write)
    assert reference_state(ref) == fast_state(fast)
    assert vars(ref.stats) == vars(fast.stats)


@contextmanager
def forced(cutoff=None, budget=None, windows=None):
    """Temporarily re-point the fast path's tuning knobs."""
    saved = (
        fastcache.SERIAL_CUTOFF,
        fastcache._RESIDUE_BUDGET_FACTOR,
        fastcache._WINDOW_SMALL,
        fastcache._WINDOW_MEDIUM,
        fastcache._WINDOW_LARGE,
    )
    try:
        if cutoff is not None:
            fastcache.SERIAL_CUTOFF = cutoff
        if budget is not None:
            fastcache._RESIDUE_BUDGET_FACTOR = budget
        if windows is not None:
            small, large = windows
            fastcache._WINDOW_SMALL = small
            fastcache._WINDOW_MEDIUM = small
            fastcache._WINDOW_LARGE = large
        yield
    finally:
        (
            fastcache.SERIAL_CUTOFF,
            fastcache._RESIDUE_BUDGET_FACTOR,
            fastcache._WINDOW_SMALL,
            fastcache._WINDOW_MEDIUM,
            fastcache._WINDOW_LARGE,
        ) = saved


@given(segs=streams, geometry=geometries)
@settings(max_examples=120, deadline=None)
def test_offline_path_matches_reference(segs, geometry):
    """Vectorized whole-stream accounting == per-block reference loop."""
    ref, fast = make_pair(geometry)
    stream = build_stream(segs)
    with forced(cutoff=0):
        assert_equivalent(
            ref, fast, ref.access_stream(stream), fast.access_stream(stream)
        )


@given(segs=streams, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_narrow_windows_and_residue_scan_match(segs, geometry):
    """Tiny scan windows force the chunked backward residue loop."""
    ref, fast = make_pair(geometry)
    stream = build_stream(segs)
    with forced(cutoff=0, windows=(2, 3)):
        assert_equivalent(
            ref, fast, ref.access_stream(stream), fast.access_stream(stream)
        )


@given(segs=streams, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_budget_blowout_serial_fallback_matches(segs, geometry):
    """An exhausted scan budget must fall back with no state corruption."""
    ref, fast = make_pair(geometry)
    stream = build_stream(segs)
    with forced(cutoff=0, budget=-(10**9), windows=(1, 2)):
        assert_equivalent(
            ref, fast, ref.access_stream(stream), fast.access_stream(stream)
        )


@given(segs=st.lists(segments, min_size=2, max_size=6), geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_multi_call_state_carries_over(segs, geometry):
    """Residency carried between calls stays identical call after call."""
    ref, fast = make_pair(geometry)
    with forced(cutoff=0):
        for seg in segs:
            stream = build_stream([seg])
            assert_equivalent(
                ref, fast, ref.access_stream(stream), fast.access_stream(stream)
            )


@given(
    segs=st.lists(segments, min_size=1, max_size=4),
    geometry=geometries,
    ops=st.lists(
        st.tuples(
            st.sampled_from(["drain", "flush", "invalidate", "extract"]),
            st.lists(
                st.integers(min_value=0, max_value=600), min_size=1, max_size=30
            ),
        ),
        max_size=3,
    ),
)
@settings(max_examples=60, deadline=None)
def test_maintenance_ops_interleaved(segs, geometry, ops):
    """drain/flush/invalidate/extract agree mid-stream with the reference."""
    ref, fast = make_pair(geometry)
    with forced(cutoff=0):
        for seg in segs:
            stream = build_stream([seg])
            assert_equivalent(
                ref, fast, ref.access_stream(stream), fast.access_stream(stream)
            )
            for op, arg in ops:
                if op == "drain":
                    assert ref.drain() == fast.drain()
                elif op == "flush":
                    assert ref.flush(arg) == fast.flush(arg)
                elif op == "invalidate":
                    assert ref.invalidate(arg) == fast.invalidate(arg)
                else:
                    for block in arg[:5]:
                        assert ref.extract(block) == fast.extract(block)
                assert reference_state(ref) == fast_state(fast)


@given(segs=streams, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_serial_short_stream_path_matches(segs, geometry):
    """Below SERIAL_CUTOFF the tuned OrderedDict loop must agree too."""
    ref, fast = make_pair(geometry)
    stream = build_stream(segs)
    assert fastcache.SERIAL_CUTOFF > 0  # default path selection
    assert_equivalent(
        ref, fast, ref.access_stream(stream), fast.access_stream(stream)
    )


def test_wide_block_ids_use_int64_path():
    """Block ids above 2**31 still process correctly (no int32 narrowing)."""
    ref, fast = make_pair((4, 2))
    blocks = np.array([1 << 33, (1 << 33) + 4, 1 << 33, 7, 11, 7], dtype=np.int64)
    writes = np.array([True, False, False, True, False, False], dtype=bool)
    stream = AccessStream(blocks, writes)
    with forced(cutoff=0):
        assert_equivalent(
            ref, fast, ref.access_stream(stream), fast.access_stream(stream)
        )
