"""Engine edge cases: degenerate pipelines, unusual configurations."""

import pytest

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import BufferAccess, Stage, StageKind
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.units import KB, MB

from tests.conftest import TINY_SCALE


class TestDegeneratePipelines:
    def test_empty_pipeline(self, discrete, tiny_options):
        pipeline = Pipeline(name="empty", buffers={}, stages=())
        result = simulate(pipeline, discrete, tiny_options)
        assert result.roi_s == 0.0
        assert result.offchip_accesses() == 0

    def test_single_cpu_stage(self, discrete, tiny_options):
        b = PipelineBuilder("t")
        b.buffer("a", 1 * MB)
        b.cpu_stage("only", flops=1e6, reads=[BufferAccess("a")])
        result = simulate(b.build(), discrete, tiny_options)
        assert result.busy_time(Component.CPU) > 0
        assert result.busy_time(Component.GPU) == 0.0
        assert result.launch_intervals == []

    def test_copy_only_pipeline(self, discrete, tiny_options):
        b = PipelineBuilder("t")
        b.buffer("a", 1 * MB)
        b.copy_h2d("a")
        result = simulate(b.build(), discrete, tiny_options)
        assert result.busy_time(Component.COPY) > 0
        # Copies are CPU-launched, so a launch sliver exists.
        assert len(result.launch_intervals) == 1

    def test_zero_flop_stage_completes_instantly(self, discrete, tiny_options):
        stage = Stage(name="noop", kind=StageKind.CPU, flops=0.0)
        pipeline = Pipeline(name="t", buffers={}, stages=(stage,))
        result = simulate(pipeline, discrete, tiny_options)
        assert result.roi_s == pytest.approx(0.0)

    def test_diamond_dependencies(self, discrete, tiny_options):
        b = PipelineBuilder("t")
        b.buffer("a", 1 * MB)
        root = b.cpu_stage("root", flops=1e5, writes=[BufferAccess("a")])
        b.cpu_stage("left", flops=1e5, reads=[BufferAccess("a")], after=[root])
        b.cpu_stage("right", flops=1e5, reads=[BufferAccess("a")], after=[root])
        b.cpu_stage("join", flops=1e5, after=["left", "right"])
        result = simulate(b.build(), discrete, tiny_options)
        by_name = {r.name: r for r in result.stages}
        assert by_name["join"].start_s >= by_name["left"].end_s - 1e-12
        assert by_name["join"].start_s >= by_name["right"].end_s - 1e-12

    def test_wide_fanout_schedules_everything(self, discrete, tiny_options):
        b = PipelineBuilder("t")
        b.buffer("a", 1 * MB)
        root = b.cpu_stage("root", flops=1e5, writes=[BufferAccess("a")])
        for i in range(20):
            b.gpu_kernel(
                f"k{i}", flops=1e6, reads=[BufferAccess("a")], after=[root]
            )
        result = simulate(b.build(), discrete, tiny_options)
        assert len(result.stages) == 21

    def test_tiny_buffer_single_block(self, discrete, tiny_options):
        b = PipelineBuilder("t")
        b.buffer("tiny", 64)  # less than one line
        b.cpu_stage("s", flops=10.0, reads=[BufferAccess("tiny")])
        result = simulate(b.build(), discrete, tiny_options)
        assert result.roi_s >= 0.0


class TestOptionHandling:
    def test_scale_one_runs_unscaled(self, discrete):
        b = PipelineBuilder("t")
        b.buffer("a", 256 * KB)
        b.cpu_stage("s", flops=1e5, reads=[BufferAccess("a")])
        result = simulate(b.build(), discrete, SimOptions(scale=1.0))
        # 256KB = 2048 lines of compulsory misses.
        assert result.offchip_accesses() >= 2048

    def test_seed_only_changes_random_behaviour(self, discrete):
        b = PipelineBuilder("t")
        b.buffer("a", 1 * MB)
        b.cpu_stage("s", flops=1e5, reads=[BufferAccess("a")])  # streaming
        pipeline = b.build()
        r1 = simulate(pipeline, discrete, SimOptions(scale=TINY_SCALE, seed=1))
        r2 = simulate(pipeline, discrete, SimOptions(scale=TINY_SCALE, seed=2))
        assert r1.roi_s == pytest.approx(r2.roi_s)

    def test_same_pipeline_both_systems(self, discrete, heterogeneous, tiny_options):
        # A copy pipeline is legal on the heterogeneous processor too:
        # copies become in-memory moves.
        b = PipelineBuilder("t")
        b.buffer("a", 1 * MB)
        b.copy_h2d("a")
        b.gpu_kernel("k", flops=1e6, reads=[BufferAccess("a_dev")])
        pipeline = b.build()
        dis = simulate(pipeline, discrete, tiny_options)
        het = simulate(pipeline, heterogeneous, tiny_options)
        assert het.busy_time(Component.COPY) < dis.busy_time(Component.COPY)
