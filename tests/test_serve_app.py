"""End-to-end serve API tests: real sockets against an in-process server.

Each test boots a :class:`~repro.serve.client.ServerThread` (ephemeral
port, throwaway cache directory, serial in-parent sweeps unless the test
needs a pool) and drives it with the asyncio :class:`ServeClient` — the
same stack ``repro loadtest`` and the CI serve-smoke job use.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing

import pytest

from repro.serve import ServeConfig, ServeHttpError, ServerThread

KMEANS = "rodinia/kmeans"
BFS = "lonestar/bfs"
#: Small enough that a benchmark pair simulates in tens of milliseconds.
SCALE = 1 / 128


def _config(tmp_path, **overrides) -> ServeConfig:
    overrides.setdefault("port", 0)
    overrides.setdefault("jobs", 1)
    overrides.setdefault("concurrency", 2)
    overrides.setdefault("cache_dir", tmp_path / "cache")
    overrides.setdefault("default_scale", SCALE)
    return ServeConfig(**overrides)


def _sweep(benchmarks=(KMEANS,), **overrides):
    body = {"kind": "sweep", "benchmarks": sorted(benchmarks), "scale": SCALE}
    body.update(overrides)
    return body


def _run(coro):
    return asyncio.run(coro)


class TestLifecycleAndHealth:
    def test_health(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            health = _run(server.client().health())
        assert health["schema"] == "repro.serve.health/v1"
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["pool_jobs"] == 1
        assert health["queue_depth"] == 0
        assert health["uptime_s"] >= 0

    def test_ephemeral_port_is_bound(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            assert server.port not in (None, 0)

    def test_http_shutdown_stops_the_server(self, tmp_path):
        server = ServerThread(_config(tmp_path))
        server.start()
        reply = _run(server.client().shutdown())
        assert reply == {"status": "shutting-down"}
        server._thread.join(10.0)
        assert not server._thread.is_alive()
        server._thread = None  # already joined; stop() would be a no-op

    def test_graceful_shutdown_leaves_no_pool_workers(self, tmp_path):
        """After running a real multi-process sweep, teardown must not
        leave orphaned pool processes behind (the serve-smoke gate)."""
        with ServerThread(_config(tmp_path, jobs=2)) as server:
            client = server.client()
            final = _run(client.run(_sweep((KMEANS, BFS)), timeout_s=120))
            assert final["status"] == "done"
        for _ in range(50):  # reaping is asynchronous on some platforms
            children = multiprocessing.active_children()
            if not children:
                break
            for child in children:
                child.join(0.1)
        assert multiprocessing.active_children() == []


class TestJobs:
    def test_submit_status_result(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()

            async def scenario():
                accepted = await client.submit(_sweep())
                assert accepted["schema"] == "repro.serve.job/v1"
                assert accepted["status"] in ("queued", "running")
                assert accepted["coalesced"] is False
                assert accepted["runs"] == 2
                assert "result" not in accepted
                final = await client.wait_job(accepted["id"], timeout_s=60)
                listing = await client._checked("GET", "/v1/jobs")
                return accepted, final, listing

            accepted, final, listing = _run(scenario())
        assert final["status"] == "done"
        assert final["content_hash"] == accepted["content_hash"]
        assert final["wall_s"] >= 0
        result = final["result"]
        assert sorted(result["runs"]) == [
            f"{KMEANS}:copy",
            f"{KMEANS}:limited-copy",
        ]
        for run in result["runs"].values():
            assert run["roi_s"] > 0
            assert run["violations"] == 0
        assert result["failures"] == []
        assert result["metrics"]["launched"] == 2
        ids = [job["id"] for job in listing["jobs"]]
        assert accepted["id"] in ids

    def test_simulate_job_carries_summaries(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()
            body = {"kind": "simulate", "benchmark": KMEANS, "version": "copy"}
            final = _run(client.run(body, timeout_s=60))
        assert final["status"] == "done"
        (run,) = final["result"]["runs"].values()
        assert "summary" in run and run["summary"]

    def test_advise_job_renders_advice(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()
            body = {"kind": "advise", "benchmark": KMEANS, "scale": SCALE}
            final = _run(client.run(body, timeout_s=120))
        assert final["status"] == "done"
        assert len(final["result"]["runs"]) == 2
        advice = final["result"]["advice"]
        assert isinstance(advice, str) and KMEANS in advice

    def test_default_scale_applies(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()
            body = {"kind": "sweep", "benchmarks": [KMEANS]}  # no scale
            accepted = _run(client.submit(body))
        assert accepted["job"]["scale"] == SCALE


class TestDedupAndCache:
    def test_warm_repeat_answers_from_cache(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()

            async def scenario():
                cold = await client.run(_sweep(), timeout_s=60)
                warm = await client.run(_sweep(), timeout_s=60)
                stats = await client.cache_stats()
                return cold, warm, stats

            cold, warm, stats = _run(scenario())
        assert cold["id"] != warm["id"]  # terminal hash released, new job
        assert cold["result"]["metrics"]["launched"] == 2
        assert warm["result"]["metrics"]["launched"] == 0
        assert warm["result"]["metrics"]["cache_hits"] == 2
        assert stats["dedup"]["computed_runs"] == 2
        assert stats["dedup"]["warm_runs"] == 2
        assert stats["enabled"] is True
        assert stats["entries"] == 2

    def test_concurrent_duplicates_coalesce_to_one_job(self, tmp_path):
        """The acceptance scenario: many identical in-flight submissions
        collapse onto one job and one computation.  A blocker job keeps
        the single worker busy so the duplicates deterministically arrive
        while their job is still queued."""
        duplicates = 24
        config = _config(tmp_path, concurrency=1)
        with ServerThread(config) as server:
            client = server.client()

            async def scenario():
                blocker = await client.submit(_sweep((BFS,), seed=99))
                replies = await asyncio.gather(
                    *(client.submit(_sweep()) for _ in range(duplicates))
                )
                ids = {reply["id"] for reply in replies}
                final = await client.wait_job(ids.pop(), timeout_s=120)
                assert not ids, "duplicates created more than one job"
                await client.wait_job(blocker["id"], timeout_s=120)
                stats = await client.cache_stats()
                return replies, final, stats

            replies, final, stats = _run(scenario())
        coalesced = [reply["coalesced"] for reply in replies]
        assert coalesced.count(False) == 1
        assert coalesced.count(True) == duplicates - 1
        assert final["status"] == "done"
        assert final["submissions"] == duplicates
        dedup = stats["dedup"]
        assert dedup["submitted"] == duplicates + 1
        assert dedup["coalesced"] == duplicates - 1
        assert dedup["jobs_created"] == 2  # blocker + the one shared job
        # One blocker pair + one shared pair: 24 duplicate submissions
        # cost exactly one computation.
        assert dedup["computed_runs"] == 4

    def test_engine_knob_variants_coalesce(self, tmp_path):
        config = _config(tmp_path, concurrency=1)
        with ServerThread(config) as server:
            client = server.client()

            async def scenario():
                blocker = await client.submit(_sweep((BFS,), seed=99))
                first = await client.submit(_sweep())
                second = await client.submit(_sweep(engine="reference"))
                third = await client.submit(_sweep(stage_memo="off"))
                for reply in (blocker, first):
                    await client.wait_job(reply["id"], timeout_s=120)
                return first, second, third

            first, second, third = _run(scenario())
        assert second["id"] == first["id"]
        assert third["id"] == first["id"]
        assert second["coalesced"] and third["coalesced"]


class TestEvents:
    def test_sse_stream_reaches_terminal(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()

            async def scenario():
                accepted = await client.submit(_sweep((KMEANS, BFS)))
                return await client.events(accepted["id"], timeout_s=60)

            events = _run(scenario())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "started"
        assert kinds[-1] == "finished"
        assert "progress" in kinds
        assert [event["seq"] for event in events] == list(range(len(events)))
        progress = [e for e in events if e["event"] == "progress"]
        assert progress[-1]["completed"] == progress[-1]["total"] == 4
        assert events[-1]["status"] == "done"

    def test_sse_after_terminal_replays_history(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()

            async def scenario():
                final = await client.run(_sweep(), timeout_s=60)
                return final, await client.events(final["id"], timeout_s=10)

            final, events = _run(scenario())
        assert final["events"] == len(events)
        assert events[-1]["event"] == "finished"

    def test_sse_unknown_job_is_404(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()
            with pytest.raises(ServeHttpError) as excinfo:
                _run(client.events("job-999999", timeout_s=10))
        assert excinfo.value.status == 404
        assert excinfo.value.payload["code"] == "unknown-job"


class TestMetricsEndpoint:
    def test_request_latency_and_dedup_counters(self, tmp_path):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()

            async def scenario():
                await client.run(_sweep(), timeout_s=60)
                await client.health()
                return await client.metrics()

            metrics = _run(scenario())
        assert metrics["schema"] == "repro.serve.metrics/v1"
        service = metrics["service"]
        assert service["requests"] >= 3
        assert service["statuses"].get("200", service["statuses"].get(200))
        routes = service["routes"]
        assert "POST /v1/jobs" in routes
        assert "GET /v1/jobs/{id}" in routes
        for stats in routes.values():
            assert stats["outer_s"]["p50"] >= 0
            assert stats["outer_s"]["max"] >= stats["outer_s"]["p50"]
        assert metrics["dedup"]["computed_runs"] == 2
        assert metrics["sweep_totals"]


class TestHttpErrors:
    """Wire-level 4xx behaviour, with golden payloads for the stable ones."""

    @staticmethod
    def _status_and_payload(server, method, path, body=None):
        async def scenario():
            return await server.client().request(method, path, body)

        return _run(scenario())

    def test_bad_json_golden(self, tmp_path, golden_json):
        with ServerThread(_config(tmp_path)) as server:
            client = server.client()

            async def scenario():
                reader, writer = await asyncio.open_connection(
                    client.host, client.port
                )
                raw = b"{not json"
                writer.write(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(raw)}\r\n\r\n".encode()
                    + raw
                )
                await writer.drain()
                data = await reader.read()
                writer.close()
                return data

            data = _run(scenario())
        head, _, body = data.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        golden_json("serve/bad_json", {"status": status, **json.loads(body)})

    def test_unknown_route_golden(self, tmp_path, golden_json):
        with ServerThread(_config(tmp_path)) as server:
            status, payload = self._status_and_payload(
                server, "GET", "/v1/sweeps"
            )
        golden_json("serve/unknown_route", {"status": status, **payload})

    def test_method_not_allowed_golden(self, tmp_path, golden_json):
        with ServerThread(_config(tmp_path)) as server:
            status, payload = self._status_and_payload(
                server, "DELETE", "/health"
            )
        golden_json("serve/method_not_allowed", {"status": status, **payload})

    def test_unknown_job_golden(self, tmp_path, golden_json):
        with ServerThread(_config(tmp_path)) as server:
            status, payload = self._status_and_payload(
                server, "GET", "/v1/jobs/job-999999"
            )
        golden_json("serve/unknown_job", {"status": status, **payload})

    def test_body_too_large_golden(self, tmp_path, golden_json):
        config = _config(tmp_path, max_body_bytes=64)
        oversized = {"kind": "sweep", "benchmarks": ["x" * 80]}
        with ServerThread(config) as server:
            status, payload = self._status_and_payload(
                server, "POST", "/v1/jobs", oversized
            )
        assert status == 413
        assert payload["code"] == "body-too-large"
        golden_json("serve/body_too_large", {"status": status, **payload})

    def test_validation_errors_reach_the_wire(self, tmp_path):
        cases = [
            ({"kind": "sweep", "benchmark": KMEANS}, 400, "invalid-job"),
            (
                {"kind": "sweep", "benchmarks": ["rodinia/nope"]},
                404,
                "unknown-benchmark",
            ),
            (
                {"kind": "simulate", "benchmark": "lonestar/bfs_atomic"},
                422,
                "not-simulatable",
            ),
        ]
        with ServerThread(_config(tmp_path)) as server:
            for body, expected_status, expected_code in cases:
                status, payload = self._status_and_payload(
                    server, "POST", "/v1/jobs", body
                )
                assert status == expected_status, body
                assert payload["code"] == expected_code, body
                assert payload["schema"] == "repro.serve.error/v1"

    def test_no_cache_mode_still_serves(self, tmp_path):
        config = _config(tmp_path, no_cache=True)
        with ServerThread(config) as server:
            client = server.client()

            async def scenario():
                final = await client.run(_sweep(), timeout_s=60)
                return final, await client.cache_stats()

            final, stats = _run(scenario())
        assert final["status"] == "done"
        assert stats["enabled"] is False
        assert "entries" not in stats
