"""Registry-wide conservation sweep: the runtime analogue of clean-lint.

Runs the :class:`~repro.sim.observe.InvariantMonitor` over every
simulatable benchmark in both system forms (46 x 2) and asserts zero
conservation-law violations.  Any failure here means the engine broke an
accounting identity — busy-time bookkeeping, copy-link byte balance,
DRAM log attribution, or the ROI partition — even if every figure still
renders plausible numbers.
"""

from __future__ import annotations

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.observe import INVARIANTS, InvariantError, InvariantMonitor
from repro.workloads.registry import simulatable_specs

from tests.conftest import TINY_SCALE

ALL_BENCHMARKS = [spec.full_name for spec in simulatable_specs()]


def _run_monitored(spec, version: str):
    pipeline = spec.pipeline()
    if version == "limited-copy":
        pipeline = remove_copies(pipeline)
        system = heterogeneous_processor()
    else:
        system = discrete_gpu_system()
    monitor = InvariantMonitor(mode="record")
    result = simulate(
        pipeline, system, SimOptions(scale=TINY_SCALE), sinks=[monitor]
    )
    return result, monitor


@pytest.mark.parametrize("bench_name", ALL_BENCHMARKS)
@pytest.mark.parametrize("version", ["copy", "limited-copy"])
def test_registry_runs_conserve(bench_name, version):
    from repro.workloads.registry import get

    result, monitor = _run_monitored(get(bench_name), version)
    assert monitor.events_seen > 0, "engine emitted no events while traced"
    assert result.violations == (), [
        f"[{v.rule}] {v.message}" for v in result.violations
    ]


def test_monitor_raise_mode_is_clean_on_a_real_run():
    """'raise' mode passes silently on a correct engine."""
    from repro.workloads.registry import get

    spec = get("rodinia/kmeans")
    monitor = InvariantMonitor(mode="raise")
    result = simulate(
        spec.pipeline(),
        discrete_gpu_system(),
        SimOptions(scale=TINY_SCALE),
        sinks=[monitor],
    )
    assert result.violations == ()


def test_monitor_raise_mode_detects_tampering():
    """A cooked result (wrong busy time) trips INV001 and raises."""
    from repro.workloads.registry import get

    spec = get("rodinia/kmeans")
    monitor = InvariantMonitor(mode="raise")
    recorder_result = simulate(
        spec.pipeline(),
        discrete_gpu_system(),
        SimOptions(scale=TINY_SCALE),
        sinks=[monitor],
    )
    # Re-check the same accumulated events against a falsified result.
    tampered = recorder_result
    tampered.busy = dict(tampered.busy)
    from repro.sim.hierarchy import Component
    from repro.sim.results import Interval

    tampered.busy[Component.GPU] = [Interval(0.0, tampered.roi_s * 2.0)]
    with pytest.raises(InvariantError) as excinfo:
        monitor.finish(tampered)
    assert any(v.rule == "INV001" for v in excinfo.value.violations)


def test_invariant_catalogue_ids_are_stable():
    assert set(INVARIANTS) == {"INV001", "INV002", "INV003", "INV004", "INV005"}
    for rule_id, description in INVARIANTS.items():
        assert rule_id.startswith("INV") and description
