"""Differential trace/result tests: events are a faithful, passive view.

Two families of checks:

* *Reconstruction* — ``busy_time``, ``utilization``, and
  ``activity_breakdown`` rebuilt purely from emitted span events agree
  exactly with the :class:`SimResult` the same run returned.
* *Observation-only* — attaching any sink (recorder, JSONL writer,
  invariant monitor, or a junk sink) never changes the ``SimResult``;
  traced and untraced runs are identical in every serialized field.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.sim.observe import (
    CTR_DRAM_READS,
    CTR_DRAM_WRITES,
    InvariantMonitor,
    JsonlSink,
    SpanEvent,
    TraceRecorder,
    busy_from_spans,
    chrome_trace_dict,
    validate_chrome_trace,
)
from repro.sim.results import activity_breakdown, total_time
from repro.sim.serialize import results_identical
from repro.workloads.loader import pipeline_from_dict
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE
from tests.test_prop_serialize_loader import workload_specs

#: A cross-suite sample: graph + worklist, dense, page-fault-heavy, and a
#: misaligned-after-port representative.
SAMPLE_BENCHMARKS = (
    "lonestar/bfs",
    "pannotia/pr",
    "parboil/spmv",
    "rodinia/kmeans",
    "rodinia/srad",
)


def _traced_run(name: str, version: str):
    spec = get(name)
    pipeline = spec.pipeline()
    if version == "limited-copy":
        pipeline = remove_copies(pipeline)
        system = heterogeneous_processor()
    else:
        system = discrete_gpu_system()
    recorder = TraceRecorder()
    result = simulate(
        pipeline, system, SimOptions(scale=TINY_SCALE), sinks=[recorder]
    )
    return result, recorder


@pytest.mark.parametrize("bench_name", SAMPLE_BENCHMARKS)
@pytest.mark.parametrize("version", ["copy", "limited-copy"])
class TestReconstruction:
    def test_busy_time_rebuilds_exactly(self, bench_name, version):
        result, recorder = _traced_run(bench_name, version)
        busy = busy_from_spans(recorder.events)
        for component in Component:
            assert total_time(busy[component]) == pytest.approx(
                result.busy_time(component), rel=1e-12, abs=1e-18
            )

    def test_utilization_rebuilds_exactly(self, bench_name, version):
        result, recorder = _traced_run(bench_name, version)
        busy = busy_from_spans(recorder.events)
        for component in Component:
            rebuilt = (
                total_time(busy[component]) / result.roi_s
                if result.roi_s
                else 0.0
            )
            assert rebuilt == pytest.approx(
                result.utilization(component), rel=1e-12, abs=1e-18
            )

    def test_activity_breakdown_rebuilds_exactly(self, bench_name, version):
        result, recorder = _traced_run(bench_name, version)
        rebuilt = activity_breakdown(
            busy_from_spans(recorder.events), result.roi_s
        )
        recorded = result.activity()
        assert set(rebuilt) == set(recorded)
        for mask, seconds in recorded.items():
            assert rebuilt[mask] == pytest.approx(seconds, rel=1e-12, abs=1e-18)

    def test_offchip_counters_cover_the_log(self, bench_name, version):
        result, recorder = _traced_run(bench_name, version)
        reads = sum(e.value for e in recorder.counters(CTR_DRAM_READS))
        writes = sum(e.value for e in recorder.counters(CTR_DRAM_WRITES))
        assert reads == int((~result.log_is_write).sum())
        assert writes == int(result.log_is_write.sum())
        assert reads + writes == result.offchip_accesses()

    def test_stage_spans_match_records(self, bench_name, version):
        result, recorder = _traced_run(bench_name, version)
        spans = {s.ordinal: s for s in recorder.spans("stage")}
        assert len(spans) == len(result.stages)
        for record in result.stages:
            span = spans[record.ordinal]
            assert span.name == record.name
            assert span.component == record.component.value
            assert span.start_s == record.start_s
            assert span.end_s == record.end_s


# -- observation-only ---------------------------------------------------------


class _CountingJunkSink:
    """A sink that does arbitrary (non-interfering) work per event."""

    def __init__(self):
        self.count = 0
        self.finished = False

    def emit(self, event):
        self.count += 1
        repr(event)

    def finish(self, result):
        self.finished = True


@given(spec=workload_specs())
@settings(max_examples=15, deadline=None)
def test_attaching_sinks_never_changes_the_result(spec):
    """Hypothesis: tracing is observation-only over generated pipelines."""
    options = SimOptions(scale=TINY_SCALE)
    system = discrete_gpu_system()
    untraced = simulate(pipeline_from_dict(spec), system, options)
    junk = _CountingJunkSink()
    traced = simulate(
        pipeline_from_dict(spec),
        system,
        options,
        sinks=[TraceRecorder(), InvariantMonitor(), junk],
    )
    assert junk.finished and junk.count > 0
    assert results_identical(untraced, traced)


@pytest.mark.parametrize("bench_name", ["rodinia/kmeans", "lonestar/bfs"])
def test_registry_runs_identical_with_and_without_sinks(bench_name):
    spec = get(bench_name)
    options = SimOptions(scale=TINY_SCALE)
    system = discrete_gpu_system()
    untraced = simulate(spec.pipeline(), system, options)
    traced = simulate(
        spec.pipeline(),
        system,
        options,
        sinks=[TraceRecorder(), InvariantMonitor()],
    )
    assert results_identical(untraced, traced)


# -- exporters ------------------------------------------------------------------


def test_jsonl_sink_round_trips_event_stream(tmp_path):
    spec = get("rodinia/kmeans")
    path = tmp_path / "events.jsonl"
    recorder = TraceRecorder()
    simulate(
        spec.pipeline(),
        discrete_gpu_system(),
        SimOptions(scale=TINY_SCALE),
        sinks=[recorder, JsonlSink(path)],
    )
    lines = path.read_text().splitlines()
    assert len(lines) == len(recorder.events)
    kinds = {json.loads(line)["type"] for line in lines}
    assert {"span", "counter", "mark"} <= kinds


def test_chrome_export_of_a_real_run_validates(tmp_path):
    result, recorder = _traced_run("parboil/spmv", "copy")
    payload = chrome_trace_dict(recorder.events, name="parboil/spmv")
    assert validate_chrome_trace(payload) == []
    span_names = {
        e["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "X" and e["cat"] == "stage"
    }
    assert {record.name for record in result.stages} == span_names


def test_schema_checker_rejects_malformed_payloads():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    bad_events = [
        {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
        {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
        {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -5, "dur": 1},
        {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0},
        {"ph": "C", "name": "x", "pid": 1, "tid": 1, "ts": 0},
        {"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": 0, "s": "q"},
    ]
    for event in bad_events:
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert problems, f"checker accepted malformed event {event}"


def test_span_durations_are_nonnegative():
    _, recorder = _traced_run("rodinia/srad", "limited-copy")
    for event in recorder.events:
        if isinstance(event, SpanEvent):
            assert event.duration_s >= 0.0
            assert not math.isnan(event.duration_s)
