"""Tests for repro.trace.stream."""

import numpy as np
import pytest

from repro.trace.stream import AccessStream, concatenate, interleave


class TestAccessStream:
    def test_of_builds_read_stream(self):
        stream = AccessStream.of([1, 2, 3])
        assert len(stream) == 3
        assert stream.num_reads == 3
        assert stream.num_writes == 0

    def test_of_builds_write_stream(self):
        stream = AccessStream.of([1, 2], is_write=True)
        assert stream.num_writes == 2

    def test_unique_blocks(self):
        stream = AccessStream.of([5, 1, 5, 2])
        assert list(stream.unique_blocks()) == [1, 2, 5]

    def test_empty(self):
        stream = AccessStream.empty()
        assert len(stream) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="identical shapes"):
            AccessStream(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))

    def test_multidim_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            AccessStream(
                np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2), dtype=bool)
            )


class TestConcatenate:
    def test_joins_in_order(self):
        merged = concatenate(
            [AccessStream.of([1, 2]), AccessStream.of([3], is_write=True)]
        )
        assert list(merged.blocks) == [1, 2, 3]
        assert list(merged.is_write) == [False, False, True]

    def test_skips_empties(self):
        merged = concatenate([AccessStream.empty(), AccessStream.of([1])])
        assert len(merged) == 1

    def test_all_empty(self):
        assert len(concatenate([AccessStream.empty()])) == 0


class TestInterleave:
    def test_preserves_multiset(self):
        a = AccessStream.of(list(range(100)))
        b = AccessStream.of(list(range(100, 110)), is_write=True)
        merged = interleave([a, b])
        assert len(merged) == 110
        assert sorted(merged.blocks) == sorted(list(a.blocks) + list(b.blocks))

    def test_preserves_per_stream_order(self):
        a = AccessStream.of([10, 20, 30, 40])
        b = AccessStream.of([1, 2], is_write=True)
        merged = interleave([a, b])
        a_positions = [i for i, w in enumerate(merged.is_write) if not w]
        assert list(merged.blocks[a_positions]) == [10, 20, 30, 40]

    def test_proportional_mixing(self):
        # A 1000-access stream and a 10-access stream should interleave
        # roughly evenly: the small stream's accesses should not cluster.
        a = AccessStream.of(list(range(1000)))
        b = AccessStream.of(list(range(5000, 5010)), is_write=True)
        merged = interleave([a, b])
        write_positions = np.flatnonzero(merged.is_write)
        gaps = np.diff(write_positions)
        assert gaps.max() < 300  # evenly spread, not clumped at one end
        assert write_positions[0] < 200

    def test_single_stream_identity(self):
        a = AccessStream.of([1, 2, 3])
        assert interleave([a]) is a

    def test_empty_input(self):
        assert len(interleave([])) == 0
