"""Property-based tests for access classification and stream utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import AccessClass, classify_log, _CODE
from repro.core.overlap import ComponentTimes, component_overlap_runtime
from repro.trace.stream import AccessStream, interleave

REQUIRED = _CODE[AccessClass.REQUIRED]


@st.composite
def logs(draw):
    n = draw(st.integers(1, 300))
    blocks = draw(
        st.lists(st.integers(0, 40), min_size=n, max_size=n)
    )
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    # Logical stages are non-decreasing in program order.
    increments = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    stages = np.cumsum(increments).astype(np.int32)
    return (
        np.asarray(blocks, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        stages,
    )


@given(log=logs())
@settings(max_examples=80, deadline=None)
def test_every_access_labelled(log):
    blocks, writes, stages = log
    labels = classify_log(blocks, writes, stages)
    assert len(labels) == len(blocks)


@given(log=logs())
@settings(max_examples=80, deadline=None)
def test_first_touch_of_each_block_is_required_unless_spilled_forward(log):
    blocks, writes, stages = log
    labels = classify_log(blocks, writes, stages)
    seen = set()
    for i, block in enumerate(blocks):
        if block in seen:
            continue
        seen.add(block)
        if not writes[i]:
            # First read of a block is always compulsory.
            assert labels[i] == REQUIRED


@given(log=logs())
@settings(max_examples=80, deadline=None)
def test_single_access_blocks_are_required(log):
    blocks, writes, stages = log
    labels = classify_log(blocks, writes, stages)
    unique, counts = np.unique(blocks, return_counts=True)
    singles = set(unique[counts == 1].tolist())
    for i, block in enumerate(blocks):
        if int(block) in singles:
            assert labels[i] == REQUIRED


@given(log=logs())
@settings(max_examples=40, deadline=None)
def test_classification_deterministic(log):
    blocks, writes, stages = log
    l1 = classify_log(blocks, writes, stages)
    l2 = classify_log(blocks, writes, stages)
    assert np.array_equal(l1, l2)


# --- stream interleaving properties -----------------------------------------

streams_strategy = st.lists(
    st.lists(st.integers(0, 1000), min_size=1, max_size=100),
    min_size=1,
    max_size=4,
)


@given(parts=streams_strategy)
@settings(max_examples=60, deadline=None)
def test_interleave_preserves_multiset(parts):
    streams = [AccessStream.of(p) for p in parts]
    merged = interleave(streams)
    assert sorted(merged.blocks.tolist()) == sorted(
        b for p in parts for b in p
    )


@given(parts=streams_strategy)
@settings(max_examples=60, deadline=None)
def test_interleave_preserves_relative_order_of_first_stream(parts):
    streams = [
        AccessStream(
            np.asarray(p, dtype=np.int64),
            np.full(len(p), i == 0, dtype=bool),
        )
        for i, p in enumerate(parts)
    ]
    merged = interleave(streams)
    first = merged.blocks[merged.is_write]
    assert list(first) == parts[0]


# --- Eq. 1 properties -------------------------------------------------------

nonneg = st.floats(0.0, 1e3, allow_nan=False)


@given(cpu=nonneg, copy=nonneg, gpu=nonneg, serial_frac=st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_overlap_estimate_bounds(cpu, copy, gpu, serial_frac):
    cserial = cpu * serial_frac
    times = ComponentTimes(
        cpu_s=cpu, copy_s=copy, gpu_s=gpu, cserial_s=cserial,
        roi_s=cpu + copy + gpu,
    )
    estimate = component_overlap_runtime(times)
    # Rco is at least every single component's time...
    assert estimate.runtime_s >= cpu - 1e-9
    assert estimate.runtime_s >= copy - 1e-9
    assert estimate.runtime_s >= gpu - 1e-9
    # ...and never worse than full serialization.
    assert estimate.runtime_s <= cpu + copy + gpu + 1e-9


@given(cpu=nonneg, copy=nonneg, gpu=nonneg)
@settings(max_examples=100, deadline=None)
def test_more_serial_time_never_helps(cpu, copy, gpu):
    low = ComponentTimes(cpu_s=cpu, copy_s=copy, gpu_s=gpu, cserial_s=0.0,
                         roi_s=cpu + copy + gpu)
    high = ComponentTimes(cpu_s=cpu, copy_s=copy, gpu_s=gpu, cserial_s=cpu,
                          roi_s=cpu + copy + gpu)
    assert (
        component_overlap_runtime(high).runtime_s
        >= component_overlap_runtime(low).runtime_s - 1e-9
    )
