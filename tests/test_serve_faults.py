"""Fault injection through the serve API: crashes become status codes.

The server dispatches every job through the PR 5 fault supervisor, so a
worker that raises — or dies outright mid-sweep — must surface as a
``partial`` (or ``failed``) job with the structured per-run failure
records of :class:`repro.experiments.parallel.TaskFailure`, visible over
HTTP, and the server itself must keep serving.  Never a hang, never a
500.
"""

from __future__ import annotations

import asyncio

from repro.experiments.parallel import FATE_CRASHED, FATE_IN_PARENT
from repro.serve import ServeConfig, ServerThread
from repro.testing.faults import FaultRule, injected_faults

KMEANS = "rodinia/kmeans"
BFS = "lonestar/bfs"
SCALE = 1 / 128


def _config(tmp_path, **overrides) -> ServeConfig:
    overrides.setdefault("port", 0)
    overrides.setdefault("jobs", 1)
    overrides.setdefault("concurrency", 1)
    overrides.setdefault("cache_dir", tmp_path / "cache")
    overrides.setdefault("max_retries", 0)
    return ServeConfig(**overrides)


def _sweep(*benchmarks):
    return {"kind": "sweep", "benchmarks": sorted(benchmarks), "scale": SCALE}


def _run_job(server, body, timeout_s=120.0):
    client = server.client(timeout_s=timeout_s)
    return asyncio.run(client.run(body, timeout_s=timeout_s))


def test_raised_fault_yields_partial_with_structured_failure(tmp_path):
    with ServerThread(_config(tmp_path)) as server:
        with injected_faults({f"{BFS}:copy": FaultRule("raise")}):
            final = _run_job(server, _sweep(BFS, KMEANS))
    assert final["status"] == "partial"
    result = final["result"]
    # The innocent bystanders all completed.
    assert sorted(result["runs"]) == [
        f"{BFS}:limited-copy",
        f"{KMEANS}:copy",
        f"{KMEANS}:limited-copy",
    ]
    (failure,) = result["failures"]
    assert failure["benchmark"] == BFS
    assert failure["version"] == "copy"
    assert failure["error_type"] == "FaultInjected"
    assert failure["attempts"] == 1
    assert failure["worker_fate"] == FATE_IN_PARENT
    assert result["metrics"]["launched"] == 3


def test_killed_worker_yields_partial_not_a_hang(tmp_path):
    """A pool worker dying mid-sweep (the hardest failure) must complete
    the job with a ``crashed`` failure record over HTTP."""
    with ServerThread(_config(tmp_path, jobs=2)) as server:
        with injected_faults({f"{BFS}:copy": FaultRule("kill")}):
            final = _run_job(server, _sweep(BFS, KMEANS))
    assert final["status"] == "partial"
    result = final["result"]
    # A pool break charges every in-flight task (the culprit is
    # unknowable), so bystanders may fail alongside the killer — but
    # every run is accounted for, structured, and HTTP-visible.
    assert len(result["runs"]) + len(result["failures"]) == 4
    assert f"{BFS}:copy" not in result["runs"]
    failures = {
        (f["benchmark"], f["version"]): f for f in result["failures"]
    }
    culprit = failures[(BFS, "copy")]
    assert culprit["worker_fate"] == FATE_CRASHED
    assert culprit["error_type"] == "WorkerCrash"
    assert all(
        f["worker_fate"] == FATE_CRASHED for f in result["failures"]
    )
    assert result["metrics"]["pool_rebuilds"] >= 1


def test_retry_exhaustion_reports_attempts(tmp_path):
    with ServerThread(_config(tmp_path, max_retries=1)) as server:
        with injected_faults({f"{KMEANS}:copy": FaultRule("raise")}):
            final = _run_job(server, _sweep(KMEANS))
    (failure,) = final["result"]["failures"]
    assert failure["attempts"] == 2  # first try + one retry
    assert final["result"]["metrics"]["retries"] == 1


def test_transient_fault_retried_to_done(tmp_path):
    rules = {f"{KMEANS}:copy": FaultRule("raise", times=1)}
    with ServerThread(_config(tmp_path, max_retries=2)) as server:
        with injected_faults(rules, counter_dir=tmp_path / "faults"):
            final = _run_job(server, _sweep(KMEANS))
    assert final["status"] == "done"
    assert final["result"]["failures"] == []
    assert final["result"]["metrics"]["retries"] >= 1


def test_every_run_failing_yields_failed_status(tmp_path):
    rules = {
        f"{KMEANS}:copy": FaultRule("raise"),
        f"{KMEANS}:limited-copy": FaultRule("raise"),
    }
    with ServerThread(_config(tmp_path)) as server:
        with injected_faults(rules):
            final = _run_job(server, _sweep(KMEANS))
    assert final["status"] == "failed"
    assert final["result"]["runs"] == {}
    assert len(final["result"]["failures"]) == 2


def test_server_keeps_serving_after_faulted_job(tmp_path):
    """The partial-failure path must not poison the worker loop: the next
    (clean) job on the same server completes normally."""
    with ServerThread(_config(tmp_path)) as server:
        with injected_faults({f"{KMEANS}:copy": FaultRule("raise")}):
            faulted = _run_job(server, _sweep(KMEANS))
        clean = _run_job(server, _sweep(KMEANS, BFS))
        health = asyncio.run(server.client().health())
    assert faulted["status"] == "partial"
    assert clean["status"] == "done"
    assert len(clean["result"]["runs"]) == 4
    assert health["status"] == "ok"


def test_failed_runs_counted_in_dedup_stats(tmp_path):
    with ServerThread(_config(tmp_path)) as server:
        with injected_faults({f"{KMEANS}:copy": FaultRule("raise")}):
            _run_job(server, _sweep(KMEANS))
        stats = asyncio.run(server.client().cache_stats())
    assert stats["dedup"]["failed_runs"] == 1
    assert stats["dedup"]["computed_runs"] == 1  # the surviving run
