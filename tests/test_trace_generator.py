"""Tests for repro.trace.generator and repro.trace.alignment."""

import numpy as np
import pytest

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess, Region, Stage, StageKind
from repro.pipeline.transforms import remove_copies
from repro.trace.alignment import apply_misalignment
from repro.trace.generator import BufferLayout, TraceGenerator
from repro.trace.stream import AccessStream
from repro.units import KB


def pipeline_with(stage, buffers):
    b = PipelineBuilder("t")
    for name, size in buffers.items():
        b.buffer(name, size)
    built = b.build()
    return built.with_stages([stage])


def gpu_stage(access, name="k"):
    return Stage(name=name, kind=StageKind.GPU_KERNEL, flops=1.0, reads=(access,))


class TestBufferLayout:
    def test_buffers_page_aligned_and_disjoint(self):
        b = PipelineBuilder("t")
        b.buffer("a", 5000)  # not a page multiple
        b.buffer("b", 4096)
        layout = BufferLayout(b.build())
        assert layout.base_block("a") % layout.blocks_per_page == 0
        assert layout.base_block("b") % layout.blocks_per_page == 0
        a_pages = -(-layout.num_blocks("a") // layout.blocks_per_page)
        assert layout.base_block("b") >= layout.base_block("a") + a_pages * layout.blocks_per_page

    def test_block_range_full_region(self):
        b = PipelineBuilder("t")
        b.buffer("a", 64 * KB)
        layout = BufferLayout(b.build())
        lo, hi = layout.block_range(BufferAccess("a"))
        assert hi - lo == 64 * KB // 128

    def test_block_range_subregion(self):
        b = PipelineBuilder("t")
        b.buffer("a", 64 * KB)
        layout = BufferLayout(b.build())
        lo, hi = layout.block_range(BufferAccess("a", region=Region(0.25, 0.5)))
        assert hi - lo == 128  # quarter of 512 blocks

    def test_tiny_region_gets_at_least_one_block(self):
        b = PipelineBuilder("t")
        b.buffer("a", 4096)
        layout = BufferLayout(b.build())
        lo, hi = layout.block_range(
            BufferAccess("a", region=Region(0.0, 1e-6))
        )
        assert hi == lo + 1

    def test_pages_of(self):
        b = PipelineBuilder("t")
        b.buffer("a", 64 * KB)
        layout = BufferLayout(b.build())
        pages = layout.pages_of(np.array([0, 1, 32, 33], dtype=np.int64))
        assert list(pages) == [0, 1]

    def test_page_size_must_be_line_multiple(self):
        b = PipelineBuilder("t")
        b.buffer("a", 4096)
        with pytest.raises(ValueError):
            BufferLayout(b.build(), line_bytes=128, page_bytes=200)


class TestPatternSynthesis:
    def make_gen(self, access, size=64 * KB):
        stage = gpu_stage(access)
        pipeline = pipeline_with(stage, {"a": size})
        return TraceGenerator(pipeline), stage

    def test_streaming_is_one_sequential_sweep(self):
        gen, stage = self.make_gen(BufferAccess("a"))
        trace = gen.stage_trace(stage)
        blocks = trace.stream.blocks
        assert len(blocks) == 512
        assert list(blocks) == sorted(blocks)
        assert trace.unique_blocks == 512

    def test_passes_repeat_the_sweep(self):
        gen, stage = self.make_gen(BufferAccess("a", passes=2.5))
        trace = gen.stage_trace(stage)
        assert len(trace.stream) == 1280
        assert trace.unique_blocks == 512

    def test_fraction_touches_subset(self):
        gen, stage = self.make_gen(BufferAccess("a", fraction=0.25))
        trace = gen.stage_trace(stage)
        assert trace.unique_blocks == 128

    def test_random_stays_in_region(self):
        gen, stage = self.make_gen(
            BufferAccess("a", AccessPattern.RANDOM, region=Region(0.0, 0.5), passes=4.0)
        )
        trace = gen.stage_trace(stage)
        assert trace.stream.blocks.max() < 256

    def test_graph_pattern_has_hot_blocks(self):
        gen, stage = self.make_gen(
            BufferAccess("a", AccessPattern.GRAPH, passes=16.0), size=512 * KB
        )
        trace = gen.stage_trace(stage)
        _, counts = np.unique(trace.stream.blocks, return_counts=True)
        # Skewed popularity: the hottest block sees far more than the mean.
        assert counts.max() > 4 * counts.mean()

    def test_stencil_triples_accesses(self):
        gen, stage = self.make_gen(BufferAccess("a", AccessPattern.STENCIL))
        trace = gen.stage_trace(stage)
        assert len(trace.stream) == 3 * 512

    def test_broadcast_repeats_small_region(self):
        gen, stage = self.make_gen(
            BufferAccess("a", AccessPattern.BROADCAST, passes=8.0), size=4096
        )
        trace = gen.stage_trace(stage)
        assert trace.unique_blocks == 32
        assert len(trace.stream) == 256

    def test_writes_marked_as_writes(self):
        stage = Stage(
            name="k",
            kind=StageKind.GPU_KERNEL,
            writes=(BufferAccess("a"),),
        )
        pipeline = pipeline_with(stage, {"a": 4096})
        trace = TraceGenerator(pipeline).stage_trace(stage)
        assert trace.stream.num_writes == len(trace.stream)

    def test_reads_and_writes_interleaved(self):
        stage = Stage(
            name="k",
            kind=StageKind.GPU_KERNEL,
            reads=(BufferAccess("a"),),
            writes=(BufferAccess("b"),),
        )
        pipeline = pipeline_with(stage, {"a": 64 * KB, "b": 64 * KB})
        trace = TraceGenerator(pipeline).stage_trace(stage)
        first_write = np.flatnonzero(trace.stream.is_write)[0]
        assert first_write < 10  # writes start near the beginning, not the end


class TestDeterminism:
    def test_same_seed_same_stream(self):
        access = BufferAccess("a", AccessPattern.RANDOM, passes=2.0)
        stage = gpu_stage(access)
        pipeline = pipeline_with(stage, {"a": 64 * KB})
        t1 = TraceGenerator(pipeline, seed=3).stage_trace(stage)
        t2 = TraceGenerator(pipeline, seed=3).stage_trace(stage)
        assert np.array_equal(t1.stream.blocks, t2.stream.blocks)

    def test_different_seed_different_stream(self):
        access = BufferAccess("a", AccessPattern.RANDOM, passes=2.0)
        stage = gpu_stage(access)
        pipeline = pipeline_with(stage, {"a": 64 * KB})
        t1 = TraceGenerator(pipeline, seed=1).stage_trace(stage)
        t2 = TraceGenerator(pipeline, seed=2).stage_trace(stage)
        assert not np.array_equal(t1.stream.blocks, t2.stream.blocks)


class TestMisalignment:
    def test_apply_misalignment_inflates_stream(self):
        rng = np.random.default_rng(0)
        stream = AccessStream.of(list(range(1000)))
        inflated = apply_misalignment(stream, rng, extra_passes=0.5)
        assert len(inflated) == 1500
        # Refetches are reads of the straddled neighbour block.
        assert inflated.num_writes == 0

    def test_zero_extra_passes_is_identity(self):
        rng = np.random.default_rng(0)
        stream = AccessStream.of([1, 2, 3])
        assert apply_misalignment(stream, rng, extra_passes=0.0) is stream

    def test_empty_stream_identity(self):
        rng = np.random.default_rng(0)
        stream = AccessStream.empty()
        assert apply_misalignment(stream, rng) is stream

    def test_only_applies_to_gpu_stages_in_limited_copy(self):
        b = PipelineBuilder("t")
        b.buffer("a", 64 * KB, cpu_line_aligned=False)
        b.copy_h2d("a")
        b.gpu_kernel("k", flops=1.0, reads=["a_dev"])
        pipeline = b.build()

        # Copy version: GPU reads the (aligned) mirror; no inflation.
        gen = TraceGenerator(pipeline)
        copy_len = len(gen.stage_trace(pipeline.stage("k")).stream)

        limited = remove_copies(pipeline)
        gen_lc = TraceGenerator(limited)
        lc_len = len(gen_lc.stage_trace(limited.stage("k")).stream)
        assert lc_len > copy_len

    def test_aligned_buffers_not_inflated_in_limited_copy(self):
        b = PipelineBuilder("t")
        b.buffer("a", 64 * KB, cpu_line_aligned=True)
        b.copy_h2d("a")
        b.gpu_kernel("k", flops=1.0, reads=["a_dev"])
        limited = remove_copies(b.build())
        gen = TraceGenerator(limited)
        assert len(gen.stage_trace(limited.stage("k")).stream) == 512
