"""Tests for repro.config.system."""

import pytest

from repro.config.components import PcieConfig
from repro.config.system import (
    TABLE_I,
    PageFaultConfig,
    SystemConfig,
    SystemKind,
    discrete_gpu_system,
    heterogeneous_processor,
    table_i,
)


class TestFactories:
    def test_discrete_has_pcie_and_split_memories(self):
        system = discrete_gpu_system()
        assert system.kind is SystemKind.DISCRETE
        assert system.pcie is not None
        assert system.cpu_memory.name != system.gpu_memory.name
        assert not system.shared_memory

    def test_heterogeneous_shares_gddr5_without_pcie(self):
        system = heterogeneous_processor()
        assert system.kind is SystemKind.HETEROGENEOUS
        assert system.pcie is None
        assert system.cpu_memory.name == system.gpu_memory.name == "GDDR5"
        assert system.shared_memory

    def test_page_faults_only_on_heterogeneous(self):
        assert not discrete_gpu_system().page_faults.enabled
        assert heterogeneous_processor().page_faults.enabled

    def test_same_cores_in_both_systems(self):
        discrete = discrete_gpu_system()
        hetero = heterogeneous_processor()
        assert discrete.cpu == hetero.cpu
        assert discrete.gpu == hetero.gpu

    def test_interconnect_port_counts(self):
        assert discrete_gpu_system().interconnect.ports == 6
        assert heterogeneous_processor().interconnect.ports == 12


class TestValidation:
    def test_discrete_requires_pcie(self):
        base = discrete_gpu_system()
        with pytest.raises(ValueError, match="PCIe"):
            SystemConfig(
                kind=SystemKind.DISCRETE,
                cpu=base.cpu,
                gpu=base.gpu,
                cpu_memory=base.cpu_memory,
                gpu_memory=base.gpu_memory,
                pcie=None,
                interconnect=base.interconnect,
                page_faults=base.page_faults,
            )

    def test_heterogeneous_forbids_pcie(self):
        base = heterogeneous_processor()
        with pytest.raises(ValueError, match="PCIe"):
            SystemConfig(
                kind=SystemKind.HETEROGENEOUS,
                cpu=base.cpu,
                gpu=base.gpu,
                cpu_memory=base.cpu_memory,
                gpu_memory=base.gpu_memory,
                pcie=PcieConfig(),
                interconnect=base.interconnect,
                page_faults=base.page_faults,
            )


class TestScaling:
    def test_scaled_shrinks_caches_proportionally(self):
        system = discrete_gpu_system().scaled(1 / 16)
        assert system.gpu.l2.capacity_bytes == discrete_gpu_system().gpu.l2.capacity_bytes // 16
        assert system.cpu.l2.capacity_bytes == discrete_gpu_system().cpu.l2.capacity_bytes // 16

    def test_scaled_preserves_bandwidth_and_flops(self):
        base = discrete_gpu_system()
        scaled = base.scaled(1 / 8)
        assert scaled.gpu_memory.peak_bandwidth == base.gpu_memory.peak_bandwidth
        assert scaled.gpu.peak_flops == base.gpu.peak_flops

    def test_scaled_shrinks_launch_latencies(self):
        base = discrete_gpu_system()
        scaled = base.scaled(1 / 4)
        assert scaled.kernel_launch_latency_s == pytest.approx(
            base.kernel_launch_latency_s / 4
        )
        assert scaled.pcie.copy_launch_latency_s == pytest.approx(
            base.pcie.copy_launch_latency_s / 4
        )

    def test_scaled_preserves_fault_and_miss_latencies(self):
        base = heterogeneous_processor()
        scaled = base.scaled(1 / 4)
        assert scaled.page_faults.service_latency_s == base.page_faults.service_latency_s
        assert scaled.cpu.miss_latency_s == base.cpu.miss_latency_s

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            discrete_gpu_system().scaled(-1.0)


class TestTableI:
    def test_table_i_mentions_key_parameters(self):
        text = " ".join(TABLE_I.values())
        for fragment in ("3.5GHz", "700MHz", "24 GB/s", "179 GB/s", "8 GB/s", "128B"):
            assert fragment in text

    def test_table_i_is_reproducible(self):
        assert table_i() == TABLE_I


class TestPageFaultConfig:
    def test_defaults(self):
        config = PageFaultConfig()
        assert config.page_bytes == 4096
        assert config.hidden_parallelism > 1.0
        assert config.serialization_penalty >= 1.0
