"""Concurrency guarantees of the ResultCache, exercised with real threads.

Two properties back the serve stack's warm path:

* **No torn entries** — stores are atomic (temp file + ``os.replace``),
  so a reader hammering a key that writers are replacing sees either a
  miss or a complete, valid entry; never garbage.
* **Single flight** — :meth:`ResultCache.get_or_compute` holds a per-key
  lock around the load-compute-store window, so N racing clients missing
  on the same key cost exactly one computation.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.config.system import discrete_gpu_system
from repro.sim.engine import SimOptions, simulate
from repro.sim.resultcache import _FLIGHTS, ResultCache
from repro.sim.serialize import results_identical
from repro.workloads.registry import get

from .conftest import build_offload_pipeline


def _result():
    """One real (tiny) simulation result to store under test keys."""
    return simulate(
        build_offload_pipeline(),
        discrete_gpu_system(),
        SimOptions(scale=1 / 512, seed=3),
    )


def test_concurrent_store_and_load_never_tear(tmp_path):
    """Readers racing writers on the same keys see misses or full
    entries — a torn/partial file would fail deserialization loudly."""
    cache = ResultCache(tmp_path)
    result = _result()
    keys = [f"{i:x}" * 16 for i in range(4)]
    stop = threading.Event()
    problems: list = []

    def writer(key: str) -> None:
        while not stop.is_set():
            cache.store(key, result, sim_wall_s=0.5)

    def reader(key: str) -> None:
        seen = 0
        while not stop.is_set() or seen == 0:
            entry = cache.load(key)
            if entry is None:
                continue
            seen += 1
            if not results_identical(entry.result, result):
                problems.append(f"torn entry under {key}")
                return

    threads = [
        threading.Thread(target=fn, args=(key,))
        for key in keys
        for fn in (writer, reader)
    ]
    for thread in threads:
        thread.start()
    time.sleep(1.0)
    stop.set()
    for thread in threads:
        thread.join(30.0)
    assert not problems
    for key in keys:
        entry = cache.load(key)
        assert entry is not None
        assert results_identical(entry.result, result)


class TestSingleFlight:
    def test_racing_misses_cost_one_computation(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        key = "ab" * 32
        computations = []
        barrier = threading.Barrier(16)

        def compute():
            computations.append(threading.get_ident())
            time.sleep(0.05)  # widen the window the lock must cover
            return result

        def client():
            barrier.wait()
            return cache.get_or_compute(key, compute)

        with ThreadPoolExecutor(max_workers=16) as pool:
            outcomes = [f.result() for f in [pool.submit(client) for _ in range(16)]]
        assert len(computations) == 1
        assert sum(computed for _, computed in outcomes) == 1
        for entry, _ in outcomes:
            assert results_identical(entry.result, result)

    def test_warm_key_skips_compute_entirely(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        key = "cd" * 32
        cache.store(key, result, sim_wall_s=1.25)

        def compute():
            raise AssertionError("compute ran despite a warm cache")

        entry, computed = cache.get_or_compute(key, compute)
        assert not computed
        assert entry.sim_wall_s == 1.25

    def test_distinct_keys_do_not_serialize(self, tmp_path):
        """The lock is per-key: four keys computing 100ms each across four
        threads must overlap, not queue up behind one global lock."""
        cache = ResultCache(tmp_path)
        result = _result()

        def client(key: str):
            return cache.get_or_compute(
                key, lambda: time.sleep(0.1) or result
            )

        keys = [f"{i:x}" * 16 for i in range(4)]
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(client, key) for key in keys]:
                future.result()
        wall = time.perf_counter() - start
        assert wall < 0.35, f"distinct keys serialized: {wall:.2f}s"

    def test_distinct_roots_do_not_serialize(self, tmp_path):
        """Same key under different cache directories — independent."""
        a = ResultCache(tmp_path / "a")
        b = ResultCache(tmp_path / "b")
        key = "ef" * 32
        order = []
        with a.lock(key):
            order.append("a-held")
            with b.lock(key):  # must not deadlock or block
                order.append("b-held")
        assert order == ["a-held", "b-held"]

    def test_lock_registry_drains_after_use(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        keys = [f"{i:x}" * 16 for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(cache.get_or_compute, key, lambda: result)
                for key in keys
                for _ in range(4)
            ]
            for future in futures:
                future.result()
        assert not _FLIGHTS, "single-flight registry leaked lock slots"

    def test_reentrant_use_after_contention(self, tmp_path):
        """A key's slot is dropped at refcount zero and recreated on the
        next use; interleaving must never raise or deadlock."""
        cache = ResultCache(tmp_path)
        for _ in range(100):
            with cache.lock("aa" * 32):
                pass
        assert not _FLIGHTS
