"""Property-based tests for the cache model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.components import CacheConfig
from repro.sim.cache import SetAssocCache
from repro.trace.stream import AccessStream

block_lists = st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=400)
write_flags = st.lists(st.booleans(), min_size=1, max_size=400)
geometries = st.sampled_from([(1, 1), (2, 2), (4, 2), (8, 4), (16, 8), (64, 8)])


def make_cache(lines, assoc):
    return SetAssocCache(CacheConfig(lines * 128, associativity=assoc))


def make_stream(blocks, writes=None):
    arr = np.asarray(blocks, dtype=np.int64)
    if writes is None:
        flags = np.zeros(len(arr), dtype=bool)
    else:
        flags = np.asarray((writes * len(arr))[: len(arr)], dtype=bool)
    return AccessStream(arr, flags)


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(blocks, geometry):
    lines, assoc = geometry
    cache = make_cache(lines, assoc)
    cache.access_stream(make_stream(blocks))
    assert cache.occupancy <= lines


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_last_accessed_block_always_resident(blocks, geometry):
    lines, assoc = geometry
    cache = make_cache(lines, assoc)
    cache.access_stream(make_stream(blocks))
    assert blocks[-1] in cache


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_misses_at_least_unique_blocks_over_capacity(blocks, geometry):
    lines, assoc = geometry
    cache = make_cache(lines, assoc)
    cache.access_stream(make_stream(blocks))
    unique = len(set(blocks))
    assert cache.stats.misses >= min(unique, 1)
    assert cache.stats.misses >= unique - lines + 1 or unique <= lines
    assert cache.stats.hits + cache.stats.misses == len(blocks)


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_downstream_reads_equal_misses(blocks, geometry):
    lines, assoc = geometry
    cache = make_cache(lines, assoc)
    out = cache.access_stream(make_stream(blocks))
    fills = int((~out.is_write).sum())
    assert fills == cache.stats.misses


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_replay_is_deterministic(blocks, geometry):
    lines, assoc = geometry
    out1 = make_cache(lines, assoc).access_stream(make_stream(blocks))
    out2 = make_cache(lines, assoc).access_stream(make_stream(blocks))
    assert np.array_equal(out1.blocks, out2.blocks)
    assert np.array_equal(out1.is_write, out2.is_write)


@given(blocks=block_lists, writes=st.lists(st.booleans(), min_size=1, max_size=8), geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_writebacks_only_for_written_blocks(blocks, writes, geometry):
    lines, assoc = geometry
    cache = make_cache(lines, assoc)
    stream = make_stream(blocks, writes)
    out = cache.access_stream(stream)
    out.blocks[out.is_write]
    written_blocks = set(stream.blocks[stream.is_write].tolist())
    for block in out.blocks[out.is_write]:
        assert int(block) in written_blocks


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_drain_after_reads_is_empty(blocks, geometry):
    lines, assoc = geometry
    cache = make_cache(lines, assoc)
    cache.access_stream(make_stream(blocks))
    assert cache.drain() == []


@given(blocks=block_lists, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_bigger_cache_never_misses_more(blocks, geometry):
    lines, assoc = geometry
    small = make_cache(lines, assoc)
    big = make_cache(lines * 4, assoc)
    small.access_stream(make_stream(blocks))
    big.access_stream(make_stream(blocks))
    # LRU with same associativity scaling is inclusion-friendly here because
    # we scale sets; allow equality.
    assert big.stats.misses <= small.stats.misses
