"""RPL203: the spec declares regular producer-consumer constructs, but
every P-C edge in the pipeline is consumed irregularly."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec

RULE = "RPL203"
STAGE = None
BUFFER = None


def build():
    b = PipelineBuilder("fixture/rpl203_regular_pc")
    b.buffer("t", 1 * MB, temporary=True)
    b.gpu_kernel("producer", flops=1e6, writes=[BufferAccess("t")])
    b.gpu_kernel(
        "consumer", flops=1e6,
        reads=[BufferAccess("t", AccessPattern.POINTER_CHASE)],
    )
    pipeline = b.build()
    spec = BenchmarkSpec(
        name="rpl203_regular_pc",
        suite="fixture",
        description="declares regular_pc despite only irregular consumption",
        pc_comm=True,
        pipe_parallel=True,
        regular_pc=True,
        irregular=True,
        sw_queue=False,
        build=lambda: pipeline,
    )
    return pipeline, spec
