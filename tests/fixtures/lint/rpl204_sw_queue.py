"""RPL204: the spec declares a software worklist, but no kernel both pops
and pushes a device-resident queue buffer."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec

RULE = "RPL204"
STAGE = None
BUFFER = None


def build():
    b = PipelineBuilder("fixture/rpl204_sw_queue")
    b.buffer("t", 1 * MB, temporary=True)
    b.gpu_kernel("producer", flops=1e6, writes=[BufferAccess("t")])
    b.gpu_kernel("consumer", flops=1e6, reads=[BufferAccess("t")])
    pipeline = b.build()
    spec = BenchmarkSpec(
        name="rpl204_sw_queue",
        suite="fixture",
        description="declares sw_queue without a worklist structure",
        pc_comm=True,
        pipe_parallel=True,
        regular_pc=True,
        irregular=False,
        sw_queue=True,
        build=lambda: pipeline,
    )
    return pipeline, spec
