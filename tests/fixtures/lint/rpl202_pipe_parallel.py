"""RPL202: the spec declares the pipeline cannot be parallelized, yet its
stages are explicitly marked chunkable."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec

RULE = "RPL202"
STAGE = None
BUFFER = None


def build():
    b = PipelineBuilder("fixture/rpl202_pipe_parallel")
    b.buffer("t", 1 * MB, temporary=True)
    b.gpu_kernel("producer", flops=1e6, writes=[BufferAccess("t")])
    b.gpu_kernel(
        "consumer", flops=1e6, reads=[BufferAccess("t")], chunkable=True
    )
    pipeline = b.build()
    spec = BenchmarkSpec(
        name="rpl202_pipe_parallel",
        suite="fixture",
        description="declares pipe_parallel=False despite chunkable stages",
        pc_comm=True,
        pipe_parallel=False,
        regular_pc=True,
        irregular=False,
        sw_queue=False,
        build=lambda: pipeline,
    )
    return pipeline, spec
