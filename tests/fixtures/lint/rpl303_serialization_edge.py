"""RPL303: the builder's default serial chaining makes kernel ``ka`` wait
for the upload of ``b`` even though it only consumes ``a`` — a classic
bulk-synchronous edge that blocks copy/compute overlap."""

from repro.pipeline.buffers import MemorySpace
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL303"
STAGE = "ka"
BUFFER = None
OPPORTUNITIES = True


def build():
    b = PipelineBuilder(
        "fixture/rpl303_serialization_edge", metadata={"outputs": ("out",)}
    )
    b.buffer("a", 1 * MB)
    b.buffer("b", 1 * MB)
    b.buffer("out", 1 * MB)
    b.buffer("o_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.copy_h2d("a", name="h2d_a")
    b.copy_h2d("b", name="h2d_b")
    # Serial edge h2d_b -> ka carries no data: ka reads only a_dev.
    b.gpu_kernel(
        "ka", flops=1e6, reads=["a_dev"], writes=[BufferAccess("o_dev")]
    )
    b.gpu_kernel(
        "kb",
        flops=1e6,
        reads=["b_dev", "o_dev"],
        writes=[BufferAccess("o_dev")],
    )
    b.copy_d2h("o_dev", "out", name="d2h_out", mirror=False)
    return b.build(), None
