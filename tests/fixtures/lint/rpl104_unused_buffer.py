"""RPL104: a declared allocation no stage ever touches."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL104"
STAGE = None
BUFFER = "forgotten"


def build():
    b = PipelineBuilder("fixture/rpl104_unused_buffer")
    b.buffer("used", 1 * MB, temporary=True)
    b.buffer("forgotten", 8 * MB)
    b.gpu_kernel("kernel", flops=1e6, writes=[BufferAccess("used")])
    return b.build(), None
