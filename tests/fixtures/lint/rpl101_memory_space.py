"""RPL101: on the discrete system a GPU kernel reads a CPU allocation
directly, with no interposed copy and no temporary marking."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL101"
STAGE = "kernel"
BUFFER = "host_data"


def build():
    b = PipelineBuilder("fixture/rpl101_memory_space")
    b.buffer("host_data", 4 * MB)  # MemorySpace.CPU, not temporary
    b.buffer("out", 1 * MB, temporary=True)
    b.gpu_kernel(
        "kernel", flops=1e6,
        reads=[BufferAccess("host_data")], writes=[BufferAccess("out")],
    )
    return b.build(), None
