"""RPL302: a device-to-device move ported naively as a round trip through a
host bounce buffer that exists only to forward the bytes."""

from repro.pipeline.buffers import MemorySpace
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL302"
STAGE = "d2h_r"
BUFFER = "bounce"


def build():
    b = PipelineBuilder(
        "fixture/rpl302_fusible_copies", metadata={"outputs": ("out",)}
    )
    b.buffer("x", 1 * MB)
    b.buffer("bounce", 1 * MB)  # host staging: only h2d_bounce reads it
    b.buffer("out", 1 * MB)
    b.buffer("r_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.buffer("r2_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.buffer("o_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.copy_h2d("x", name="h2d_x")
    b.gpu_kernel(
        "produce", flops=1e6, reads=["x_dev"], writes=[BufferAccess("r_dev")]
    )
    b.copy_d2h("r_dev", "bounce", name="d2h_r", mirror=False)
    b.copy_h2d("bounce", "r2_dev", name="h2d_bounce", mirror=False)
    b.gpu_kernel(
        "consume", flops=1e6, reads=["r2_dev"], writes=[BufferAccess("o_dev")]
    )
    b.copy_d2h("o_dev", "out", name="d2h_out", mirror=False)
    return b.build(), None
