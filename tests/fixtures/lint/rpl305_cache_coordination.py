"""RPL305: a limited-copy CPU->GPU hand-off whose shared working set is
four times the combined on-chip L2 capacity — without coordination the
producer has evicted everything before the consumer arrives."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL305"
STAGE = "visit"
BUFFER = "frontier"
OPPORTUNITIES = True


def build():
    b = PipelineBuilder(
        "fixture/rpl305_cache_coordination", metadata={"outputs": ("out",)}
    )
    b.buffer("frontier", 8 * MB)  # CPU L2s + GPU L2 hold only 2 MB
    b.buffer("out", 1 * MB)
    # High intensity keeps RPL304 quiet: this stage is compute-bound.
    b.cpu_stage(
        "expand",
        flops=1e9,
        reads=["frontier"],
        writes=[BufferAccess("frontier")],
    )
    b.gpu_kernel(
        "visit", flops=1e9, reads=["frontier"], writes=[BufferAccess("out")]
    )
    pipeline = b.build()
    return pipeline.with_stages(pipeline.stages, limited_copy=True), None
