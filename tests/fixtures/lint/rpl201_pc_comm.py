"""RPL201: the spec declares no producer-consumer communication, but one
kernel clearly feeds another through a buffer."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec

RULE = "RPL201"
STAGE = None
BUFFER = None


def build():
    b = PipelineBuilder("fixture/rpl201_pc_comm")
    b.buffer("t", 1 * MB, temporary=True)
    b.gpu_kernel("producer", flops=1e6, writes=[BufferAccess("t")])
    # GRAPH consumption keeps the derived regular_pc flag False, so only
    # the pc_comm contradiction fires.
    b.gpu_kernel(
        "consumer", flops=1e6,
        reads=[BufferAccess("t", AccessPattern.GRAPH)],
    )
    pipeline = b.build()
    spec = BenchmarkSpec(
        name="rpl201_pc_comm",
        suite="fixture",
        description="declares pc_comm=False despite a P-C edge",
        pc_comm=False,
        pipe_parallel=False,
        regular_pc=False,
        irregular=True,
        sw_queue=False,
        build=lambda: pipeline,
    )
    return pipeline, spec
