"""RPL001: a consumer kernel races a producer it never waits for."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL001"
STAGE = "reader"
BUFFER = "x"


def build():
    b = PipelineBuilder("fixture/rpl001_raw")
    b.buffer("x", 1 * MB, temporary=True)
    b.gpu_kernel("writer", flops=1e6, writes=[BufferAccess("x")])
    # after=[] drops the implicit chain: reader no longer waits for writer.
    b.gpu_kernel("reader", flops=1e6, reads=[BufferAccess("x")], after=[])
    return b.build(), None
