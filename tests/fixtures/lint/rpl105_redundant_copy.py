"""RPL105: a drain copy fills a host buffer that nothing reads and that is
not a declared output."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL105"
STAGE = "d2h_res"
BUFFER = "res"


def build():
    b = PipelineBuilder("fixture/rpl105_redundant_copy")  # no outputs declared
    b.buffer("res", 1 * MB)
    b.mirror("res")
    b.gpu_kernel("kernel", flops=1e6, writes=[BufferAccess("res_dev")])
    b.copy_d2h("res_dev", "res", name="d2h_res")
    return b.build(), None
