"""RPL304: a host-side reduction doing well under one flop per byte over a
large array — memory-bound, so it should migrate next to the data instead
of pulling the data across the chip."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL304"
STAGE = "reduce_host"
BUFFER = None
OPPORTUNITIES = True


def build():
    b = PipelineBuilder(
        "fixture/rpl304_migration_candidate", metadata={"outputs": ("hist",)}
    )
    b.buffer("data", 8 * MB)
    b.buffer("hist", 1 * MB)
    # ~0.42 flop/byte over 9 MB touched: far below the 4 flop/byte ridge.
    b.cpu_stage(
        "reduce_host",
        flops=4e6,
        reads=["data"],
        writes=[BufferAccess("hist")],
    )
    return b.build(), None
