"""RPL003: a later writer can clobber a buffer a reader is still using."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL003"
STAGE = "writer"
BUFFER = "x"


def build():
    b = PipelineBuilder("fixture/rpl003_war")
    b.buffer("x", 1 * MB, temporary=True)
    b.buffer("y", 1 * MB, temporary=True)
    b.gpu_kernel(
        "reader", flops=1e6,
        reads=[BufferAccess("x")], writes=[BufferAccess("y")],
    )
    b.gpu_kernel("writer", flops=1e6, writes=[BufferAccess("x")], after=[])
    return b.build(), None
