"""RPL102: a mirror-fill copy whose endpoints differ in size."""

from repro.pipeline.buffers import MemorySpace
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL102"
STAGE = "h2d_a_1"
BUFFER = "a_half"


def build():
    b = PipelineBuilder("fixture/rpl102_copy_endpoints")
    b.buffer("a", 2 * MB)
    # A hand-rolled "mirror" half the size of the allocation it replicates.
    b.buffer("a_half", 1 * MB, space=MemorySpace.GPU)
    b.copy_h2d("a", "a_half")
    b.gpu_kernel("kernel", flops=1e6, reads=[BufferAccess("a_half")])
    return b.build(), None
