"""RPL301: an upload whose bytes a device-side init kernel fully overwrites
before anything reads them — the copy moves data no one can observe."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL301"
STAGE = "h2d_tour"
BUFFER = "tour_dev"


def build():
    b = PipelineBuilder(
        "fixture/rpl301_dead_copy", metadata={"outputs": ("tour",)}
    )
    b.buffer("tour", 1 * MB)
    b.copy_h2d("tour", name="h2d_tour")  # clobbered by "init" before any read
    b.gpu_kernel("init", flops=1e6, writes=[BufferAccess("tour_dev")])
    b.copy_d2h("tour_dev", "tour", name="d2h_tour")
    return b.build(), None
