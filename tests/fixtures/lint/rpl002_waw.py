"""RPL002: two unordered kernels write overlapping bytes of one buffer."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL002"
STAGE = "second_writer"
BUFFER = "x"


def build():
    b = PipelineBuilder("fixture/rpl002_waw")
    b.buffer("x", 1 * MB, temporary=True)
    b.gpu_kernel("first_writer", flops=1e6, writes=[BufferAccess("x")])
    b.gpu_kernel(
        "second_writer", flops=1e6, writes=[BufferAccess("x")], after=[]
    )
    return b.build(), None
