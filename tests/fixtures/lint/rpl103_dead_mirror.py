"""RPL103: a mirror survives the limited-copy port although no residual
copy pins it — its accesses should have been redirected to the host
allocation."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB

RULE = "RPL103"
STAGE = None
BUFFER = "data_dev"


def build():
    b = PipelineBuilder("fixture/rpl103_dead_mirror")
    b.buffer("data", 4 * MB)
    b.mirror("data")
    b.gpu_kernel("kernel", flops=1e6, reads=[BufferAccess("data_dev")])
    b.cpu_stage("host_use", flops=1e5, reads=[BufferAccess("data")])
    pipeline = b.build()
    # Hand-mark the pipeline as ported without running remove_copies: the
    # mirror is now dead weight that the port would have eliminated.
    return pipeline.with_stages(pipeline.stages, limited_copy=True), None
