"""RPL106: after copy removal the GPU touches a misaligned CPU allocation
but the spec does not carry the Fig. 5 ``misaligned_limited_copy`` flag."""

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec

RULE = "RPL106"
STAGE = "kernel"
BUFFER = "grid"


def build():
    b = PipelineBuilder("fixture/rpl106_misaligned")
    b.buffer("grid", 4 * MB, cpu_line_aligned=False)
    b.gpu_kernel("kernel", flops=1e6, reads=[BufferAccess("grid")])
    pipeline = b.build()
    limited = pipeline.with_stages(pipeline.stages, limited_copy=True)
    spec = BenchmarkSpec(
        name="rpl106_misaligned",
        suite="fixture",
        description="misaligned limited-copy access without the flag",
        pc_comm=False,
        pipe_parallel=False,
        regular_pc=False,
        irregular=False,
        sw_queue=False,
        build=lambda: pipeline,
        misaligned_limited_copy=False,
    )
    return limited, spec
