"""Tests for repro.sim.engine (the discrete-event scheduler)."""

import numpy as np
import pytest

from repro.pipeline.transforms import (
    parallel_producer_consumer,
    remove_copies,
)
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.sim.results import merge_intervals

from tests.conftest import TINY_SCALE, build_offload_pipeline


class TestBulkSynchronousExecution:
    def test_stages_serialize(self, offload_pipeline, discrete, tiny_options):
        result = simulate(offload_pipeline, discrete, tiny_options)
        records = sorted(result.stages, key=lambda r: r.start_s)
        for earlier, later in zip(records, records[1:]):
            # Bulk-synchronous chain: each stage starts no earlier than the
            # previous one ends (modulo launch slivers).
            assert later.start_s >= earlier.end_s - 1e-12

    def test_roi_is_last_stage_end(self, offload_pipeline, discrete, tiny_options):
        result = simulate(offload_pipeline, discrete, tiny_options)
        assert result.roi_s == pytest.approx(max(r.end_s for r in result.stages))

    def test_components_assigned_correctly(self, offload_pipeline, discrete, tiny_options):
        result = simulate(offload_pipeline, discrete, tiny_options)
        for record in result.stages:
            if record.name.startswith(("h2d", "d2h")):
                assert record.component is Component.COPY
            elif record.name.startswith("map"):
                assert record.component is Component.GPU
            elif record.name.startswith("reduce"):
                assert record.component is Component.CPU

    def test_launch_slivers_recorded(self, offload_pipeline, discrete, tiny_options):
        result = simulate(offload_pipeline, discrete, tiny_options)
        gpu_and_copy = [
            r for r in result.stages if r.component is not Component.CPU
        ]
        assert len(result.launch_intervals) == len(gpu_and_copy)

    def test_cserial_positive_for_serialized_pipeline(
        self, offload_pipeline, discrete, tiny_options
    ):
        result = simulate(offload_pipeline, discrete, tiny_options)
        assert result.serial_launch_time() > 0


class TestChunkedOverlap:
    def test_chunking_overlaps_components(self, offload_pipeline, heterogeneous, tiny_options):
        limited = remove_copies(offload_pipeline)
        serial = simulate(limited, heterogeneous, tiny_options)
        chunked = simulate(
            parallel_producer_consumer(limited, 8), heterogeneous, tiny_options
        )
        assert chunked.overlapped_time() > serial.overlapped_time()
        assert chunked.roi_s < serial.roi_s

    def test_single_server_per_component(self, offload_pipeline, discrete, tiny_options):
        from repro.pipeline.transforms import fission_async_streams

        chunked = fission_async_streams(offload_pipeline, 4)
        result = simulate(chunked, discrete, tiny_options)
        for component in (Component.GPU, Component.COPY):
            records = [r for r in result.stages if r.component is component]
            records.sort(key=lambda r: r.start_s)
            for earlier, later in zip(records, records[1:]):
                assert later.start_s >= earlier.end_s - 1e-12


class TestMemoryAccounting:
    def test_log_length_matches_offchip_counts(
        self, offload_pipeline, discrete, tiny_options
    ):
        result = simulate(offload_pipeline, discrete, tiny_options)
        # The log also holds end-of-ROI drain writebacks, so it is at least
        # the per-stage off-chip sum.
        stage_sum = sum(r.offchip_accesses for r in result.stages)
        assert result.offchip_accesses() >= stage_sum

    def test_footprint_tracks_all_components(
        self, offload_pipeline, discrete, tiny_options
    ):
        result = simulate(offload_pipeline, discrete, tiny_options)
        assert len(result.touched_blocks[Component.GPU]) > 0
        assert len(result.touched_blocks[Component.COPY]) > 0
        assert len(result.touched_blocks[Component.CPU]) > 0

    def test_flops_accounted_by_component(self, offload_pipeline, discrete, tiny_options):
        result = simulate(offload_pipeline, discrete, tiny_options)
        assert result.flops_by_component[Component.GPU] == pytest.approx(
            2 * 5e7 * TINY_SCALE
        )
        assert result.total_flops == pytest.approx(
            (2 * 5e7 + 2 * 1e6) * TINY_SCALE
        )

    def test_collect_log_false_drops_log(self, offload_pipeline, discrete):
        options = SimOptions(scale=TINY_SCALE, collect_log=False)
        result = simulate(offload_pipeline, discrete, options)
        assert result.offchip_accesses() == 0
        assert result.roi_s > 0


class TestDeterminism:
    def test_repeated_runs_identical(self, offload_pipeline, discrete, tiny_options):
        r1 = simulate(offload_pipeline, discrete, tiny_options)
        r2 = simulate(offload_pipeline, discrete, tiny_options)
        assert r1.roi_s == r2.roi_s
        assert np.array_equal(r1.log_blocks, r2.log_blocks)

    def test_different_seed_changes_random_traces(self, discrete):
        from repro.pipeline.builder import PipelineBuilder
        from repro.pipeline.patterns import AccessPattern
        from repro.pipeline.stage import BufferAccess
        from repro.units import MB

        b = PipelineBuilder("t")
        b.buffer("a", 8 * MB)
        b.copy_h2d("a")
        b.gpu_kernel(
            "k",
            flops=1e6,
            reads=[BufferAccess("a_dev", AccessPattern.RANDOM, passes=2.0)],
        )
        pipeline = b.build()
        r1 = simulate(pipeline, discrete, SimOptions(scale=TINY_SCALE, seed=1))
        r2 = simulate(pipeline, discrete, SimOptions(scale=TINY_SCALE, seed=2))
        assert not np.array_equal(r1.log_blocks, r2.log_blocks)


class TestHeterogeneousExecution:
    def test_no_copy_component_after_port(
        self, offload_pipeline, heterogeneous, tiny_options
    ):
        limited = remove_copies(offload_pipeline)
        result = simulate(limited, heterogeneous, tiny_options)
        assert result.busy_time(Component.COPY) == 0.0

    def test_page_faults_on_gpu_written_buffers(
        self, offload_pipeline, heterogeneous, tiny_options
    ):
        limited = remove_copies(offload_pipeline)
        result = simulate(limited, heterogeneous, tiny_options)
        # 'result' buffer is first written by the GPU: faults expected.
        faults = sum(r.faults for r in result.stages)
        assert faults > 0

    def test_onchip_transfers_happen_when_chunked(
        self, offload_pipeline, heterogeneous, tiny_options
    ):
        limited = remove_copies(offload_pipeline)
        chunked = parallel_producer_consumer(limited, 16)
        result = simulate(chunked, heterogeneous, tiny_options)
        transfers = sum(r.onchip_transfers for r in result.stages)
        assert transfers > 0


class TestScaling:
    def test_scale_preserves_runtime_ratios(self, offload_pipeline, discrete):
        ratios = []
        for scale in (1 / 64, 1 / 128):
            rc = simulate(offload_pipeline, discrete, SimOptions(scale=scale))
            from repro.config.system import heterogeneous_processor

            rl = simulate(
                remove_copies(offload_pipeline),
                heterogeneous_processor(),
                SimOptions(scale=scale),
            )
            ratios.append(rl.roi_s / rc.roi_s)
        assert ratios[0] == pytest.approx(ratios[1], rel=0.15)
