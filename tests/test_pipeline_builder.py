"""Tests for repro.pipeline.builder."""

import pytest

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import PipelineError
from repro.pipeline.stage import StageKind


class TestBuffers:
    def test_duplicate_buffer_rejected(self):
        b = PipelineBuilder("t")
        b.buffer("x", 4096)
        with pytest.raises(PipelineError, match="duplicate"):
            b.buffer("x", 4096)

    def test_mirror_creates_gpu_copy(self):
        b = PipelineBuilder("t")
        b.buffer("data", 8192)
        name = b.mirror("data")
        pipeline = b.build()
        assert name == "data_dev"
        mirror = pipeline.buffers["data_dev"]
        assert mirror.mirror_of == "data"
        assert mirror.size_bytes == 8192

    def test_mirror_of_unknown_buffer_rejected(self):
        with pytest.raises(PipelineError, match="unknown"):
            PipelineBuilder("t").mirror("ghost")


class TestChaining:
    def test_stages_chain_serially_by_default(self):
        b = PipelineBuilder("t")
        b.buffer("data", 4096)
        b.copy_h2d("data")
        b.gpu_kernel("k", flops=1.0, reads=["data_dev"])
        b.cpu_stage("c", flops=1.0)
        pipeline = b.build()
        kernel = pipeline.stage("k")
        cpu = pipeline.stage("c")
        assert kernel.depends_on == ("h2d_data_1",)
        assert cpu.depends_on == ("k",)

    def test_explicit_after_overrides_chain(self):
        b = PipelineBuilder("t")
        b.buffer("data", 4096)
        first = b.cpu_stage("first", flops=1.0)
        b.cpu_stage("second", flops=1.0)
        b.cpu_stage("third", flops=1.0, after=[first])
        assert b.build().stage("third").depends_on == ("first",)

    def test_after_unknown_stage_rejected(self):
        b = PipelineBuilder("t")
        with pytest.raises(PipelineError, match="unknown dependency"):
            b.cpu_stage("s", flops=1.0, after=["ghost"])

    def test_first_stage_has_no_deps(self):
        b = PipelineBuilder("t")
        b.cpu_stage("s", flops=1.0)
        assert b.build().stage("s").depends_on == ()


class TestCopies:
    def test_copy_h2d_auto_creates_mirror(self):
        b = PipelineBuilder("t")
        b.buffer("data", 4096)
        b.copy_h2d("data")
        pipeline = b.build()
        assert "data_dev" in pipeline.buffers
        copy = pipeline.copy_stages[0]
        assert copy.src == "data" and copy.dst == "data_dev"
        assert copy.mirror_copy

    def test_copy_h2d_reuses_existing_mirror(self):
        b = PipelineBuilder("t")
        b.buffer("data", 4096)
        b.mirror("data")
        b.copy_h2d("data")
        assert len(b.build().buffers) == 2

    def test_copy_d2h(self):
        b = PipelineBuilder("t")
        b.buffer("out", 4096)
        b.mirror("out")
        b.copy_d2h("out_dev", "out", name="d2h")
        copy = b.build().stage("d2h")
        assert copy.kind is StageKind.COPY
        assert copy.src == "out_dev" and copy.dst == "out"

    def test_duplicate_stage_name_rejected(self):
        b = PipelineBuilder("t")
        b.buffer("data", 4096)
        b.cpu_stage("s", flops=1.0)
        with pytest.raises(PipelineError, match="duplicate"):
            b.cpu_stage("s", flops=1.0)


class TestBarrier:
    def test_barrier_depends_on_everything_so_far(self):
        b = PipelineBuilder("t")
        b.cpu_stage("x", flops=1.0)
        b.cpu_stage("y", flops=1.0, after=[])
        b.barrier()
        pipeline = b.build()
        barrier = [s for s in pipeline.stages if s.name.startswith("barrier")][0]
        assert set(barrier.depends_on) == {"x", "y"}

    def test_barrier_on_empty_builder_is_noop(self):
        b = PipelineBuilder("t")
        b.barrier()
        assert len(b.build().stages) == 0


class TestMetadata:
    def test_metadata_preserved(self):
        b = PipelineBuilder("t", metadata={"outputs": ("x",)})
        b.buffer("x", 4096)
        assert b.build().metadata["outputs"] == ("x",)
