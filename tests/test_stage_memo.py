"""Stage-level memoization (:mod:`repro.sim.memo`): bit-exactness first.

The memo's whole license to exist is that replaying a recorded stage
memory step is indistinguishable — down to the serialized v2-full bytes —
from recomputing it.  The property test here drives that from arbitrary
interleavings of runs (and therefore arbitrary hit/miss patterns against
the shared process-wide memo); the env-gated differential
(``REPRO_MEMO_DIFFERENTIAL=1``, the CI ``memo-differential`` job) pins an
8-benchmark memo-on/off matrix.  The rest covers the key's
:data:`~repro.sim.engine.ENGINE_VERSION` invalidation (shared with the
persistent :mod:`repro.sim.resultcache`), cross-implementation entry
sharing, the option plumbing, and the bounded-memory wholesale clear.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments.parallel import COPY, LIMITED, _simulate_version, _system_for
from repro.sim import engine as engine_mod
from repro.sim.engine import SimOptions
from repro.sim.memo import (
    MemoStats,
    StageEntry,
    StageMemo,
    clear_shared_stage_memo,
    shared_stage_memo,
    stage_memo_snapshot,
)
from repro.sim.resultcache import cache_key
from repro.sim.serialize import result_to_full_dict
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE

_DISCRETE = discrete_gpu_system()
_HETEROGENEOUS = heterogeneous_processor()

#: Pattern-diverse pool of the property test: an iterated offload loop
#: (kmeans), a stencil (srad), an RNG-seeded graph (bfs), a histogram
#: (histo).
POOL = ("rodinia/kmeans", "rodinia/srad", "lonestar/bfs", "parboil/histo")

#: The CI memo-differential matrix (mirrors the equivalence sample).
DIFFERENTIAL_BENCHMARKS = (
    "rodinia/kmeans",
    "lonestar/bfs",
    "rodinia/srad",
    "parboil/histo",
    "lonestar/mst",
    "pannotia/pr",
    "parboil/spmv",
    "rodinia/backprop",
)

RUN_MEMO_DIFFERENTIAL = bool(os.environ.get("REPRO_MEMO_DIFFERENTIAL"))


def _options(stage_memo: str, impl: str = "fast") -> SimOptions:
    return SimOptions(
        scale=TINY_SCALE, seed=7, engine_impl=impl, stage_memo=stage_memo
    )


def _run(name: str, version: str, stage_memo: str, impl: str = "fast"):
    system = _system_for(version, _DISCRETE, _HETEROGENEOUS)
    result, _wall = _simulate_version(
        get(name), version, system, _options(stage_memo, impl)
    )
    return result


def _payload_bytes(result) -> bytes:
    return json.dumps(result_to_full_dict(result), sort_keys=True).encode()


@lru_cache(maxsize=None)
def _memo_off_bytes(name: str, version: str) -> bytes:
    """The ground truth: this (name, version) simulated without the memo."""
    return _payload_bytes(_run(name, version, "off"))


# -- bit-exactness ----------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(POOL), st.sampled_from((COPY, LIMITED))),
        min_size=1,
        max_size=6,
    )
)
def test_any_interleaving_matches_memo_off(sequence):
    """Every run of any interleaving serializes to the memo-off bytes.

    The shared memo is deliberately *not* cleared between examples: each
    run executes against whatever entries previous examples left behind,
    so the hit/miss pattern varies arbitrarily — which is exactly the
    claim under test, that memo state can never leak into results.
    """
    for name, version in sequence:
        got = _payload_bytes(_run(name, version, "on"))
        assert got == _memo_off_bytes(name, version), (name, version)


@pytest.mark.skipif(
    not RUN_MEMO_DIFFERENTIAL,
    reason="8-benchmark memo differential runs with REPRO_MEMO_DIFFERENTIAL=1",
)
@pytest.mark.parametrize(
    "name, version",
    [
        pytest.param(name, version, id=f"{name}-{version}")
        for name in DIFFERENTIAL_BENCHMARKS
        for version in (COPY, LIMITED)
    ],
)
def test_memo_differential(name, version):
    """Memo-on equals memo-off byte-for-byte, cold and warm."""
    expected = _memo_off_bytes(name, version)
    clear_shared_stage_memo()
    assert _payload_bytes(_run(name, version, "on")) == expected  # recording
    assert _payload_bytes(_run(name, version, "on")) == expected  # replaying


# -- ENGINE_VERSION invalidation (shared with the persistent cache) ---------


def test_engine_version_bump_invalidates_memo_and_resultcache(monkeypatch):
    """Bumping ENGINE_VERSION rotates both the stage-memo keys and the
    persistent result-cache keys — one tag invalidates every recorded
    artifact at once."""
    clear_shared_stage_memo()
    memo = shared_stage_memo()
    start = memo.stats.snapshot()
    _run("rodinia/kmeans", COPY, "on")
    before = memo.stats.snapshot()
    # An iterated pipeline self-hits even on a cold run (its stages reach
    # a cache-state fixed point); what makes it *cold* is the misses.
    cold_profile = (before[0] - start[0], before[1] - start[1])
    assert cold_profile[1] > 0
    _run("rodinia/kmeans", COPY, "on")
    after = memo.stats.snapshot()
    assert after[0] > before[0], "warm identical run must hit"
    assert after[1] == before[1], "warm identical run must not miss"

    spec = get("rodinia/kmeans")
    key_now = cache_key(spec, COPY, _DISCRETE, _options("on"))
    monkeypatch.setattr(engine_mod, "ENGINE_VERSION", "repro-sim/test-bump")
    mid = memo.stats.snapshot()
    result = _run("rodinia/kmeans", COPY, "on")
    bumped = memo.stats.snapshot()
    # Every pre-bump entry is unreachable: the run re-records from scratch,
    # reproducing the cold run's exact hit/miss profile.
    assert (bumped[0] - mid[0], bumped[1] - mid[1]) == cold_profile
    assert _payload_bytes(result) == _memo_off_bytes("rodinia/kmeans", COPY)
    key_bumped = cache_key(
        spec, COPY, _DISCRETE, _options("on"), engine_version="repro-sim/test-bump"
    )
    assert key_bumped != key_now


# -- option plumbing and key sharing ----------------------------------------


def test_cache_key_ignores_stage_memo():
    """Memo-on and memo-off runs share persistent cache entries, like the
    two engine implementations do."""
    spec = get("rodinia/kmeans")
    base = cache_key(spec, COPY, _DISCRETE, _options("on"))
    for mode in ("off", "auto"):
        assert cache_key(spec, COPY, _DISCRETE, _options(mode)) == base


def test_invalid_stage_memo_rejected():
    with pytest.raises(ValueError, match="stage_memo"):
        _run("rodinia/kmeans", COPY, "sometimes")


def test_auto_enables_memo_only_on_fast():
    clear_shared_stage_memo()
    before = stage_memo_snapshot()
    _run("rodinia/kmeans", COPY, "auto", impl="reference")
    assert stage_memo_snapshot() == before, "auto+reference must not memoize"
    _run("rodinia/kmeans", COPY, "auto", impl="fast")
    assert stage_memo_snapshot() != before, "auto+fast must memoize"


def test_off_disables_memo_on_fast():
    clear_shared_stage_memo()
    before = stage_memo_snapshot()
    _run("rodinia/kmeans", COPY, "off", impl="fast")
    assert stage_memo_snapshot() == before


def test_reference_run_replays_fast_recorded_entries():
    """Entries are impl-independent: a reference run warm-hits a memo
    populated entirely by the fast engine, and stays bit-exact."""
    clear_shared_stage_memo()
    _run("rodinia/srad", COPY, "on", impl="fast")
    memo = shared_stage_memo()
    mid = memo.stats.snapshot()
    result = _run("rodinia/srad", COPY, "on", impl="reference")
    final = memo.stats.snapshot()
    assert final[0] > mid[0], "reference must hit fast-recorded entries"
    assert final[1] == mid[1]
    assert _payload_bytes(result) == _memo_off_bytes("rodinia/srad", COPY)


# -- counters and bounds ----------------------------------------------------


def test_memo_stats_hit_rate():
    stats = MemoStats()
    assert stats.lookups == 0 and stats.hit_rate == 0.0
    stats.hits, stats.misses = 3, 1
    assert stats.lookups == 4
    assert stats.hit_rate == pytest.approx(0.75)
    assert stats.snapshot() == (3, 1)


def _tiny_entry() -> StageEntry:
    return StageEntry(
        log_parts=(), mem=None, fault=None, cache_states=(), stats_deltas=()
    )


def test_entry_bound_triggers_wholesale_clear():
    memo = StageMemo(max_entries=2, max_bytes=1 << 30)
    memo.store(("k1",), _tiny_entry())
    memo.store(("k2",), _tiny_entry())
    assert len(memo) == 2 and memo.stats.clears == 0
    memo.store(("k3",), _tiny_entry())
    assert len(memo) == 1, "hitting the entry bound clears wholesale"
    assert memo.stats.clears == 1


def test_byte_bound_triggers_wholesale_clear():
    big = StageEntry(
        log_parts=(
            (np.zeros(256, dtype=np.int64), np.zeros(256, dtype=bool), 0),
        ),
        mem=None,
        fault=None,
        cache_states=(),
        stats_deltas=(),
    )
    probe = StageMemo()
    probe.store(("probe",), big)
    nbytes = probe.retained_bytes
    assert nbytes > 0
    memo = StageMemo(max_entries=100, max_bytes=nbytes + nbytes // 2)
    memo.store(("a",), big)
    memo.store(("b",), big)  # would exceed the byte bound
    assert len(memo) == 1 and memo.stats.clears == 1
    assert memo.retained_bytes == nbytes


def test_clear_preserves_cumulative_counters():
    memo = StageMemo()
    memo.store(("k",), _tiny_entry())
    assert memo.lookup(("k",)) is not None
    assert memo.lookup(("absent",)) is None
    snapshot = memo.stats.snapshot()
    assert snapshot == (1, 1)
    memo.clear()
    assert len(memo) == 0 and memo.retained_bytes == 0
    assert memo.stats.snapshot() == snapshot
