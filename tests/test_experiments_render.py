"""Rendering-path tests: every experiment's render() produces sane text."""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, table2
from repro.experiments.runner import SweepRunner
from repro.sim.engine import SimOptions
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE

SUBSET_NAMES = ("rodinia/kmeans", "lonestar/bfs")


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(options=SimOptions(scale=TINY_SCALE))


@pytest.fixture(scope="module")
def subset():
    return [get(name) for name in SUBSET_NAMES]


FIG_MODULES = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}


@pytest.mark.parametrize("name", sorted(FIG_MODULES))
def test_every_figure_renders(name, runner, subset):
    module = FIG_MODULES[name]
    text = module.render(runner, subset)
    # Header + one row per benchmark (at least).
    assert f"Fig. {name[-1]}" in text
    for benchmark in SUBSET_NAMES:
        assert benchmark in text
    # Paper comparison annotations are part of every figure's output.
    assert "paper" in text.lower()


@pytest.mark.parametrize("name", sorted(FIG_MODULES))
def test_figure_tables_are_aligned(name, runner, subset):
    module = FIG_MODULES[name]
    lines = module.render(runner, subset).splitlines()
    separators = [l for l in lines if set(l.strip()) <= {"-", " "} and l.strip()]
    assert separators, "expected a header separator row"
    header_index = lines.index(separators[0]) - 1
    header = lines[header_index]
    # All table rows are exactly as wide as (or narrower than) the ruler.
    ruler = separators[0]
    for line in lines[header_index + 1:]:
        if not line.strip():
            break
        assert len(line.rstrip()) <= max(len(ruler), len(header)) + 2


def test_table2_render_is_stable():
    first = table2.render()
    second = table2.render()
    assert first == second


def test_figures_use_shared_runner_cache(runner, subset):
    # Rendering two figures should reuse the same simulation results.
    before = dict(runner._memo)
    fig4.render(runner, subset)
    after_one = dict(runner._memo)
    fig5.render(runner, subset)
    after_two = dict(runner._memo)
    assert set(after_one) == set(after_two)  # no new simulations for fig5
    assert set(before) <= set(after_one)
