"""Tests for repro.units."""

import pytest

from repro import units


class TestConstants:
    def test_capacity_constants(self):
        assert units.KB == 1024
        assert units.MB == 1024 * 1024
        assert units.GB == 1024 ** 3

    def test_rate_constants(self):
        assert units.GHZ == 1e9
        assert units.MHZ == 1e6
        assert units.GFLOPS == 1e9

    def test_time_constants_ordering(self):
        assert (
            units.NANOSECONDS
            < units.MICROSECONDS
            < units.MILLISECONDS
            < units.SECONDS
        )


class TestBytesToHuman:
    def test_bytes(self):
        assert units.bytes_to_human(512) == "512B"

    def test_kilobytes(self):
        assert units.bytes_to_human(1536) == "1.5KB"

    def test_megabytes(self):
        assert units.bytes_to_human(24 * units.MB) == "24.0MB"

    def test_gigabytes(self):
        assert units.bytes_to_human(3 * units.GB) == "3.0GB"

    def test_zero(self):
        assert units.bytes_to_human(0) == "0B"


class TestSecondsToHuman:
    def test_seconds(self):
        assert units.seconds_to_human(1.5) == "1.500s"

    def test_milliseconds(self):
        assert units.seconds_to_human(0.0031) == "3.100ms"

    def test_microseconds(self):
        assert units.seconds_to_human(42e-6) == "42.000us"

    def test_nanoseconds(self):
        assert units.seconds_to_human(120e-9) == "120.0ns"

    def test_negative(self):
        assert units.seconds_to_human(-0.002) == "-2.000ms"


class TestBandwidthToHuman:
    def test_pcie(self):
        assert units.bandwidth_to_human(8e9) == "8.0GB/s"

    def test_gddr5(self):
        assert units.bandwidth_to_human(179e9) == "179.0GB/s"
