"""Tests for sweep comparison / stability analysis."""

import pytest

from repro.experiments.compare import (
    BenchmarkDelta,
    ComparisonReport,
    scale_stability,
    seed_stability,
)
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE

SUBSET = [get(n) for n in ("rodinia/kmeans", "lonestar/bfs", "parboil/sgemm")]


class TestSeedStability:
    @pytest.fixture(scope="class")
    def report(self):
        return seed_stability(seeds=(0, 1), scale=TINY_SCALE, specs=SUBSET)

    def test_results_stable_across_seeds(self, report):
        # Random access patterns change with the seed, but the figures'
        # headline quantities should barely move.
        assert report.max_runtime_drift < 0.10, report.render()
        assert report.max_contention_drift < 0.10

    def test_all_benchmarks_reported(self, report):
        assert {d.benchmark for d in report.deltas} == {
            s.full_name for s in SUBSET
        }

    def test_render(self, report):
        text = report.render()
        assert "seed 0" in text and "seed 1" in text
        assert "drift" in text

    def test_rejects_wrong_seed_count(self):
        with pytest.raises(ValueError):
            seed_stability(seeds=(0, 1, 2), specs=SUBSET)


class TestScaleStability:
    def test_ratios_scale_invariant(self):
        report = scale_stability(
            scales=(1 / 64, 1 / 128), specs=SUBSET
        )
        assert report.max_runtime_drift < 0.15, report.render()

    def test_rejects_wrong_scale_count(self):
        with pytest.raises(ValueError):
            scale_stability(scales=(1 / 32,), specs=SUBSET)


class TestDeltaArithmetic:
    def test_drift_computation(self):
        delta = BenchmarkDelta(
            benchmark="x",
            runtime_ratio_a=0.8,
            runtime_ratio_b=0.88,
            contention_a=0.5,
            contention_b=0.45,
        )
        assert delta.runtime_ratio_drift == pytest.approx(0.1)
        assert delta.contention_drift == pytest.approx(0.05)

    def test_empty_report(self):
        report = ComparisonReport("A", "B", [])
        assert report.max_runtime_drift == 0.0
        assert report.mean_runtime_drift == 0.0
