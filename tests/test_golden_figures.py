"""Golden-figure regression tests.

Renders fig4-fig9 and Table II at ``DEFAULT_BENCH_SCALE`` over a fixed,
suite-spanning benchmark subset and compares the key numeric columns of
each figure against checked-in JSON fixtures under ``tests/golden/``.
Simulations are deterministic, so any drift means the models (or the
engine) changed behaviour; if the change is intentional, refresh the
fixtures with::

    python -m pytest tests/test_golden_figures.py --update-goldens

and commit the updated ``tests/golden/*.json`` alongside the change (and
bump ``repro.sim.engine.ENGINE_VERSION`` so persistent sweep caches are
invalidated too).
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, table2
from repro.experiments.runner import DEFAULT_BENCH_SCALE, SweepRunner
from repro.sim.engine import SimOptions
from repro.workloads.registry import get

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Two benchmarks per suite: a bandwidth/irregular representative and a
#: regular one, covering page-fault-heavy (srad), misaligned, and dense
#: cases so every figure's special-casing is exercised.
GOLDEN_BENCHMARKS = (
    "lonestar/bfs",
    "lonestar/sssp",
    "pannotia/color_max",
    "pannotia/mis",
    "parboil/cutcp",
    "parboil/spmv",
    "rodinia/kmeans",
    "rodinia/srad",
)

#: Relative tolerance for float comparisons.  Runs are deterministic, so
#: this only guards against cross-platform libm/ordering noise.
REL_TOL = 1e-9


@pytest.fixture(scope="module")
def golden_specs():
    return [get(name) for name in GOLDEN_BENCHMARKS]


@pytest.fixture(scope="module")
def golden_runner(golden_specs):
    """One shared sweep of the golden subset at the figure scale."""
    runner = SweepRunner(options=SimOptions(scale=DEFAULT_BENCH_SCALE))
    runner.sweep(golden_specs)
    return runner


@pytest.fixture(scope="module")
def update_goldens(request):
    return request.config.getoption("--update-goldens")


def _assert_close(golden, actual, path=""):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: type changed"
        assert sorted(golden) == sorted(actual), f"{path}: keys changed"
        for key in golden:
            _assert_close(golden[key], actual[key], f"{path}/{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list) and len(golden) == len(actual), (
            f"{path}: length changed"
        )
        for index, (g, a) in enumerate(zip(golden, actual)):
            _assert_close(g, a, f"{path}[{index}]")
    elif isinstance(golden, float) or isinstance(actual, float):
        assert math.isclose(
            float(golden), float(actual), rel_tol=REL_TOL, abs_tol=1e-15
        ), f"{path}: {golden} != {actual}"
    else:
        assert golden == actual, f"{path}: {golden} != {actual}"


def _check_golden(name: str, payload, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    assert path.is_file(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest tests/test_golden_figures.py --update-goldens"
    )
    _assert_close(json.loads(path.read_text()), payload, name)


def test_table2_golden(update_goldens):
    payload = {row.suite: list(row.as_tuple()) for row in table2.run()}
    _check_golden("table2", payload, update_goldens)
    assert table2.matches_paper(table2.run())


def test_fig4_golden(golden_runner, golden_specs, update_goldens):
    payload = {
        row.benchmark: {
            "copy_total_bytes": row.copy_total_bytes,
            "limited_total_bytes": row.limited_total_bytes,
            "footprint_ratio": row.footprint_ratio,
            "gpu_share_of_limited": row.gpu_share_of_limited(),
        }
        for row in fig4.run(golden_runner, golden_specs)
    }
    _check_golden("fig4", payload, update_goldens)


def test_fig5_golden(golden_runner, golden_specs, update_goldens):
    payload = {
        row.benchmark: {
            "copy_accesses": {
                component.value: count
                for component, count in row.copy_accesses.items()
            },
            "limited_accesses": {
                component.value: count
                for component, count in row.limited_accesses.items()
            },
            "copy_total": row.copy_total,
            "limited_total": row.limited_total,
        }
        for row in fig5.run(golden_runner, golden_specs)
    }
    _check_golden("fig5", payload, update_goldens)


def test_fig6_golden(golden_runner, golden_specs, update_goldens):
    payload = {
        row.benchmark: {
            "copy_runtime_s": row.copy.runtime_s,
            "limited_runtime_s": row.limited.runtime_s,
            "runtime_ratio": row.runtime_ratio,
            "copy_serial_fraction": row.copy.serial_fraction,
            "limited_serial_fraction": row.limited.serial_fraction,
        }
        for row in fig6.run(golden_runner, golden_specs)
    }
    _check_golden("fig6", payload, update_goldens)


def test_fig7_golden(golden_runner, golden_specs, update_goldens):
    payload = {
        row.benchmark: {
            "copy_runtime_s": row.copy_runtime_s,
            "limited_runtime_s": row.limited_runtime_s,
            "copy_normalized": row.copy_normalized,
            "limited_normalized": row.limited_normalized,
        }
        for row in fig7.run(golden_runner, golden_specs)
    }
    _check_golden("fig7", payload, update_goldens)


def test_fig8_golden(golden_runner, golden_specs, update_goldens):
    payload = {
        row.benchmark: {
            "copy_runtime_s": row.copy_runtime_s,
            "limited_runtime_s": row.limited_runtime_s,
            "copy_normalized": row.copy_normalized,
            "limited_normalized": row.limited_normalized,
        }
        for row in fig8.run(golden_runner, golden_specs)
    }
    _check_golden("fig8", payload, update_goldens)


def test_fig9_golden(golden_runner, golden_specs, update_goldens):
    payload = {
        row.benchmark: {
            "copy_total": row.copy.total,
            "limited_total": row.limited.total,
            "limited_total_ratio": row.limited_total_ratio,
            "limited_spill_fraction": row.limited.spill_fraction,
            "limited_contention_fraction": row.limited.contention_fraction,
        }
        for row in fig9.run(golden_runner, golden_specs)
    }
    _check_golden("fig9", payload, update_goldens)


def test_figures_render_from_shared_sweep(golden_runner, golden_specs):
    """Rendering all six figures reuses the memoized sweep: 0 new runs."""
    for module in (fig4, fig5, fig6, fig7, fig8, fig9):
        text = module.render(golden_runner, golden_specs)
        assert text.strip()
    metrics = golden_runner.last_metrics
    assert metrics is not None
    assert metrics.launched == 0 and metrics.cache_hits == 0
    assert metrics.memo_hits == 2 * len(golden_specs)
