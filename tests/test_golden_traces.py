"""Golden-trace regression tests.

Exports the full Chrome ``trace_event`` payload of three representative
benchmarks — a dense regular producer-consumer run (kmeans), an irregular
producer-consumer run (spmv), and a software-worklist run (bfs) — at
``TINY_SCALE`` and compares them against checked-in fixtures under
``tests/golden/traces/``.  The engine is deterministic, so any drift in
event count, ordering, lane assignment, timestamps, or counter values
means the tracing hooks (or the engine itself) changed behaviour.  If the
change is intentional, refresh with::

    python -m pytest tests/test_golden_traces.py --update-goldens

and commit the updated fixtures (bumping
``repro.sim.engine.ENGINE_VERSION`` if simulation semantics moved too).
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.config.system import discrete_gpu_system
from repro.sim.engine import SimOptions, simulate
from repro.sim.observe import (
    InvariantMonitor,
    TraceRecorder,
    chrome_trace_dict,
    validate_chrome_trace,
)
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE

TRACE_GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden" / "traces"

#: Representative coverage of the Table II workload constructs: one dense
#: regular producer-consumer benchmark, one irregular producer-consumer
#: benchmark, and one software-worklist benchmark.
TRACE_BENCHMARKS = (
    "rodinia/kmeans",
    "parboil/spmv",
    "lonestar/bfs",
)

#: Timestamps are microseconds derived from double-precision seconds; the
#: runs are deterministic so this only absorbs libm noise.
REL_TOL = 1e-9


@pytest.fixture(scope="module")
def update_goldens(request):
    return request.config.getoption("--update-goldens")


def _slug(name: str) -> str:
    return name.replace("/", "_")


def _export(name: str) -> dict:
    spec = get(name)
    recorder = TraceRecorder()
    monitor = InvariantMonitor(mode="raise")
    simulate(
        spec.pipeline(),
        discrete_gpu_system(),
        SimOptions(scale=TINY_SCALE),
        sinks=[recorder, monitor],
    )
    return chrome_trace_dict(
        recorder.events, name=name, other_data={"system": "discrete"}
    )


def _assert_close(golden, actual, path=""):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: type changed"
        assert sorted(golden) == sorted(actual), f"{path}: keys changed"
        for key in golden:
            _assert_close(golden[key], actual[key], f"{path}/{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list) and len(golden) == len(actual), (
            f"{path}: event count changed"
        )
        for index, (g, a) in enumerate(zip(golden, actual)):
            _assert_close(g, a, f"{path}[{index}]")
    elif isinstance(golden, float) or isinstance(actual, float):
        assert math.isclose(
            float(golden), float(actual), rel_tol=REL_TOL, abs_tol=1e-15
        ), f"{path}: {golden} != {actual}"
    else:
        assert golden == actual, f"{path}: {golden} != {actual}"


def _check_golden(name: str, payload: dict, update: bool) -> None:
    path = TRACE_GOLDEN_DIR / f"{_slug(name)}.json"
    if update:
        TRACE_GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return
    assert path.is_file(), (
        f"missing golden trace {path}; generate it with "
        f"pytest tests/test_golden_traces.py --update-goldens"
    )
    _assert_close(json.loads(path.read_text()), payload, name)


@pytest.mark.parametrize("bench_name", TRACE_BENCHMARKS)
def test_trace_matches_golden(bench_name, update_goldens):
    payload = _export(bench_name)
    assert validate_chrome_trace(payload) == []
    _check_golden(bench_name, payload, update_goldens)


@pytest.mark.parametrize("bench_name", TRACE_BENCHMARKS)
def test_checked_in_golden_is_schema_clean(bench_name, update_goldens):
    """The fixtures themselves must stay Perfetto-loadable."""
    if update_goldens:
        pytest.skip("goldens being rewritten")
    path = TRACE_GOLDEN_DIR / f"{_slug(bench_name)}.json"
    assert path.is_file(), f"missing golden trace {path}"
    payload = json.loads(path.read_text())
    assert validate_chrome_trace(payload) == []
    assert payload["otherData"]["name"] == bench_name


def test_trace_benchmarks_cover_the_constructs():
    """kmeans: dense regular PC; spmv: irregular PC; bfs: sw-worklist."""
    kmeans, spmv, bfs = (get(name) for name in TRACE_BENCHMARKS)
    assert kmeans.regular_pc and not kmeans.irregular and not kmeans.sw_queue
    assert spmv.pc_comm and spmv.irregular and not spmv.sw_queue
    assert bfs.sw_queue
