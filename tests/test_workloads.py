"""Tests for the benchmark registry and suite definitions."""

import pytest

from repro.experiments.table2 import PAPER_TABLE2, matches_paper, run as table2_run
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import StageKind
from repro.pipeline.transforms import remove_copies
from repro.workloads.registry import (
    SUITES,
    all_specs,
    get,
    simulatable_specs,
    suite_specs,
)
from repro.workloads.spec import BenchmarkSpec


class TestRegistry:
    def test_fifty_eight_benchmarks(self):
        assert len(all_specs()) == 58

    def test_forty_six_simulatable(self):
        assert len(simulatable_specs()) == 46

    def test_suite_sizes(self):
        assert len(suite_specs("lonestar")) == 14
        assert len(suite_specs("pannotia")) == 10
        assert len(suite_specs("parboil")) == 12
        assert len(suite_specs("rodinia")) == 22

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            suite_specs("spec2006")

    def test_get_by_full_name(self):
        assert get("rodinia/kmeans").name == "kmeans"

    def test_get_by_unambiguous_short_name(self):
        assert get("kmeans").suite == "rodinia"

    def test_get_ambiguous_short_name_rejected(self):
        with pytest.raises(KeyError, match="ambiguous"):
            get("bfs")  # exists in lonestar, parboil, rodinia

    def test_get_unknown_rejected(self):
        with pytest.raises(KeyError, match="no benchmark"):
            get("rodinia/quake")

    def test_unique_full_names(self):
        names = [s.full_name for s in all_specs()]
        assert len(names) == len(set(names))


class TestTableTwoFlags:
    def test_counts_match_paper_exactly(self):
        rows = table2_run()
        assert matches_paper(rows), [
            (r.suite, r.as_tuple(), PAPER_TABLE2[r.suite]) for r in rows
        ]

    def test_flag_implications(self):
        for spec in all_specs():
            if spec.pipe_parallel:
                assert spec.pc_comm, spec.full_name
            if spec.sw_queue:
                assert spec.pc_comm, spec.full_name

    def test_unsimulated_benchmarks_raise_on_pipeline(self):
        spec = get("rodinia/nn")
        assert not spec.simulatable
        with pytest.raises(ValueError, match="no pipeline model"):
            spec.pipeline()


class TestSpecValidation:
    def test_pipe_parallel_requires_pc_comm(self):
        with pytest.raises(ValueError, match="pipe_parallel"):
            BenchmarkSpec(
                name="x", suite="s", description="d",
                pc_comm=False, pipe_parallel=True, regular_pc=False,
                irregular=False, sw_queue=False,
            )

    def test_sw_queue_requires_pc_comm(self):
        with pytest.raises(ValueError, match="sw_queue"):
            BenchmarkSpec(
                name="x", suite="s", description="d",
                pc_comm=False, pipe_parallel=False, regular_pc=False,
                irregular=False, sw_queue=True,
            )

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="", suite="s", description="d",
                pc_comm=True, pipe_parallel=True, regular_pc=True,
                irregular=False, sw_queue=False,
            )


class TestAllPipelinesBuild:
    @pytest.mark.parametrize(
        "name", [s.full_name for s in simulatable_specs()]
    )
    def test_pipeline_builds_and_validates(self, name):
        spec = get(name)
        pipeline = spec.pipeline()
        assert isinstance(pipeline, Pipeline)
        assert not pipeline.limited_copy
        assert pipeline.total_flops > 0
        assert len(pipeline.copy_stages) > 0  # copy versions use copies

    @pytest.mark.parametrize(
        "name", [s.full_name for s in simulatable_specs()]
    )
    def test_limited_copy_port_builds(self, name):
        pipeline = get(name).pipeline()
        limited = remove_copies(pipeline)
        assert limited.limited_copy
        assert limited.footprint_bytes <= pipeline.footprint_bytes

    def test_gpu_does_majority_of_flops(self):
        # The paper: the GPU completes the majority of work.
        for spec in simulatable_specs():
            by_kind = spec.pipeline().flops_by_kind()
            assert by_kind[StageKind.GPU_KERNEL] > by_kind[StageKind.CPU], (
                spec.full_name
            )

    def test_footprints_in_paper_range(self):
        # Copy versions: at least 6MB, usually larger (Section III-D).
        from repro.units import MB

        for spec in simulatable_specs():
            footprint = spec.pipeline().footprint_bytes
            assert footprint >= 6 * MB, spec.full_name

    def test_bh_keeps_its_copies(self):
        # Lonestar bh is the one benchmark whose copies cannot be removed.
        pipeline = get("lonestar/bh").pipeline()
        limited = remove_copies(pipeline)
        assert len(limited.copy_stages) == len(pipeline.copy_stages)

    def test_most_benchmarks_lose_copies(self):
        reduced = 0
        for spec in simulatable_specs():
            pipeline = spec.pipeline()
            limited = remove_copies(pipeline)
            if len(limited.copy_stages) < len(pipeline.copy_stages):
                reduced += 1
        assert reduced == 45  # all but lonestar/bh

    def test_pagefault_heavy_marked_in_metadata(self):
        for name in ("rodinia/srad", "rodinia/heartwall", "pannotia/pr_spmv"):
            spec = get(name)
            assert spec.pagefault_heavy
            assert spec.pipeline().metadata.get("pagefault_heavy")
