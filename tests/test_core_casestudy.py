"""Tests for repro.core.casestudy (the Fig. 3 organization sequence)."""

import pytest

from repro.core.casestudy import (
    ASYNC_COPY,
    BASELINE,
    NO_COPY,
    ORGANIZATIONS,
    PARALLEL,
    PARALLEL_CACHE,
    as_table,
    case_study,
)
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions

from tests.conftest import TINY_SCALE, build_offload_pipeline


@pytest.fixture(scope="module")
def study_results():
    pipeline = build_offload_pipeline(iterations=3)
    return case_study(
        pipeline, options=SimOptions(scale=TINY_SCALE), streams=3, chunks=8
    )


class TestCaseStudy:
    def test_five_organizations_in_order(self, study_results):
        assert [r.label for r in study_results] == list(ORGANIZATIONS)

    def test_only_parallel_is_estimated(self, study_results):
        estimated = {r.label for r in study_results if r.estimated}
        assert estimated == {PARALLEL}

    def test_baseline_is_slowest(self, study_results):
        baseline = study_results[0]
        for other in study_results[1:]:
            assert other.runtime_s <= baseline.runtime_s * 1.05

    def test_each_optimization_helps_or_holds(self, study_results):
        by_label = {r.label: r for r in study_results}
        assert by_label[ASYNC_COPY].runtime_s < by_label[BASELINE].runtime_s
        assert by_label[NO_COPY].runtime_s < by_label[BASELINE].runtime_s
        assert by_label[PARALLEL].runtime_s <= by_label[NO_COPY].runtime_s
        assert (
            by_label[PARALLEL_CACHE].runtime_s
            < by_label[NO_COPY].runtime_s
        )

    def test_gpu_utilization_rises_along_the_sequence(self, study_results):
        by_label = {r.label: r for r in study_results}
        assert (
            by_label[PARALLEL_CACHE].gpu_utilization
            > by_label[NO_COPY].gpu_utilization
            > by_label[BASELINE].gpu_utilization
        )

    def test_no_copy_has_zero_copy_time(self, study_results):
        by_label = {r.label: r for r in study_results}
        assert by_label[NO_COPY].copy_busy_s == 0.0

    def test_simulated_results_carry_sim_result(self, study_results):
        for r in study_results:
            if r.estimated:
                assert r.result is None
            else:
                assert r.result is not None

    def test_rejects_limited_copy_input(self):
        limited = remove_copies(build_offload_pipeline())
        with pytest.raises(ValueError, match="copy"):
            case_study(limited, options=SimOptions(scale=TINY_SCALE))

    def test_as_table(self, study_results):
        table = as_table(study_results)
        assert set(table) == set(ORGANIZATIONS)
        assert table[BASELINE]["normalized_runtime"] == pytest.approx(1.0)
        for row in table.values():
            assert 0.0 < row["normalized_runtime"] <= 1.05
