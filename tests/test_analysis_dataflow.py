"""Unit tests for the region-based abstract interpreter and autofix engine
(``repro.analysis.dataflow``) plus the lint-report memo."""

import pytest

from repro.analysis import (
    lint_pipeline,
    lint_pipeline_memoized,
    pipeline_content_hash,
)
from repro.analysis.dataflow.absint import (
    MANY_WRITERS,
    DataflowAnalysis,
    SerializationEdge,
)
from repro.analysis.dataflow.fixes import apply_fixes, plan_fixes
from repro.analysis.dataflow.lattice import (
    EMPTY_SET,
    FULL_SET,
    WIDEN_LIMIT,
    IntervalSet,
)
from repro.analysis.memo import LintMemo
from repro.pipeline.buffers import MemorySpace
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess, Region
from repro.units import MB


class TestIntervalSet:
    def test_from_pairs_canonicalizes(self):
        s = IntervalSet.from_pairs([(0.5, 0.7), (0.0, 0.3), (0.25, 0.5)])
        assert s.intervals == ((0.0, 0.7),)

    def test_degenerate_pairs_dropped(self):
        assert IntervalSet.from_pairs([(0.3, 0.3)]).is_empty

    def test_measure(self):
        s = IntervalSet.from_pairs([(0.0, 0.25), (0.5, 0.75)])
        assert s.measure() == pytest.approx(0.5)

    def test_union_intersect_subtract(self):
        a = IntervalSet.from_pairs([(0.0, 0.5)])
        b = IntervalSet.from_pairs([(0.25, 0.75)])
        assert a.union(b).intervals == ((0.0, 0.75),)
        assert a.intersect(b).intervals == ((0.25, 0.5),)
        assert a.subtract(b).intervals == ((0.0, 0.25),)
        assert a.subtract(a).is_empty

    def test_covers_and_overlaps(self):
        assert FULL_SET.covers(IntervalSet.from_pairs([(0.2, 0.4)]))
        assert not IntervalSet.from_pairs([(0.0, 0.3)]).covers(FULL_SET)
        assert IntervalSet.from_pairs([(0.0, 0.3)]).overlaps(
            IntervalSet.from_pairs([(0.2, 0.4)])
        )
        assert not IntervalSet.from_pairs([(0.0, 0.2)]).overlaps(
            IntervalSet.from_pairs([(0.2, 0.4)])
        )
        assert EMPTY_SET.covers(EMPTY_SET)

    def test_hull(self):
        s = IntervalSet.from_pairs([(0.0, 0.1), (0.8, 0.9)])
        assert s.hull().intervals == ((0.0, 0.9),)

    def test_widen_only_past_limit(self):
        pieces = [
            (i / 64, i / 64 + 1 / 128) for i in range(WIDEN_LIMIT + 4)
        ]
        wide = IntervalSet.from_pairs(pieces)
        assert len(wide.intervals) == WIDEN_LIMIT + 4
        assert wide.widen().intervals == wide.hull().intervals
        narrow = IntervalSet.from_pairs(pieces[:3])
        assert narrow.widen() == narrow

    def test_from_region(self):
        s = IntervalSet.from_region(Region(0.25, 0.5))
        assert s.intervals == ((0.25, 0.5),)
        assert s.measure() == pytest.approx(0.25)


def _overwrite_pipeline():
    """h2d fills x_dev, a kernel overwrites its lower half, d2h drains."""
    b = PipelineBuilder("test/overwrite", metadata={"outputs": ("x",)})
    b.buffer("x", 1 * MB)
    b.copy_h2d("x", name="h2d_x")
    b.gpu_kernel(
        "halve",
        flops=1e6,
        writes=[BufferAccess("x_dev", region=Region(0.0, 0.5))],
    )
    b.copy_d2h("x_dev", "x", name="d2h_x")
    return b.build()


class TestReachingDefinitions:
    def test_partial_overwrite_splits_defs(self):
        analysis = DataflowAnalysis(_overwrite_pipeline())
        defs = {d.writer: d.region for d in analysis.defs_at("d2h_x", "x_dev")}
        assert defs["halve"].intervals == ((0.0, 0.5),)
        assert defs["h2d_x"].intervals == ((0.5, 1.0),)

    def test_sole_writer(self):
        analysis = DataflowAnalysis(_overwrite_pipeline())
        upper = IntervalSet.from_pairs([(0.5, 1.0)])
        assert analysis.sole_writer("d2h_x", "x_dev", upper) == "h2d_x"
        # The full region has two writers: no sole writer.
        assert analysis.sole_writer("d2h_x", "x_dev", FULL_SET) is None

    def test_full_overwrite_kills_def(self):
        b = PipelineBuilder("test/kill")
        b.buffer("x", 1 * MB)
        b.copy_h2d("x", name="h2d_x")
        b.gpu_kernel("clobber", flops=1e6, writes=[BufferAccess("x_dev")])
        b.gpu_kernel("read", flops=1e6, reads=["x_dev"])
        analysis = DataflowAnalysis(b.build())
        writers = {d.writer for d in analysis.defs_at("read", "x_dev")}
        assert writers == {"clobber"}

    def test_writer_set_widening_collapses_to_sentinel(self):
        b = PipelineBuilder("test/widen")
        b.buffer("x", 1 * MB)
        names = []
        for i in range(WIDEN_LIMIT + 2):
            lo, hi = i / 32, (i + 1) / 32
            names.append(
                b.cpu_stage(
                    f"w{i}",
                    flops=1.0,
                    writes=[BufferAccess("x", region=Region(lo, hi))],
                    after=[],
                )
            )
        b.cpu_stage("read", flops=1.0, reads=["x"], after=names)
        analysis = DataflowAnalysis(b.build())
        writers = {d.writer for d in analysis.defs_at("read", "x")}
        assert writers == {MANY_WRITERS}
        assert analysis.sole_writer("read", "x", EMPTY_SET) is None


class TestObservableLiveness:
    def test_clobbered_copy_has_no_observers(self):
        b = PipelineBuilder("test/dead", metadata={"outputs": ("x",)})
        b.buffer("x", 1 * MB)
        b.copy_h2d("x", name="h2d_x")
        b.gpu_kernel("init", flops=1e6, writes=[BufferAccess("x_dev")])
        b.copy_d2h("x_dev", "x", name="d2h_x")
        pipeline = b.build()
        analysis = DataflowAnalysis(pipeline)
        h2d = pipeline.stage("h2d_x")
        assert analysis.observers_of_write("h2d_x", h2d.writes[0]) == []
        assert analysis.dead_region("h2d_x", h2d.writes[0]) == FULL_SET

    def test_partial_overwrite_leaves_tail_live(self):
        pipeline = _overwrite_pipeline()
        analysis = DataflowAnalysis(pipeline)
        h2d = pipeline.stage("h2d_x")
        observers = analysis.observers_of_write("h2d_x", h2d.writes[0])
        assert [(o, part.intervals) for o, part in observers] == [
            ("d2h_x", ((0.5, 1.0),))
        ]
        assert analysis.dead_region("h2d_x", h2d.writes[0]).intervals == (
            (0.0, 0.5),
        )

    def test_declared_output_is_an_observer(self):
        b = PipelineBuilder("test/out", metadata={"outputs": ("y",)})
        b.buffer("y", 1 * MB)
        b.cpu_stage("fill", flops=1.0, writes=[BufferAccess("y")])
        pipeline = b.build()
        analysis = DataflowAnalysis(pipeline)
        fill = pipeline.stage("fill")
        observers = analysis.observers_of_write("fill", fill.writes[0])
        assert observers == [("<output>", FULL_SET)]

    def test_communicated_bytes_weighted_by_fraction(self):
        b = PipelineBuilder("test/comm")
        b.buffer("q", 8 * MB)
        b.cpu_stage("prod", flops=1.0, writes=[BufferAccess("q")])
        b.gpu_kernel(
            "cons", flops=1.0, reads=[BufferAccess("q", fraction=0.5)]
        )
        pipeline = b.build()
        analysis = DataflowAnalysis(pipeline)
        bytes_ = analysis.communicated_bytes(
            pipeline.stage("prod"), pipeline.stage("cons"), "q"
        )
        assert bytes_ == pytest.approx(4 * MB)


class TestCopyChain:
    def test_bounce_chain_walks_back_to_origin_copy(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).parent
            / "fixtures"
            / "lint"
            / "rpl302_fusible_copies.py"
        )
        spec = importlib.util.spec_from_file_location("rpl302fx", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        pipeline, _ = module.build()
        analysis = DataflowAnalysis(pipeline)
        assert analysis.copy_chain("h2d_bounce") == ("d2h_r", "h2d_bounce")
        # The first copy's source is kernel-produced: the chain stops.
        assert analysis.copy_chain("d2h_r") == ("d2h_r",)


class TestSerializationEdges:
    def test_serial_chain_edge_without_dataflow_is_flagged(self):
        b = PipelineBuilder("test/serial")
        b.buffer("a", 1 * MB)
        b.buffer("b", 1 * MB)
        b.copy_h2d("a", name="h2d_a")
        b.copy_h2d("b", name="h2d_b")
        b.gpu_kernel("ka", flops=1e6, reads=["a_dev"])
        b.gpu_kernel("kb", flops=1e6, reads=["b_dev"])
        analysis = DataflowAnalysis(b.build())
        edges = {(e.src, e.dst): e for e in analysis.serialization_edges()}
        assert ("h2d_b", "ka") in edges
        edge = edges[("h2d_b", "ka")]
        assert isinstance(edge, SerializationEdge)
        assert edge.crosses_components
        assert ("h2d_b", "ka") in edge.freed_pairs
        # Data-carrying edges never qualify.
        assert ("h2d_a", "h2d_b") not in edges or not edges[
            ("h2d_a", "h2d_b")
        ].crosses_components
        assert ("ka", "kb") in edges  # ka/kb share no data either

    def test_data_dependent_edge_not_flagged(self):
        b = PipelineBuilder("test/dep")
        b.buffer("a", 1 * MB)
        b.copy_h2d("a", name="h2d_a")
        b.gpu_kernel("k", flops=1e6, reads=["a_dev"])
        analysis = DataflowAnalysis(b.build())
        assert analysis.serialization_edges() == []

    def test_transitively_covered_edge_frees_nothing(self):
        b = PipelineBuilder("test/covered")
        b.buffer("a", 1 * MB)
        b.buffer("o_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
        b.copy_h2d("a", name="h2d_a")
        b.gpu_kernel(
            "k1", flops=1e6, reads=["a_dev"], writes=[BufferAccess("o_dev")]
        )
        # k2 names h2d_a redundantly: covered through k1, frees nothing.
        b.gpu_kernel(
            "k2",
            flops=1e6,
            reads=["o_dev"],
            after=["k1", "h2d_a"],
        )
        analysis = DataflowAnalysis(b.build())
        assert ("h2d_a", "k2") not in {
            (e.src, e.dst) for e in analysis.serialization_edges()
        }


class TestFootprints:
    def test_footprint_counts_region_fraction_passes(self):
        b = PipelineBuilder("test/foot")
        b.buffer("d", 8 * MB)
        b.buffer("h", 2 * MB)
        b.cpu_stage(
            "s",
            flops=1e6,
            reads=[
                BufferAccess(
                    "d", region=Region(0.0, 0.5), fraction=0.5, passes=2.0
                )
            ],
            writes=[BufferAccess("h")],
        )
        pipeline = b.build()
        fp = DataflowAnalysis(pipeline).footprint(pipeline.stage("s"))
        assert fp.read_bytes == pytest.approx(8 * MB * 0.5 * 0.5 * 2.0)
        assert fp.write_bytes == pytest.approx(2 * MB)
        assert fp.flop_per_byte == pytest.approx(
            1e6 / (fp.read_bytes + fp.write_bytes)
        )

    def test_zero_byte_stage_has_infinite_intensity(self):
        b = PipelineBuilder("test/nobytes")
        b.buffer("x", 1 * MB)
        b.cpu_stage("sync", flops=10.0)
        b.cpu_stage("use", flops=1.0, reads=["x"])
        pipeline = b.build()
        fp = DataflowAnalysis(pipeline).footprint(pipeline.stage("sync"))
        assert fp.flop_per_byte == float("inf")


def _dead_copy_pipeline():
    b = PipelineBuilder("test/fix_dead", metadata={"outputs": ("t",)})
    b.buffer("t", 1 * MB)
    b.copy_h2d("t", name="h2d_t")
    b.gpu_kernel("init", flops=1e6, writes=[BufferAccess("t_dev")])
    b.copy_d2h("t_dev", "t", name="d2h_t")
    return b.build()


def _bounce_pipeline():
    b = PipelineBuilder("test/fix_bounce", metadata={"outputs": ("out",)})
    b.buffer("x", 1 * MB)
    b.buffer("bounce", 1 * MB)
    b.buffer("out", 1 * MB)
    b.buffer("r_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.buffer("r2_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.buffer("o_dev", 1 * MB, space=MemorySpace.GPU, temporary=True)
    b.copy_h2d("x", name="h2d_x")
    b.gpu_kernel(
        "produce", flops=1e6, reads=["x_dev"], writes=[BufferAccess("r_dev")]
    )
    b.copy_d2h("r_dev", "bounce", name="d2h_r", mirror=False)
    b.copy_h2d("bounce", "r2_dev", name="h2d_bounce", mirror=False)
    b.gpu_kernel(
        "consume", flops=1e6, reads=["r2_dev"], writes=[BufferAccess("o_dev")]
    )
    b.copy_d2h("o_dev", "out", name="d2h_out", mirror=False)
    return b.build()


class TestFixes:
    def test_plan_is_deterministic(self):
        pipeline = _dead_copy_pipeline()
        assert plan_fixes(pipeline) == plan_fixes(pipeline)

    def test_drop_dead_copy(self):
        result = apply_fixes(_dead_copy_pipeline())
        assert [f.kind for f in result.applied] == ["drop-copy"]
        assert result.skipped == ()
        names = {s.name for s in result.pipeline.stages}
        assert "h2d_t" not in names
        report = lint_pipeline(result.pipeline)
        assert not [d for d in report if d.rule in ("RPL301", "RPL302")]

    def test_fuse_bounce_chain(self):
        result = apply_fixes(_bounce_pipeline())
        assert "fuse-copies" in {f.kind for f in result.applied}
        fused = result.pipeline.stage("h2d_bounce")
        assert fused.src == "r_dev" and fused.dst == "r2_dev"
        assert "d2h_r" not in {s.name for s in result.pipeline.stages}
        assert "bounce" not in result.pipeline.buffers  # pruned
        report = lint_pipeline(result.pipeline)
        assert not [d for d in report if d.rule in ("RPL301", "RPL302")]

    def test_dependents_spliced_onto_dependencies(self):
        result = apply_fixes(_dead_copy_pipeline())
        init = result.pipeline.stage("init")
        # "init" depended on the dropped copy; it inherits its deps (none).
        assert "h2d_t" not in init.depends_on
        order = [s.name for s in result.pipeline.topological_order()]
        assert order.index("init") < order.index("d2h_t")

    def test_idempotent(self):
        once = apply_fixes(_bounce_pipeline())
        twice = apply_fixes(once.pipeline)
        assert not twice.changed
        assert twice.pipeline == once.pipeline

    def test_results_equivalent_simulation(self):
        from repro.config.system import discrete_gpu_system
        from repro.sim.engine import SimOptions, simulate

        pipeline = _bounce_pipeline()
        fixed = apply_fixes(pipeline).pipeline
        system = discrete_gpu_system()
        base = simulate(pipeline, system, SimOptions(scale=1.0))
        opt = simulate(fixed, system, SimOptions(scale=1.0))
        # One whole copy disappears: never slower, same compute stages.
        assert opt.roi_s <= base.roi_s
        def kernels(r):
            return sorted(
                s.name for s in r.stages if s.name in ("produce", "consume")
            )

        assert kernels(base) == kernels(opt)

    def test_clean_pipeline_untouched(self):
        b = PipelineBuilder("test/clean", metadata={"outputs": ("y",)})
        b.buffer("y", 1 * MB)
        b.copy_h2d("y", name="h2d_y")
        b.gpu_kernel(
            "k", flops=1e6, reads=["y_dev"], writes=[BufferAccess("y_dev")]
        )
        b.copy_d2h("y_dev", "y", name="d2h_y")
        pipeline = b.build()
        result = apply_fixes(pipeline)
        assert not result.changed
        assert result.pipeline == pipeline


class TestFixResultPreservation:
    """On pipelines with no fixable findings, --fix must be a perfect
    no-op: the identical pipeline object graph, hence bit-identical
    v2-full serialization of its simulation results."""

    @pytest.mark.parametrize(
        "name", ["rodinia/kmeans", "lonestar/bfs", "parboil/sgemm"]
    )
    def test_registry_pipelines_are_fix_noops(self, name):
        from repro.workloads.registry import get

        pipeline = get(name).pipeline()
        result = apply_fixes(pipeline, get(name))
        assert not result.changed
        assert result.pipeline == pipeline

    def test_noop_fix_keeps_v2_full_bytes_identical(self):
        import json

        from repro.config.system import discrete_gpu_system
        from repro.sim.engine import SimOptions, simulate
        from repro.sim.serialize import result_to_full_dict
        from repro.workloads.registry import get

        spec = get("rodinia/kmeans")
        pipeline = spec.pipeline()
        fixed = apply_fixes(pipeline, spec).pipeline
        system = discrete_gpu_system()
        options = SimOptions(scale=1 / 128)
        before = result_to_full_dict(simulate(pipeline, system, options))
        after = result_to_full_dict(simulate(fixed, system, options))
        assert json.dumps(before, sort_keys=True) == json.dumps(
            after, sort_keys=True
        )


class TestLintMemo:
    def test_hit_and_miss_accounting(self):
        memo = LintMemo()
        pipeline = _dead_copy_pipeline()
        first = lint_pipeline_memoized(pipeline, memo=memo)
        second = lint_pipeline_memoized(pipeline, memo=memo)
        assert (memo.misses, memo.hits) == (1, 1)
        assert len(memo) == 1
        assert [d.sort_key for d in first] == [d.sort_key for d in second]

    def test_returns_fresh_copies(self):
        memo = LintMemo()
        pipeline = _dead_copy_pipeline()
        first = lint_pipeline_memoized(pipeline, memo=memo)
        n = len(first.diagnostics)
        first.merge(lint_pipeline(_bounce_pipeline()))
        again = lint_pipeline_memoized(pipeline, memo=memo)
        assert len(again.diagnostics) == n  # merge did not pollute the memo

    def test_opportunities_flag_changes_key(self):
        pipeline = _dead_copy_pipeline()
        assert pipeline_content_hash(pipeline) != pipeline_content_hash(
            pipeline, opportunities=True
        )
        memo = LintMemo()
        lint_pipeline_memoized(pipeline, memo=memo)
        lint_pipeline_memoized(pipeline, opportunities=True, memo=memo)
        assert memo.misses == 2

    def test_distinct_pipelines_distinct_keys(self):
        assert pipeline_content_hash(
            _dead_copy_pipeline()
        ) != pipeline_content_hash(_bounce_pipeline())

    def test_clear_resets(self):
        memo = LintMemo()
        lint_pipeline_memoized(_dead_copy_pipeline(), memo=memo)
        memo.clear()
        assert (len(memo), memo.hits, memo.misses) == (0, 0, 0)
