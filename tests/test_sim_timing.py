"""Tests for repro.sim.timing, repro.sim.dram, repro.sim.pcie."""

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess, Stage, StageKind
from repro.sim.dram import MemorySystem
from repro.sim.hierarchy import Component, DomainResult
from repro.sim.pcie import CopyEngine
from repro.sim.timing import (
    GPU_BASE_MLP,
    POINTER_CHASE_MLP,
    compute_stage_timing,
)


def gpu_stage(flops=1e9, occupancy=1.0, pattern=AccessPattern.STREAMING):
    return Stage(
        name="k",
        kind=StageKind.GPU_KERNEL,
        flops=flops,
        reads=(BufferAccess("a", pattern),),
        compute_efficiency=0.5,
        occupancy=occupancy,
    )


def cpu_stage(flops=1e7, pattern=AccessPattern.STREAMING):
    return Stage(
        name="c",
        kind=StageKind.CPU,
        flops=flops,
        reads=(BufferAccess("a", pattern),),
        compute_efficiency=0.5,
        occupancy=0.25,
    )


def mem(reads=0, writes=0, onchip=0):
    return DomainResult(
        requests=reads + writes,
        offchip_reads=reads,
        offchip_writes=writes,
        onchip_transfers=onchip,
    )


class TestStageTiming:
    def setup_method(self):
        self.system = discrete_gpu_system()
        self.memsys = MemorySystem(self.system)

    def bw(self, component=Component.GPU):
        return self.memsys.effective_bandwidth(component, frozenset())

    def test_compute_bound_kernel(self):
        timing = compute_stage_timing(
            gpu_stage(flops=1e9), self.system, mem(reads=10), self.bw(), 128
        )
        # 1e9 flops at 358.4e9 * 0.5 efficiency.
        assert timing.compute_s == pytest.approx(1e9 / (358.4e9 * 0.5))
        assert timing.duration_s >= timing.compute_s

    def test_memory_bound_kernel(self):
        timing = compute_stage_timing(
            gpu_stage(flops=1e3), self.system, mem(reads=1_000_000), self.bw(), 128
        )
        assert timing.memory_s > timing.compute_s
        expected = 1_000_000 * 128 / self.bw().bytes_per_second
        assert timing.memory_s == pytest.approx(expected)

    def test_compute_and_memory_overlap(self):
        timing = compute_stage_timing(
            gpu_stage(flops=1e9), self.system, mem(reads=1_000_000), self.bw(), 128
        )
        assert timing.duration_s == pytest.approx(
            max(timing.compute_s, timing.memory_s) + timing.latency_s
        )

    def test_occupancy_slows_compute(self):
        full = compute_stage_timing(
            gpu_stage(occupancy=1.0), self.system, mem(), self.bw(), 128
        )
        half = compute_stage_timing(
            gpu_stage(occupancy=0.5), self.system, mem(), self.bw(), 128
        )
        assert half.compute_s == pytest.approx(2 * full.compute_s)

    def test_cpu_latency_sensitivity(self):
        cpu = cpu_stage()
        timing = compute_stage_timing(
            cpu, self.system, mem(reads=6000), self.bw(Component.CPU), 128
        )
        expected = (
            6000
            * self.system.cpu.miss_latency_s
            / self.system.cpu.memory_level_parallelism
        )
        assert timing.latency_s == pytest.approx(expected)

    def test_pointer_chase_cuts_cpu_mlp(self):
        streaming = compute_stage_timing(
            cpu_stage(), self.system, mem(reads=1000), self.bw(Component.CPU), 128
        )
        chasing = compute_stage_timing(
            cpu_stage(pattern=AccessPattern.POINTER_CHASE),
            self.system,
            mem(reads=1000),
            self.bw(Component.CPU),
            128,
        )
        ratio = chasing.latency_s / streaming.latency_s
        assert ratio == pytest.approx(
            self.system.cpu.memory_level_parallelism / POINTER_CHASE_MLP
        )

    def test_gpu_hides_latency_better_than_cpu(self):
        gpu_t = compute_stage_timing(
            gpu_stage(flops=1.0), self.system, mem(reads=1000), self.bw(), 128
        )
        cpu_t = compute_stage_timing(
            cpu_stage(flops=1.0), self.system, mem(reads=1000),
            self.bw(Component.CPU), 128,
        )
        assert gpu_t.latency_s < cpu_t.latency_s

    def test_onchip_transfers_cheaper_than_offchip(self):
        offchip = compute_stage_timing(
            cpu_stage(flops=1.0), self.system, mem(reads=1000),
            self.bw(Component.CPU), 128,
        )
        onchip = compute_stage_timing(
            cpu_stage(flops=1.0), self.system, mem(onchip=1000),
            self.bw(Component.CPU), 128,
        )
        assert onchip.latency_s < offchip.latency_s / 2

    def test_fault_service_adds_serial_time(self):
        base = compute_stage_timing(
            gpu_stage(), self.system, mem(), self.bw(), 128
        )
        faulted = compute_stage_timing(
            gpu_stage(), self.system, mem(), self.bw(), 128, fault_service_s=1e-3
        )
        assert faulted.duration_s == pytest.approx(base.duration_s + 1e-3)

    def test_copy_stage_rejected(self):
        copy = Stage(name="c", kind=StageKind.COPY, src="a", dst="b")
        with pytest.raises(ValueError, match="CopyEngine"):
            compute_stage_timing(copy, self.system, mem(), self.bw(), 128)


class TestMemorySystem:
    def test_discrete_pools(self):
        memsys = MemorySystem(discrete_gpu_system())
        assert memsys.pool_of(Component.CPU).name == "DDR3-1600"
        assert memsys.pool_of(Component.GPU).name == "GDDR5"

    def test_heterogeneous_single_pool(self):
        memsys = MemorySystem(heterogeneous_processor())
        assert memsys.pool_of(Component.CPU).name == "GDDR5"
        assert memsys.pool_of(Component.GPU).name == "GDDR5"

    def test_bandwidth_shared_when_concurrent(self):
        memsys = MemorySystem(heterogeneous_processor())
        alone = memsys.effective_bandwidth(Component.GPU, frozenset())
        shared = memsys.effective_bandwidth(
            Component.GPU, frozenset({Component.CPU})
        )
        assert shared.bytes_per_second == pytest.approx(alone.bytes_per_second / 2)

    def test_discrete_cpu_gpu_do_not_contend(self):
        memsys = MemorySystem(discrete_gpu_system())
        alone = memsys.effective_bandwidth(Component.GPU, frozenset())
        with_cpu = memsys.effective_bandwidth(
            Component.GPU, frozenset({Component.CPU})
        )
        assert with_cpu.bytes_per_second == pytest.approx(alone.bytes_per_second)


class TestCopyEngine:
    def test_discrete_copy_over_pcie(self):
        system = discrete_gpu_system()
        engine = CopyEngine(system)
        timing = engine.copy_time(8e6)
        assert timing.transfer_s == pytest.approx(8e6 / system.pcie.achievable_bandwidth)
        assert timing.launch_s == system.pcie.copy_launch_latency_s

    def test_heterogeneous_copy_pays_read_plus_write(self):
        system = heterogeneous_processor()
        engine = CopyEngine(system)
        timing = engine.copy_time(8e6)
        assert timing.transfer_s == pytest.approx(
            2 * 8e6 / system.gpu_memory.achievable_bandwidth
        )

    def test_heterogeneous_copy_is_much_faster(self):
        discrete_time = CopyEngine(discrete_gpu_system()).copy_time(8e6).transfer_s
        hetero_time = CopyEngine(heterogeneous_processor()).copy_time(8e6).transfer_s
        assert hetero_time < discrete_time / 5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CopyEngine(discrete_gpu_system()).copy_time(-1.0)
