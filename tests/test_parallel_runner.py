"""Differential tests: parallel vs serial sweeps and the persistent cache.

The parallel path must be a pure performance feature: bit-identical
results to the serial path, and a second run against a warm cache must be
served entirely from disk (0 simulations executed).
"""

from __future__ import annotations

import gzip

import pytest

from repro.experiments.parallel import COPY, LIMITED, resolve_jobs
from repro.experiments.runner import SweepRunner
from repro.sim.engine import ENGINE_VERSION, SimOptions, simulate
from repro.sim.resultcache import ResultCache, cache_key
from repro.sim.serialize import result_to_full_dict, results_identical
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE, build_offload_pipeline

#: Sampled sweep subset: one benchmark per suite, small enough that the
#: whole differential suite stays in the tier-1 budget.
SAMPLE = ("lonestar/bfs", "pannotia/mis", "parboil/spmv", "rodinia/kmeans")


def _options(scale: float = TINY_SCALE) -> SimOptions:
    return SimOptions(scale=scale, seed=3)


@pytest.fixture()
def sample_specs():
    return [get(name) for name in SAMPLE]


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3


class TestParallelMatchesSerial:
    def test_bit_identical_results(self, sample_specs):
        serial = SweepRunner(options=_options())
        parallel = SweepRunner(options=_options(), parallel=2)
        serial_runs = serial.sweep(sample_specs)
        parallel_runs = parallel.sweep(sample_specs)
        assert serial_runs.keys() == parallel_runs.keys()
        for name in serial_runs:
            assert results_identical(
                serial_runs[name].copy, parallel_runs[name].copy
            ), f"{name} copy version diverged"
            assert results_identical(
                serial_runs[name].limited, parallel_runs[name].limited
            ), f"{name} limited version diverged"

    def test_parallel_metrics_account_every_run(self, sample_specs):
        runner = SweepRunner(options=_options(), parallel=2)
        runner.sweep(sample_specs)
        metrics = runner.last_metrics
        assert metrics.total == 2 * len(sample_specs)
        assert metrics.launched == 2 * len(sample_specs)
        assert metrics.cache_hits == 0
        assert metrics.wall_s > 0
        assert metrics.serial_estimate_s > 0

    def test_unregistered_spec_still_sweeps_in_parallel(self):
        """Specs outside the registry are handled (pickled or run locally)."""
        from repro.workloads.spec import BenchmarkSpec

        spec = BenchmarkSpec(
            name="offload",
            suite="testsuite",
            description="synthetic",
            pc_comm=True,
            pipe_parallel=True,
            regular_pc=True,
            irregular=False,
            sw_queue=False,
            build=build_offload_pipeline,
        )
        serial = SweepRunner(options=_options()).pair(spec)
        parallel = SweepRunner(options=_options(), parallel=2).pair(spec)
        assert results_identical(serial.copy, parallel.copy)
        assert results_identical(serial.limited, parallel.limited)


class TestPersistentCache:
    def test_second_run_served_entirely_from_cache(self, tmp_path, sample_specs):
        cold = SweepRunner(options=_options(), cache_dir=tmp_path)
        cold_runs = cold.sweep(sample_specs)
        assert cold.last_metrics.launched == 2 * len(sample_specs)

        warm = SweepRunner(options=_options(), cache_dir=tmp_path, parallel=2)
        warm_runs = warm.sweep(sample_specs)
        metrics = warm.last_metrics
        assert metrics.launched == 0, "warm sweep must execute 0 simulations"
        assert metrics.cache_hits == 2 * len(sample_specs)
        for name in cold_runs:
            assert results_identical(cold_runs[name].copy, warm_runs[name].copy)
            assert results_identical(
                cold_runs[name].limited, warm_runs[name].limited
            )

    def test_cache_round_trip_is_lossless(self, tmp_path, discrete):
        pipeline = build_offload_pipeline()
        result = simulate(pipeline, discrete, _options())
        cache = ResultCache(tmp_path)
        cache.store("a" * 64, result, sim_wall_s=1.5)
        entry = cache.load("a" * 64)
        assert entry is not None
        assert entry.sim_wall_s == 1.5
        assert results_identical(entry.result, result)
        # Key fields survive exactly, including numpy log dtypes.
        assert entry.result.log_blocks.dtype == result.log_blocks.dtype
        assert entry.result.offchip_accesses() == result.offchip_accesses()
        assert result_to_full_dict(entry.result) == result_to_full_dict(result)

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, sample_specs):
        spec = sample_specs[0]
        runner = SweepRunner(options=_options(), cache_dir=tmp_path)
        first = runner.run(spec, COPY)
        key = cache_key(spec, COPY, runner.discrete, runner.options)
        path = ResultCache(tmp_path).path_for(key)
        assert path.is_file()
        path.write_bytes(b"not gzip at all")
        rerun = SweepRunner(options=_options(), cache_dir=tmp_path)
        second = rerun.run(spec, COPY)
        assert rerun.last_metrics.launched == 1  # miss -> re-simulated
        assert results_identical(first, second)

    def test_truncated_gzip_entry_degrades_to_miss(self, tmp_path, sample_specs):
        spec = sample_specs[0]
        runner = SweepRunner(options=_options(), cache_dir=tmp_path)
        runner.run(spec, COPY)
        key = cache_key(spec, COPY, runner.discrete, runner.options)
        path = ResultCache(tmp_path).path_for(key)
        path.write_bytes(gzip.compress(b'{"schema": "something else"}'))
        rerun = SweepRunner(options=_options(), cache_dir=tmp_path)
        rerun.run(spec, COPY)
        assert rerun.last_metrics.launched == 1


class TestScaleKeying:
    """Regression: sweeps at different --scale must never collide."""

    def test_shared_cache_dir_keeps_scales_apart(self, tmp_path, sample_specs):
        spec = sample_specs[0]
        small = SweepRunner(options=_options(scale=1 / 128), cache_dir=tmp_path)
        large = SweepRunner(options=_options(scale=1 / 64), cache_dir=tmp_path)
        small_result = small.run(spec, COPY)
        large_result = large.run(spec, COPY)
        # The second runner must not be served the first runner's result.
        assert large.last_metrics.launched == 1
        assert not results_identical(small_result, large_result)
        assert len(ResultCache(tmp_path)) == 2

    def test_cache_key_includes_every_sim_option(self, sample_specs):
        spec = sample_specs[0]
        runner = SweepRunner(options=_options())
        base = cache_key(spec, COPY, runner.discrete, runner.options)
        for changed in (
            SimOptions(scale=TINY_SCALE / 2, seed=3),
            SimOptions(scale=TINY_SCALE, seed=4),
            SimOptions(scale=TINY_SCALE, seed=3, line_bytes=64),
            SimOptions(scale=TINY_SCALE, seed=3, collect_log=False),
            SimOptions(scale=TINY_SCALE, seed=3, dram_row_model=True),
        ):
            assert cache_key(spec, COPY, runner.discrete, changed) != base

    def test_key_changes_with_version_system_and_engine_tag(self, sample_specs):
        spec = sample_specs[0]
        runner = SweepRunner(options=_options())
        base = cache_key(spec, COPY, runner.discrete, runner.options)
        assert cache_key(spec, LIMITED, runner.discrete, runner.options) != base
        assert (
            cache_key(spec, COPY, runner.heterogeneous, runner.options) != base
        )
        assert (
            cache_key(
                spec,
                COPY,
                runner.discrete,
                runner.options,
                engine_version=ENGINE_VERSION + "-next",
            )
            != base
        )

    def test_memo_respects_options_change(self, sample_specs):
        """Regression: the in-memory memo used to ignore SimOptions.scale."""
        spec = sample_specs[0]
        runner = SweepRunner(options=_options(scale=1 / 128))
        first = runner.run(spec, COPY)
        runner.options = SimOptions(scale=1 / 64, seed=3)
        second = runner.run(spec, COPY)
        assert not results_identical(first, second)
        # And switching back serves the original from the memo, unchanged.
        runner.options = SimOptions(scale=1 / 128, seed=3)
        third = runner.run(spec, COPY)
        assert runner.last_metrics.launched == 0
        assert results_identical(first, third)
