"""Tests for repro.core.migrate (Eqs. 2-4)."""

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.core.migrate import (
    MigrateBound,
    achieved_bandwidth,
    migrated_compute_runtime,
)
from repro.core.overlap import ComponentTimes


def times(cpu=0.0, copy=0.0, gpu=0.0):
    return ComponentTimes(
        cpu_s=cpu, copy_s=copy, gpu_s=gpu, cserial_s=0.0, roi_s=cpu + copy + gpu
    )


class TestEquationTwo:
    def test_core_bound_is_flop_weighted_mean(self):
        system = discrete_gpu_system()
        estimate = migrated_compute_runtime(
            times(cpu=10.0, gpu=2.0), system, offchip_bytes=0.0
        )
        f_cpu = system.cpu.peak_flops
        f_gpu = system.gpu.peak_flops
        expected = (10.0 * f_cpu + 2.0 * f_gpu) / (f_cpu + f_gpu)
        assert estimate.core_bound_s == pytest.approx(expected)

    def test_cpu_heavy_work_shrinks_a_lot(self):
        # CPU-dominated run times see large estimated gains (Rodinia dwt).
        system = discrete_gpu_system()
        estimate = migrated_compute_runtime(
            times(cpu=10.0, gpu=0.0), system, offchip_bytes=0.0
        )
        assert estimate.runtime_s < 10.0 * 0.2

    def test_gpu_only_work_barely_changes(self):
        system = discrete_gpu_system()
        estimate = migrated_compute_runtime(
            times(gpu=10.0), system, offchip_bytes=0.0
        )
        # GPU already holds ~86% of the FLOP capacity.
        assert estimate.core_bound_s > 8.0


class TestEquationThree:
    def test_bandwidth_bound(self):
        system = heterogeneous_processor()
        estimate = migrated_compute_runtime(
            times(gpu=1e-6), system, offchip_bytes=1e9
        )
        expected = 1e9 / system.gpu_memory.achievable_bandwidth
        assert estimate.bandwidth_bound_s == pytest.approx(expected)
        assert estimate.bound is MigrateBound.BANDWIDTH

    def test_discrete_sums_both_pools(self):
        discrete = discrete_gpu_system()
        assert achieved_bandwidth(discrete) == pytest.approx(
            discrete.cpu_memory.achievable_bandwidth
            + discrete.gpu_memory.achievable_bandwidth
        )

    def test_heterogeneous_uses_shared_pool(self):
        hetero = heterogeneous_processor()
        assert achieved_bandwidth(hetero) == pytest.approx(
            hetero.gpu_memory.achievable_bandwidth
        )


class TestEquationFour:
    def test_copy_bound_dominates_for_copy_heavy(self):
        system = discrete_gpu_system()
        estimate = migrated_compute_runtime(
            times(cpu=0.1, copy=5.0, gpu=0.1), system, offchip_bytes=1.0
        )
        assert estimate.bound is MigrateBound.COPY
        assert estimate.runtime_s == pytest.approx(5.0)

    def test_runtime_is_max_of_bounds(self):
        system = discrete_gpu_system()
        estimate = migrated_compute_runtime(
            times(cpu=1.0, copy=0.5, gpu=2.0), system, offchip_bytes=1e8
        )
        assert estimate.runtime_s == pytest.approx(
            max(
                estimate.copy_bound_s,
                estimate.core_bound_s,
                estimate.bandwidth_bound_s,
            )
        )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            migrated_compute_runtime(times(), discrete_gpu_system(), -1.0)
