"""Tests for repro.config.components."""

import pytest

from repro.config.components import (
    DDR3_1600,
    GDDR5,
    CacheConfig,
    CpuConfig,
    GpuConfig,
    MemoryConfig,
    PcieConfig,
)
from repro.units import GB_PER_S, KB, MB


class TestCacheConfig:
    def test_table_i_gpu_l2_geometry(self):
        l2 = CacheConfig(1 * MB, associativity=16)
        assert l2.num_lines == 8192
        assert l2.num_sets == 512
        assert l2.line_bytes == 128

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig(64 * KB, line_bytes=100)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            CacheConfig(0)

    def test_rejects_capacity_not_multiple_of_set_granule(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheConfig(1000, line_bytes=128, associativity=8)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheConfig(64 * KB, associativity=0)

    def test_scaled_preserves_geometry_invariants(self):
        cfg = CacheConfig(1 * MB, associativity=16)
        small = cfg.scaled(1 / 32)
        assert small.capacity_bytes == 32 * KB
        assert small.associativity == cfg.associativity
        assert small.line_bytes == cfg.line_bytes
        assert small.capacity_bytes % (small.line_bytes * small.associativity) == 0

    def test_scaled_never_drops_below_one_set(self):
        cfg = CacheConfig(32 * KB, associativity=8)
        tiny = cfg.scaled(1e-9)
        assert tiny.num_sets >= 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig(64 * KB).scaled(0)


class TestCpuConfig:
    def test_table_i_peak_flops(self):
        cpu = CpuConfig()
        # 4 cores x 14 GFLOP/s
        assert cpu.peak_flops == pytest.approx(56e9)

    def test_table_i_cache_sizes(self):
        cpu = CpuConfig()
        assert cpu.l1i.capacity_bytes == 32 * KB
        assert cpu.l1d.capacity_bytes == 64 * KB
        assert cpu.l2.capacity_bytes == 256 * KB
        assert cpu.total_l2_bytes == 1 * MB


class TestGpuConfig:
    def test_table_i_peak_flops(self):
        gpu = GpuConfig()
        # 16 cores x 22.4 GFLOP/s
        assert gpu.peak_flops == pytest.approx(358.4e9)

    def test_table_i_max_threads(self):
        gpu = GpuConfig()
        # 16 cores x 48 warps x 32 threads
        assert gpu.max_threads == 24576

    def test_table_i_scratch_and_l1(self):
        gpu = GpuConfig()
        assert gpu.scratch_bytes_per_core == 48 * KB
        assert gpu.l1.capacity_bytes == 24 * KB
        assert gpu.l2.capacity_bytes == 1 * MB


class TestMemoryConfig:
    def test_table_i_bandwidths(self):
        assert DDR3_1600.peak_bandwidth == pytest.approx(24 * GB_PER_S)
        assert GDDR5.peak_bandwidth == pytest.approx(179 * GB_PER_S)

    def test_achievable_is_82_percent_of_pin(self):
        assert GDDR5.achievable_bandwidth == pytest.approx(0.82 * 179 * GB_PER_S)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            MemoryConfig("x", 1, 1e9, efficiency=1.5)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            MemoryConfig("x", 1, 0.0)


class TestPcieConfig:
    def test_table_i_pcie(self):
        pcie = PcieConfig()
        assert pcie.peak_bandwidth == pytest.approx(8 * GB_PER_S)
        assert pcie.achievable_bandwidth < pcie.peak_bandwidth
