"""Differential validation of the simulation-free static advisor.

The static advisor answers the paper's three applicability questions
(overlap, migration, coordination) from pipeline structure alone; the
dynamic advisor answers them from simulation results.  These tests pin
the contract that the two agree — on a five-class representative subset
on every run, and on the full 46-benchmark registry when
``REPRO_ADVISOR_FULL=1`` (the full matrix costs ~75 s cold, same trade
as the engine-equivalence matrix).

Scale matters: agreement is calibrated at ``DEFAULT_BENCH_SCALE`` (the
scale every CLI entry point simulates at).  Smaller scales shift cache-
line granularity effects enough to move near-threshold benchmarks
(parboil/bfs straddles the overlap threshold at 1/128).
"""

import os

import pytest

from repro.analysis.dataflow.advisor import (
    Verdict,
    dynamic_verdict,
    render_static_table,
    static_advice,
    static_verdict,
)
from repro.experiments.runner import DEFAULT_BENCH_SCALE, SweepRunner
from repro.sim.engine import SimOptions
from repro.workloads.registry import get, simulatable_specs

#: One or two benchmarks from every (overlap, migration, coordination)
#: class the registry exhibits, plus the known threshold-straddlers
#: (parboil/bfs sits nearest the overlap threshold; parboil/cutcp has the
#: inverted static-vs-dynamic overlap margin).
SUBSET = (
    "parboil/sgemm",  # (no, no, no): compute-bound, GPU-only
    "parboil/stencil",
    "lonestar/tsp",  # (no, no, yes)
    "parboil/lbm",
    "lonestar/mst",  # (no, yes, no): graph app with CPU phases
    "parboil/bfs",
    "lonestar/bfs",  # (yes, yes, no)
    "rodinia/bfs",
    "parboil/cutcp",  # (yes, yes, yes)
    "rodinia/kmeans",
)


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(options=SimOptions(scale=DEFAULT_BENCH_SCALE))


class TestDifferentialAgreement:
    @pytest.mark.parametrize("name", SUBSET)
    def test_subset_agreement(self, name, runner):
        spec = get(name)
        static = static_verdict(spec)
        dynamic = dynamic_verdict(spec, runner)
        assert static.agrees(dynamic), (
            f"{name}: static {static} vs dynamic {dynamic}"
        )

    @pytest.mark.advisor_full
    @pytest.mark.skipif(
        not os.environ.get("REPRO_ADVISOR_FULL"),
        reason="full 46-benchmark differential; set REPRO_ADVISOR_FULL=1",
    )
    def test_full_registry_agreement(self, runner):
        disagreements = []
        for spec in sorted(simulatable_specs(), key=lambda s: s.full_name):
            static = static_verdict(spec)
            dynamic = dynamic_verdict(spec, runner)
            if not static.agrees(dynamic):
                disagreements.append((spec.full_name, static, dynamic))
        assert not disagreements


class TestStaticAdvice:
    def test_advice_carries_numbers_and_rationales(self):
        advice = static_advice(get("rodinia/kmeans"))
        assert advice.benchmark == "rodinia/kmeans"
        assert advice.rationales
        assert 0.0 <= advice.overlap_gain < 1.0
        assert advice.reuse_ratio >= 0.0

    def test_verdict_classes_pinned(self):
        # Regression pins for one benchmark per extreme class.
        assert static_verdict(get("parboil/sgemm")) == Verdict(
            overlap=False, migration=False, coordination=False
        )
        assert static_verdict(get("rodinia/kmeans")) == Verdict(
            overlap=True, migration=True, coordination=True
        )

    def test_render_mentions_benchmark_and_verdicts(self):
        text = static_advice(get("rodinia/kmeans")).render()
        assert "rodinia/kmeans" in text
        assert "overlap" in text.lower()

    def test_table_renders_all_rows(self):
        advices = [
            static_advice(get(n)) for n in ("parboil/sgemm", "rodinia/kmeans")
        ]
        table = render_static_table(advices)
        assert "Static optimization advisor" in table
        assert "parboil/sgemm" in table and "rodinia/kmeans" in table

    def test_verdict_agreement_is_equality(self):
        a = Verdict(overlap=True, migration=False, coordination=True)
        assert a.agrees(Verdict(True, False, True))
        assert not a.agrees(Verdict(False, False, True))

    def test_static_advice_needs_no_simulation(self, monkeypatch):
        import repro.sim.engine as engine

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("static advisor must not simulate")

        monkeypatch.setattr(engine, "simulate", boom)
        advice = static_advice(get("rodinia/hotspot"))
        assert advice.benchmark == "rodinia/hotspot"
