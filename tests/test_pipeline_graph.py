"""Tests for repro.pipeline.graph (Pipeline validation and queries)."""

import pytest

from repro.pipeline.buffers import Buffer
from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.stage import BufferAccess, Stage, StageKind


def make_pipeline(stages, buffers=None):
    buffers = buffers or {
        "a": Buffer("a", 4096),
        "b": Buffer("b", 4096),
    }
    return Pipeline(name="t", buffers=buffers, stages=tuple(stages))


def cpu(name, deps=(), reads=(), writes=(), flops=0.0):
    return Stage(
        name=name,
        kind=StageKind.CPU,
        flops=flops,
        reads=tuple(BufferAccess(r) for r in reads),
        writes=tuple(BufferAccess(w) for w in writes),
        depends_on=tuple(deps),
    )


class TestValidation:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            make_pipeline([cpu("s"), cpu("s")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PipelineError, match="unknown"):
            make_pipeline([cpu("s", deps=("ghost",))])

    def test_unknown_buffer_rejected(self):
        with pytest.raises(PipelineError, match="unknown buffer"):
            make_pipeline([cpu("s", reads=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(PipelineError, match="cycle"):
            make_pipeline([cpu("x", deps=("y",)), cpu("y", deps=("x",))])

    def test_buffer_key_mismatch_rejected(self):
        with pytest.raises(PipelineError, match="buffer key"):
            Pipeline(name="t", buffers={"wrong": Buffer("a", 4096)}, stages=())

    def test_mirror_of_unknown_buffer_rejected(self):
        buffers = {"m": Buffer("m", 4096, space=__import__("repro.pipeline.buffers", fromlist=["MemorySpace"]).MemorySpace.GPU, mirror_of="ghost")}
        with pytest.raises(PipelineError, match="mirrors unknown"):
            Pipeline(name="t", buffers=buffers, stages=())


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        pipeline = make_pipeline(
            [cpu("c", deps=("a", "b")), cpu("b", deps=("a",)), cpu("a")]
        )
        order = [s.name for s in pipeline.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_stable_for_independent_stages(self):
        pipeline = make_pipeline([cpu("x"), cpu("y"), cpu("z")])
        assert [s.name for s in pipeline.topological_order()] == ["x", "y", "z"]


class TestQueries:
    def test_stage_lookup(self):
        pipeline = make_pipeline([cpu("s")])
        assert pipeline.stage("s").name == "s"
        with pytest.raises(KeyError):
            pipeline.stage("ghost")

    def test_total_flops_and_by_kind(self):
        gpu = Stage(name="g", kind=StageKind.GPU_KERNEL, flops=100.0)
        pipeline = make_pipeline([cpu("c", flops=10.0), gpu])
        assert pipeline.total_flops == 110.0
        by_kind = pipeline.flops_by_kind()
        assert by_kind[StageKind.CPU] == 10.0
        assert by_kind[StageKind.GPU_KERNEL] == 100.0

    def test_footprint_sums_buffers(self):
        pipeline = make_pipeline([cpu("s")])
        assert pipeline.footprint_bytes == 8192

    def test_producer_consumer_edges(self):
        stages = [
            cpu("produce", writes=("a",)),
            cpu("consume", deps=("produce",), reads=("a",)),
            cpu("other", deps=("consume",), reads=("b",)),
        ]
        pipeline = make_pipeline(stages)
        edges = pipeline.producer_consumer_edges()
        assert ("produce", "consume", "a") in edges
        # 'other' reads 'b' which nothing wrote: no edge.
        assert all(edge[1] != "other" for edge in edges)

    def test_self_edge_excluded(self):
        stages = [cpu("rw", reads=("a",), writes=("a",))]
        # Reads happen "before" writes within a stage: no self edge.
        assert make_pipeline(stages).producer_consumer_edges() == ()


class TestScaled:
    def test_scales_buffers_and_flops(self):
        pipeline = make_pipeline([cpu("s", flops=1000.0)])
        scaled = pipeline.scaled(0.5)
        assert scaled.footprint_bytes == 4096
        assert scaled.total_flops == 500.0

    def test_identity_scale_returns_same_object(self):
        pipeline = make_pipeline([cpu("s")])
        assert pipeline.scaled(1.0) is pipeline

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_pipeline([cpu("s")]).scaled(0.0)


class TestWithStages:
    def test_replaces_stages_keeps_metadata(self):
        pipeline = Pipeline(
            name="t",
            buffers={"a": Buffer("a", 4096)},
            stages=(cpu("s", reads=("a",)),),
            metadata={"outputs": ("a",)},
        )
        replaced = pipeline.with_stages([cpu("s2", reads=("a",))])
        assert [s.name for s in replaced.stages] == ["s2"]
        assert replaced.metadata["outputs"] == ("a",)
        assert replaced.name == "t"
