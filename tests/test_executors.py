"""Pluggable executor backends: wire format, factory, and end-to-end runs.

The contract under test (docs/SWEEPS.md): every backend produces results
*identical* to the in-process pool, remote failures surface as the same
structured :class:`TaskFailure` records local ones do (now with per-host
attribution), a dead ssh host is quarantined instead of burning task
retries, and the warm-cache synchronization leaves the coordinator's
result cache filled by remote work.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments import parallel as parallel_mod
from repro.experiments.executors import (
    AUTO_CACHE_DIR,
    BACKENDS,
    LocalPoolBackend,
    RemoteTaskError,
    SshBackend,
    SubprocessBackend,
    WireProtocolError,
    WorkerOutcome,
    WorkerTask,
    create_backend,
)
from repro.experiments.executors.wire import (
    decode_result,
    decode_task,
    encode_error,
    encode_outcome,
    encode_task,
)
from repro.experiments.parallel import (
    COPY,
    FATE_ALIVE,
    FATE_CRASHED,
    LIMITED,
    FaultPolicy,
    SweepTask,
    run_tasks,
)
from repro.sim.engine import SimOptions
from repro.sim.resultcache import ResultCache
from repro.sim.serialize import results_identical
from repro.testing.faults import FaultRule, injected_faults
from repro.workloads.registry import get

NAMES = ("lonestar/bfs", "rodinia/kmeans")
SCALE = 1 / 512


def _options() -> SimOptions:
    return SimOptions(scale=SCALE, seed=11)


def _tasks(names=NAMES):
    return [SweepTask(get(name), v) for name in names for v in (COPY, LIMITED)]


def _run(tasks, *, jobs=2, policy=None, cache=None, backend=None, hosts=()):
    return run_tasks(
        tasks,
        discrete=discrete_gpu_system(),
        heterogeneous=heterogeneous_processor(),
        options=_options(),
        jobs=jobs,
        cache=cache,
        policy=policy,
        backend=backend,
        hosts=hosts,
    )


def _fast(**kwargs) -> FaultPolicy:
    kwargs.setdefault("backoff_base_s", 0.0)
    return FaultPolicy(**kwargs)


def _worker_task(**overrides) -> WorkerTask:
    fields = dict(
        benchmark="lonestar/bfs",
        version=COPY,
        spec_blob=None,
        system=discrete_gpu_system(),
        options=_options(),
        cache_key="k" * 16,
        cache_dir=None,
        sync_cache=True,
    )
    fields.update(overrides)
    return WorkerTask(**fields)


class TestWireFormat:
    def test_task_document_golden(self, golden_json):
        """The task wire document is pinned: a drift here breaks mixed
        coordinator/worker versions in a real distributed deployment."""
        payload = json.loads(encode_task(_worker_task()))
        golden_json("executors/task_doc", payload)

    def test_error_document_golden(self, golden_json):
        payload = json.loads(
            encode_error(
                "rodinia/kmeans", LIMITED, "ValueError", "boom", host="n1"
            )
        )
        golden_json("executors/error_result", payload)

    def test_task_round_trip(self):
        task = _worker_task(
            spec_blob=b"\x80\x04pickled", cache_dir=AUTO_CACHE_DIR
        )
        decoded = decode_task(encode_task(task))
        assert decoded == task

    def test_outcome_entry_bytes_round_trip(self):
        outcome = WorkerOutcome(
            benchmark="lonestar/bfs",
            version=COPY,
            wall_s=0.25,
            memo_hits=3,
            memo_misses=1,
            host="n2",
            cache_hit=True,
            entry_bytes=b"\x1f\x8bnot-really-gzip-but-opaque-here",
        )
        decoded = decode_result(encode_outcome(outcome))
        assert decoded == outcome

    def test_outcome_result_round_trip(self):
        results, _ = _run(_tasks(("lonestar/bfs",)), jobs=1)
        result = results[("lonestar/bfs", COPY)]
        decoded = decode_result(
            encode_outcome(
                WorkerOutcome(
                    benchmark="lonestar/bfs",
                    version=COPY,
                    wall_s=0.5,
                    result=result,
                )
            )
        )
        assert results_identical(decoded.result, result)

    def test_error_reply_decodes_to_remote_task_error(self):
        data = encode_error("a/b", COPY, "KeyError", "missing", host="n3")
        with pytest.raises(RemoteTaskError) as excinfo:
            decode_result(data)
        assert excinfo.value.error_type == "KeyError"
        assert excinfo.value.host == "n3"

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"{not json",
            b'"a string"',
            b'{"schema": "somebody.else/v9"}',
            b'{"schema": "repro.executor.result/v1", "ok": true}',
            b'{"schema": "repro.executor.result/v1", "ok": true, '
            b'"benchmark": "x", "version": "copy", "wall_s": 1.0, '
            b'"entry_b64": "%%%not-base64%%%"}',
        ],
    )
    def test_malformed_replies_raise_wire_protocol_error(self, data):
        with pytest.raises(WireProtocolError):
            decode_result(data)

    def test_truncated_reply_raises_wire_protocol_error(self):
        data = encode_outcome(
            WorkerOutcome(
                benchmark="x", version=COPY, wall_s=1.0, entry_bytes=b"abc"
            )
        )
        with pytest.raises(WireProtocolError):
            decode_result(data[: len(data) // 2])

    def test_task_with_wrong_shape_system_rejected(self):
        payload = json.loads(encode_task(_worker_task()))
        payload["system"] = ["not", "an", "object"]
        with pytest.raises(WireProtocolError):
            decode_task(json.dumps(payload).encode())


class TestBackendFactory:
    def test_registered_names(self):
        assert BACKENDS == ("local", "subprocess", "ssh")

    def test_default_and_local(self):
        assert isinstance(create_backend(None), LocalPoolBackend)
        assert isinstance(create_backend("local"), LocalPoolBackend)

    def test_subprocess(self):
        assert isinstance(create_backend("subprocess"), SubprocessBackend)

    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError):
            create_backend("ssh")
        backend = create_backend("ssh", hosts=("a", "b"))
        assert isinstance(backend, SshBackend)

    def test_instance_passes_through(self):
        backend = SubprocessBackend()
        assert create_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_backend("carrier-pigeon")


class TestSubprocessBackend:
    def test_results_identical_to_local_pool(self, tmp_path):
        local, lm = _run(
            _tasks(), cache=ResultCache(tmp_path / "a"), backend="local"
        )
        remote, rm = _run(
            _tasks(), cache=ResultCache(tmp_path / "b"), backend="subprocess"
        )
        assert set(local) == set(remote) and len(local) == 4
        for key, result in local.items():
            assert results_identical(result, remote[key])
        assert not lm.failures and not rm.failures
        assert sum(rm.host_launched.values()) == 4

    def test_injected_kill_is_structured_and_needs_no_recycle(self, tmp_path):
        with injected_faults(
            {"rodinia/kmeans:copy": FaultRule("kill")}, counter_dir=tmp_path
        ):
            results, metrics = _run(
                _tasks(),
                backend="subprocess",
                policy=_fast(max_retries=1),
            )
        assert len(results) == 3
        [failure] = metrics.failures
        assert failure.benchmark == "rodinia/kmeans"
        assert failure.error_type == "WorkerCrash"
        assert failure.worker_fate == FATE_CRASHED
        assert failure.host  # crashed children still carry host attribution
        assert failure.attempts == 2
        # The crash was isolated to one child — unlike the shared pool, no
        # backend recycle happened and bystander tasks kept running.
        assert metrics.pool_rebuilds == 0

    def test_remote_exception_reports_remote_type(self, tmp_path):
        with injected_faults(
            {"rodinia/kmeans:copy": FaultRule("raise")}, counter_dir=tmp_path
        ):
            results, metrics = _run(
                _tasks(),
                backend="subprocess",
                policy=_fast(max_retries=0),
            )
        assert len(results) == 3
        [failure] = metrics.failures
        assert failure.error_type == "FaultInjected"
        assert failure.worker_fate == FATE_ALIVE
        assert failure.host

    def test_warm_cache_synchronization(self, tmp_path):
        cache = ResultCache(tmp_path / "coord")
        _, first = _run(_tasks(), cache=cache, backend="subprocess")
        assert first.launched == 4 and len(cache) == 4
        # Second pass: the coordinator's cache was filled by *remote*
        # work, so nothing launches at all.
        _, second = _run(_tasks(), cache=cache, backend="subprocess")
        assert second.launched == 0
        assert second.cache_hits == 4

    def test_worker_side_cache_hits_are_absorbed(self, tmp_path):
        worker_cache = tmp_path / "worker"
        backend = SubprocessBackend(worker_cache_dir=str(worker_cache))
        _, first = _run(
            _tasks(), cache=ResultCache(tmp_path / "a"), backend=backend
        )
        assert first.remote_cache_hits == 0
        # Fresh coordinator cache, warm worker cache: every task is a
        # *worker-side* hit whose entry bytes the coordinator absorbs.
        fresh = ResultCache(tmp_path / "b")
        backend2 = SubprocessBackend(worker_cache_dir=str(worker_cache))
        results, second = _run(_tasks(), cache=fresh, backend=backend2)
        assert len(results) == 4
        assert second.remote_cache_hits == 4
        assert len(fresh) == 4

    def test_corrupt_worker_output_is_a_structured_failure(self):
        backend = SubprocessBackend(
            worker_cmd=[
                sys.executable,
                "-c",
                "import sys; sys.stdin.buffer.read(); "
                "sys.stdout.write('{not json')",
            ]
        )
        results, metrics = _run(
            _tasks(("lonestar/bfs",)),
            backend=backend,
            policy=_fast(max_retries=0),
        )
        assert results == {}
        assert len(metrics.failures) == 2
        for failure in metrics.failures:
            assert failure.error_type == "WireProtocolError"
            assert failure.worker_fate == FATE_ALIVE


FAKE_SSH = """\
import os, sys
args = sys.argv[1:]
while args and args[0] == "-o":
    args = args[2:]
host, cmd = args[0], args[1:]
if host.startswith("dead"):
    sys.stderr.write("ssh: connect to host %s: Connection refused\\n" % host)
    sys.exit(255)
os.execv(sys.executable, [sys.executable] + cmd[1:])
"""


def _fake_ssh_backend(tmp_path, hosts, **kwargs):
    shim = tmp_path / "fake_ssh.py"
    shim.write_text(FAKE_SSH)
    return SshBackend(hosts, ssh_cmd=[sys.executable, str(shim)], **kwargs)


class TestSshBackend:
    def test_round_robin_over_live_hosts(self, tmp_path):
        backend = _fake_ssh_backend(tmp_path, ["alpha", "beta"])
        results, metrics = _run(_tasks(), jobs=2, backend=backend)
        assert len(results) == 4 and not metrics.failures
        assert set(metrics.host_launched) == {"alpha", "beta"}

    def test_dead_host_quarantined_without_burning_retries(self, tmp_path):
        backend = _fake_ssh_backend(
            tmp_path, ["alpha", "dead1", "beta"], host_failure_limit=1
        )
        results, metrics = _run(
            _tasks(), jobs=3, backend=backend, policy=_fast(max_retries=1)
        )
        assert len(results) == 4
        assert not metrics.failures
        # The unreachable host consumed zero task retries: its tasks were
        # requeued uncharged and re-routed to the surviving hosts.
        assert backend.quarantined_hosts() == {"dead1"}
        assert set(metrics.host_launched) <= {"alpha", "beta"}

    def test_all_hosts_dead_degrades_to_in_parent_serial(self, tmp_path):
        backend = _fake_ssh_backend(
            tmp_path, ["dead1", "dead2"], host_failure_limit=1
        )
        results, metrics = _run(
            _tasks(),
            jobs=2,
            backend=backend,
            policy=_fast(max_retries=2, max_pool_rebuilds=0),
        )
        # Nothing reachable: the sweep still completes, in-parent.
        assert len(results) == 4
        assert not metrics.failures


class TestRecycleBudget:
    """Satellite bugfix: task-timeout pool teardowns draw on the same
    bounded recycle budget as pool breaks (they previously recycled the
    pool without ever counting against ``max_pool_rebuilds``)."""

    def test_timeout_recycles_are_bounded(self, tmp_path):
        policy = _fast(
            max_retries=4, task_timeout_s=0.75, max_pool_rebuilds=1
        )
        with injected_faults(
            {"*": FaultRule("hang", times=2, hang_s=30.0)},
            counter_dir=tmp_path,
        ):
            results, metrics = _run(
                _tasks(("lonestar/bfs",)), jobs=2, policy=policy
            )
        assert len(results) == 2
        assert not metrics.failures
        # Two hang rounds would have torn the pool down twice; the budget
        # (1) forced degrade-to-serial instead of a second rebuild.
        assert metrics.pool_rebuilds <= policy.max_pool_rebuilds


class TestSerialBackoffHonored:
    """Satellite bugfix: a task that degrades out of the pool mid-retry
    keeps its pending backoff instead of being retried immediately."""

    def test_degraded_serial_honors_pending_backoff(
        self, tmp_path, monkeypatch
    ):
        recorded = []
        monkeypatch.setattr(parallel_mod, "_sleep", recorded.append)
        with injected_faults(
            {"rodinia/kmeans:copy": FaultRule("kill", times=1)},
            counter_dir=tmp_path,
        ):
            results, metrics = _run(
                _tasks(),
                jobs=2,
                policy=_fast(
                    max_retries=2, backoff_base_s=2.0, max_pool_rebuilds=0
                ),
            )
        assert len(results) == 4
        assert not metrics.failures
        # The pool broke, charged the in-flight tasks a ~2s backoff, and
        # degraded to serial — which must observe that backoff.
        assert any(s >= 0.5 for s in recorded)
