"""Tests for repro.sim.timeline and repro.sim.serialize."""

import json

import pytest

from repro.sim.engine import simulate
from repro.sim.hierarchy import Component
from repro.sim.serialize import result_to_dict, result_to_json, summary_from_json
from repro.sim.timeline import (
    render_stage_table,
    render_timeline,
    utilization_summary,
)


@pytest.fixture(scope="module")
def result():
    from repro.config.system import discrete_gpu_system
    from repro.sim.engine import SimOptions

    from tests.conftest import TINY_SCALE, build_offload_pipeline

    return simulate(
        build_offload_pipeline(), discrete_gpu_system(), SimOptions(scale=TINY_SCALE)
    )


class TestTimeline:
    def test_renders_all_lanes(self, result):
        text = render_timeline(result)
        for lane in ("copy", "cpu", "gpu"):
            assert f"\n{lane}" in text or text.startswith(lane)

    def test_lane_width_respected(self, result):
        text = render_timeline(result, width=40)
        for line in text.splitlines()[1:4]:
            start = line.index("|")
            end = line.index("|", start + 1)
            assert end - start - 1 == 40

    def test_busy_components_show_marks(self, result):
        text = render_timeline(result)
        gpu_line = [l for l in text.splitlines() if l.startswith("gpu")][0]
        assert "=" in gpu_line

    def test_share_percentages_present(self, result):
        text = render_timeline(result)
        assert "%" in text

    def test_rejects_tiny_width(self, result):
        with pytest.raises(ValueError):
            render_timeline(result, width=5)

    def test_stage_table_lists_stages(self, result):
        text = render_stage_table(result)
        assert "map_0" in text
        assert "h2d_data_1" in text

    def test_stage_table_truncates(self, result):
        text = render_stage_table(result, limit=2)
        assert "more stages" in text

    def test_utilization_summary_keys(self, result):
        summary = utilization_summary(result)
        assert set(summary) == {
            "copy_utilization",
            "cpu_utilization",
            "gpu_utilization",
        }
        assert all(0.0 <= v <= 1.0 for v in summary.values())


class TestSerialize:
    def test_round_trip_summary(self, result):
        text = result_to_json(result)
        payload = summary_from_json(text)
        assert payload["pipeline"] == result.pipeline_name
        assert payload["roi_s"] == pytest.approx(result.roi_s)
        assert payload["offchip_accesses"] == result.offchip_accesses()

    def test_stage_records_serialized(self, result):
        payload = result_to_dict(result)
        assert len(payload["stages"]) == len(result.stages)
        first = payload["stages"][0]
        for key in ("name", "component", "start_s", "end_s", "offchip_reads"):
            assert key in first

    def test_busy_and_utilization_per_component(self, result):
        payload = result_to_dict(result)
        for component in Component:
            assert component.value in payload["busy_s"]
            assert component.value in payload["utilization"]

    def test_log_excluded_by_default(self, result):
        payload = result_to_dict(result)
        assert "log" not in payload

    def test_log_included_on_request(self, result):
        payload = result_to_dict(result, include_log=True)
        assert len(payload["log"]["blocks"]) == result.offchip_accesses()

    def test_json_is_valid(self, result):
        parsed = json.loads(result_to_json(result))
        assert parsed["schema"] == "repro.sim_result/v1"

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            summary_from_json(json.dumps({"schema": "other/v9"}))
