"""Tests for repro.core.reuse (miss-ratio curves, footprint reports)."""

import numpy as np
import pytest

from repro.core.reuse import (
    concurrent_footprint_report,
    miss_ratio_curve,
    reuse_time_histogram,
    stage_footprints,
)
from repro.trace.stream import AccessStream
from repro.units import KB, MB

from tests.conftest import build_offload_pipeline


class TestReuseTimeHistogram:
    def test_all_cold_for_streaming(self):
        stream = AccessStream.of(list(range(100)))
        hist = reuse_time_histogram(stream)
        assert hist["cold"] == 100
        assert sum(v for k, v in hist.items() if k != "cold") == 0

    def test_immediate_reuse(self):
        stream = AccessStream.of([1, 1, 1, 1])
        hist = reuse_time_histogram(stream, bin_edges=(1, 16))
        assert hist["cold"] == 1
        assert hist["<=1"] == 3

    def test_long_reuse_lands_in_tail_bin(self):
        blocks = [500] + list(range(1, 100)) + [500]
        hist = reuse_time_histogram(AccessStream.of(blocks), bin_edges=(1, 16))
        assert hist[">16"] == 1

    def test_total_accounts_for_every_access(self):
        rng = np.random.default_rng(0)
        stream = AccessStream.of(rng.integers(0, 50, size=500).tolist())
        hist = reuse_time_histogram(stream)
        assert sum(hist.values()) == 500

    def test_empty_stream(self):
        hist = reuse_time_histogram(AccessStream.empty())
        assert sum(hist.values()) == 0

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            reuse_time_histogram(AccessStream.of([1]), bin_edges=(16, 1))


class TestMissRatioCurve:
    def test_monotone_nonincreasing_in_capacity(self):
        rng = np.random.default_rng(1)
        stream = AccessStream.of(rng.integers(0, 2000, size=20000).tolist())
        points = miss_ratio_curve(stream, [16 * KB, 64 * KB, 256 * KB, 1 * MB])
        ratios = [p.miss_ratio for p in points]
        assert ratios == sorted(ratios, reverse=True)

    def test_working_set_knee(self):
        # 512 blocks (64kB) looped: fits in 128kB, thrashes in 16kB.
        blocks = list(range(512)) * 8
        points = miss_ratio_curve(AccessStream.of(blocks), [16 * KB, 128 * KB])
        assert points[0].miss_ratio > 0.9
        assert points[1].miss_ratio < 0.2

    def test_capacity_rounded_to_geometry(self):
        points = miss_ratio_curve(AccessStream.of([1, 2, 3]), [1000])
        assert points[0].capacity_bytes % (128 * 16) == 0

    def test_hit_plus_miss_is_one(self):
        points = miss_ratio_curve(AccessStream.of([1, 1, 2]), [64 * KB])
        assert points[0].hit_ratio + points[0].miss_ratio == pytest.approx(1.0)


class TestStageFootprints:
    def test_footprints_cover_all_stages(self):
        pipeline = build_offload_pipeline(iterations=2)
        footprints = stage_footprints(pipeline)
        assert [f.stage for f in footprints] == [
            s.name for s in pipeline.topological_order()
        ]

    def test_kernel_footprint_matches_buffers(self):
        pipeline = build_offload_pipeline(data_mb=8, result_mb=2, iterations=1)
        footprints = {f.stage: f for f in stage_footprints(pipeline)}
        kernel = footprints["map_0"]
        # Kernel streams data (8MB) and writes results (2MB).
        assert kernel.unique_bytes == pytest.approx(10 * MB, rel=0.01)

    def test_reuse_factor_one_for_streaming(self):
        pipeline = build_offload_pipeline(iterations=1)
        footprints = {f.stage: f for f in stage_footprints(pipeline)}
        assert footprints["map_0"].reuse_factor == pytest.approx(1.0, rel=0.01)


class TestConcurrentFootprintReport:
    def test_overcommitted_stages_flagged(self):
        pipeline = build_offload_pipeline(data_mb=8, iterations=1)
        report = concurrent_footprint_report(pipeline, cache_bytes=1 * MB)
        overcommitted = {f.stage for f in report.overcommitted_stages}
        assert "map_0" in overcommitted

    def test_no_overcommit_with_huge_cache(self):
        pipeline = build_offload_pipeline(data_mb=8, iterations=1)
        report = concurrent_footprint_report(pipeline, cache_bytes=64 * MB)
        assert report.overcommitted_stages == ()

    def test_recommended_chunks_fit_half_cache(self):
        pipeline = build_offload_pipeline(data_mb=8, result_mb=2, iterations=1)
        report = concurrent_footprint_report(pipeline, cache_bytes=2 * MB)
        chunks = report.recommended_chunks("map_0")
        footprint = next(
            f for f in report.footprints if f.stage == "map_0"
        ).unique_bytes
        assert footprint / chunks <= 1 * MB

    def test_max_stage_bytes(self):
        pipeline = build_offload_pipeline(data_mb=8, result_mb=2, iterations=1)
        report = concurrent_footprint_report(pipeline, cache_bytes=1 * MB)
        assert report.max_stage_bytes == max(
            f.unique_bytes for f in report.footprints
        )
