"""Tests for repro.pipeline.dynpar (dynamic parallelism)."""

import pytest
from dataclasses import replace

from repro.config.system import heterogeneous_processor
from repro.pipeline.dynpar import (
    count_device_launched,
    dynamic_parallelism,
)
from repro.pipeline.stage import Stage, StageKind
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.units import MB
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE


@pytest.fixture(scope="module")
def graph_limited():
    return remove_copies(get("lonestar/bfs").pipeline())


class TestTransform:
    def test_control_stages_removed(self, graph_limited):
        transformed = dynamic_parallelism(graph_limited)
        names = {s.name for s in transformed.stages}
        assert not any(n.startswith("check_") for n in names)
        assert not any(n.startswith("d2h_flag") for n in names)

    def test_kernels_become_device_launched(self, graph_limited):
        transformed = dynamic_parallelism(graph_limited)
        kernels = transformed.stages_of_kind(StageKind.GPU_KERNEL)
        # Every kernel except the loop entry launches from the device.
        assert count_device_launched(transformed) == len(kernels) - 1

    def test_kernel_chain_rewired(self, graph_limited):
        transformed = dynamic_parallelism(graph_limited)
        second = transformed.stage("traverse_1")
        assert second.depends_on == ("traverse_0",)

    def test_flag_buffer_kept_for_device_side_loop_decision(self, graph_limited):
        # The kernels still write the convergence flag (the GPU now reads
        # it for its own loop decision), so the buffer must survive.
        transformed = dynamic_parallelism(graph_limited)
        assert "flag" in transformed.buffers

    def test_unreferenced_buffers_dropped(self):
        # Build a loop whose flag is only touched by the control stages.
        from repro.pipeline.builder import PipelineBuilder
        from repro.pipeline.stage import BufferAccess

        b = PipelineBuilder("t")
        b.buffer("data", 8 * MB)
        b.buffer("flag", 4096)
        b.gpu_kernel("k0", flops=1e7, reads=[BufferAccess("data")])
        b.cpu_stage("check_0", flops=10.0,
                    reads=[BufferAccess("flag")])
        b.gpu_kernel("k1", flops=1e7, reads=[BufferAccess("data")])
        pipeline = b.build().with_stages(b.build().stages, limited_copy=True)
        transformed = dynamic_parallelism(pipeline)
        assert "flag" not in transformed.buffers

    def test_pipeline_without_control_stages_unchanged(self):
        limited = remove_copies(get("parboil/sgemm").pipeline())
        assert dynamic_parallelism(limited) is limited

    def test_still_validates(self, graph_limited):
        transformed = dynamic_parallelism(graph_limited)
        assert transformed.topological_order()

    def test_device_launch_flag_only_on_gpu(self):
        with pytest.raises(ValueError, match="device-launched"):
            Stage(name="c", kind=StageKind.CPU, device_launched=True)


class TestEngineBehaviour:
    def test_no_cpu_launch_slivers_for_device_kernels(self, graph_limited):
        transformed = dynamic_parallelism(graph_limited)
        options = SimOptions(scale=TINY_SCALE)
        system = heterogeneous_processor()
        host = simulate(graph_limited, system, options)
        device = simulate(transformed, system, options)
        assert len(device.launch_intervals) < len(host.launch_intervals)

    def test_cpu_no_longer_involved_in_loop(self, graph_limited):
        transformed = dynamic_parallelism(graph_limited)
        options = SimOptions(scale=TINY_SCALE)
        system = heterogeneous_processor()
        device = simulate(transformed, system, options)
        host = simulate(graph_limited, system, options)
        assert device.busy_time(Component.CPU) < host.busy_time(Component.CPU)

    def test_expensive_device_launches_outweigh_benefits(self, graph_limited):
        # The Wang & Yalamanchili finding: crank the device-launch latency
        # and dynamic parallelism loses to the host loop.
        transformed = dynamic_parallelism(graph_limited)
        options = SimOptions(scale=TINY_SCALE)
        base = heterogeneous_processor()
        cheap = replace(base, device_launch_latency_s=1e-7)
        expensive = replace(base, device_launch_latency_s=1e-3)
        host = simulate(graph_limited, base, options)
        fast = simulate(transformed, cheap, options)
        slow = simulate(transformed, expensive, options)
        assert fast.roi_s < host.roi_s
        assert slow.roi_s > host.roi_s

    def test_device_launch_latency_scales(self):
        base = heterogeneous_processor()
        scaled = base.scaled(1 / 4)
        assert scaled.device_launch_latency_s == pytest.approx(
            base.device_launch_latency_s / 4
        )
