"""Tests for repro.pipeline.transforms."""

import pytest

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import PipelineError
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess, StageKind
from repro.pipeline.transforms import (
    chunk_stages,
    fission_async_streams,
    migrate_compute,
    parallel_producer_consumer,
    remove_copies,
)

from tests.conftest import build_offload_pipeline


def simple_copy_pipeline():
    b = PipelineBuilder("t", metadata={"outputs": ("out",)})
    b.buffer("in", 8192)
    b.buffer("out", 8192)
    b.copy_h2d("in", name="h2d")
    b.mirror("out")
    b.gpu_kernel("k", flops=10.0, reads=["in_dev"], writes=["out_dev"])
    b.copy_d2h("out_dev", "out", name="d2h")
    b.cpu_stage("post", flops=1.0, reads=["out"])
    return b.build()


class TestRemoveCopies:
    def test_removes_mirror_copies_and_buffers(self):
        limited = remove_copies(simple_copy_pipeline())
        assert limited.limited_copy
        assert limited.copy_stages == ()
        assert "in_dev" not in limited.buffers
        assert "out_dev" not in limited.buffers

    def test_rewires_accesses_to_base_buffers(self):
        limited = remove_copies(simple_copy_pipeline())
        kernel = limited.stage("k")
        assert kernel.reads[0].buffer == "in"
        assert kernel.writes[0].buffer == "out"

    def test_dependencies_bridged_across_removed_stages(self):
        limited = remove_copies(simple_copy_pipeline())
        # h2d was k's only dep and had none itself.
        assert limited.stage("k").depends_on == ()
        # d2h sat between k and post.
        assert limited.stage("post").depends_on == ("k",)

    def test_footprint_shrinks(self):
        original = simple_copy_pipeline()
        limited = remove_copies(original)
        assert limited.footprint_bytes < original.footprint_bytes

    def test_idempotent(self):
        limited = remove_copies(simple_copy_pipeline())
        assert remove_copies(limited) is limited

    def test_residual_copies_pin_their_mirrors(self):
        b = PipelineBuilder("t", metadata={"outputs": ("data",)})
        b.buffer("data", 8192)
        b.copy_h2d("data", name="h2d", mirror=False)  # not removable
        b.gpu_kernel("k", flops=1.0, reads=["data_dev"])
        b.copy_d2h("data_dev", "data", name="d2h", mirror=False)
        limited = remove_copies(b.build())
        # Residual copies survive and keep using the device mirror.
        assert {s.name for s in limited.copy_stages} == {"h2d", "d2h"}
        assert "data_dev" in limited.buffers
        assert limited.stage("k").reads[0].buffer == "data_dev"

    def test_mixed_mirror_and_residual(self):
        b = PipelineBuilder("t")
        b.buffer("a", 8192)
        b.buffer("b", 8192)
        b.copy_h2d("a", name="h2d_a")               # removable
        b.copy_h2d("b", name="h2d_b", mirror=False)  # residual
        b.gpu_kernel("k", flops=1.0, reads=["a_dev", "b_dev"])
        limited = remove_copies(b.build())
        kernel = limited.stage("k")
        assert kernel.reads[0].buffer == "a"
        assert kernel.reads[1].buffer == "b_dev"


class TestChunkStages:
    def test_splits_chunkable_stages(self):
        pipeline = build_offload_pipeline(iterations=1)
        chunked = chunk_stages(pipeline, 4)
        maps = [s for s in chunked.stages if s.logical_name == "map_0"]
        assert len(maps) == 4
        assert sum(s.flops for s in maps) == pytest.approx(
            pipeline.stage("map_0").flops
        )

    def test_chunk_regions_partition_buffer(self):
        pipeline = build_offload_pipeline(iterations=1)
        chunked = chunk_stages(pipeline, 4)
        maps = [s for s in chunked.stages if s.logical_name == "map_0"]
        regions = sorted((s.reads[0].region.start, s.reads[0].region.end) for s in maps)
        assert regions[0][0] == 0.0
        assert regions[-1][1] == 1.0

    def test_chunk_dependencies_form_lanes(self):
        pipeline = build_offload_pipeline(iterations=1)
        chunked = chunk_stages(pipeline, 3)
        # map chunk i depends on h2d chunk i only.
        for i in range(3):
            map_stage = chunked.stage(f"map_0_chunk{i}")
            assert map_stage.depends_on == (f"h2d_data_1_chunk{i}",)

    def test_non_chunkable_stage_waits_for_all_chunks(self):
        b = PipelineBuilder("t")
        b.buffer("x", 8192)
        b.gpu_kernel("k", flops=1.0, writes=["x"], chunkable=True)
        b.cpu_stage("join", flops=1.0, reads=["x"])
        chunked = chunk_stages(b.build(), 3)
        join = chunked.stage("join")
        assert set(join.depends_on) == {"k_chunk0", "k_chunk1", "k_chunk2"}

    def test_no_chunkable_stages_returns_same_pipeline(self):
        b = PipelineBuilder("t")
        b.cpu_stage("s", flops=1.0)
        pipeline = b.build()
        assert chunk_stages(pipeline, 4) is pipeline

    def test_one_chunk_is_identity(self):
        pipeline = build_offload_pipeline()
        assert chunk_stages(pipeline, 1) is pipeline

    def test_rejects_bad_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_stages(build_offload_pipeline(), 0)


class TestTransformGuards:
    def test_fission_rejects_limited_copy(self):
        limited = remove_copies(build_offload_pipeline())
        with pytest.raises(PipelineError, match="fission"):
            fission_async_streams(limited, 4)

    def test_parallel_pc_requires_limited_copy(self):
        with pytest.raises(PipelineError, match="remove_copies"):
            parallel_producer_consumer(build_offload_pipeline(), 4)

    def test_parallel_pc_on_limited(self):
        limited = remove_copies(build_offload_pipeline())
        chunked = parallel_producer_consumer(limited, 4)
        assert len(chunked.stages) > len(limited.stages)
        assert chunked.limited_copy


class TestMigrateCompute:
    def test_migratable_cpu_stage_becomes_gpu_kernel(self):
        pipeline = build_offload_pipeline(iterations=1)
        migrated = migrate_compute(pipeline)
        stage = migrated.stage("reduce_0")
        assert stage.kind is StageKind.GPU_KERNEL
        assert not stage.migratable

    def test_efficiency_haircut_applied(self):
        pipeline = build_offload_pipeline(iterations=1)
        original = pipeline.stage("reduce_0")
        migrated = migrate_compute(pipeline, efficiency_factor=0.5)
        assert migrated.stage("reduce_0").compute_efficiency == pytest.approx(
            original.compute_efficiency * 0.5
        )

    def test_prunes_feeding_d2h_copy_and_reads_gpu_data(self):
        b = PipelineBuilder("t", metadata={"outputs": ()})
        b.buffer("data", 8192)
        b.buffer("partial", 8192)
        b.copy_h2d("data")
        b.mirror("partial")
        b.gpu_kernel("k", flops=1.0, reads=["data_dev"], writes=["partial_dev"])
        b.copy_d2h("partial_dev", "partial", name="d2h")
        b.cpu_stage("reduce", flops=1.0, reads=["partial"], migratable=True)
        migrated = migrate_compute(b.build())
        names = {s.name for s in migrated.stages}
        assert "d2h" not in names
        reduce_stage = migrated.stage("reduce")
        assert reduce_stage.reads[0].buffer == "partial_dev"
        assert reduce_stage.depends_on == ("k",)

    def test_output_buffers_keep_their_copies(self):
        b = PipelineBuilder("t", metadata={"outputs": ("partial",)})
        b.buffer("data", 8192)
        b.buffer("partial", 8192)
        b.copy_h2d("data")
        b.mirror("partial")
        b.gpu_kernel("k", flops=1.0, reads=["data_dev"], writes=["partial_dev"])
        b.copy_d2h("partial_dev", "partial", name="d2h")
        b.cpu_stage("reduce", flops=1.0, reads=["partial"], migratable=True)
        migrated = migrate_compute(b.build())
        assert "d2h" in {s.name for s in migrated.stages}

    def test_no_migratable_stages_is_identity(self):
        b = PipelineBuilder("t")
        b.cpu_stage("s", flops=1.0)
        pipeline = b.build()
        assert migrate_compute(pipeline) is pipeline
