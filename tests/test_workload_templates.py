"""Tests for the workload pipeline templates."""

import pytest

from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import StageKind
from repro.pipeline.transforms import remove_copies
from repro.units import MB
from repro.workloads.templates import (
    dense_app,
    graph_app,
    offload_loop_app,
    stencil_app,
)


class TestGraphApp:
    def make(self, **overrides):
        params = dict(
            graph_bytes=8 * MB,
            props_bytes=2 * MB,
            iterations=3,
            gpu_flops_per_iter=1e6,
            uses_worklist=False,
        )
        params.update(overrides)
        return graph_app("t/g", **params)

    def test_structure(self):
        pipeline = self.make()
        kernels = pipeline.stages_of_kind(StageKind.GPU_KERNEL)
        assert len(kernels) == 3
        # Per iteration: one flag d2h + one CPU check; plus 2 h2d + final d2h.
        assert len(pipeline.copy_stages) == 2 + 3 + 1
        assert len(pipeline.stages_of_kind(StageKind.CPU)) == 3

    def test_worklist_is_gpu_temporary(self):
        pipeline = self.make(uses_worklist=True, worklist_bytes=1 * MB)
        assert pipeline.buffers["worklist"].temporary

    def test_kernels_use_graph_pattern(self):
        pipeline = self.make()
        kernel = pipeline.stages_of_kind(StageKind.GPU_KERNEL)[0]
        assert kernel.reads[0].pattern is AccessPattern.GRAPH

    def test_outer_loop_structure(self):
        # Kernel -> flag copy -> CPU check -> next kernel (Section V-A).
        pipeline = self.make()
        check = pipeline.stage("check_0")
        assert check.depends_on == ("d2h_flag_0",)
        second = pipeline.stage("traverse_1")
        assert second.depends_on == ("check_0",)

    def test_pagefault_metadata(self):
        pipeline = self.make(pagefault_heavy=True)
        assert pipeline.metadata["pagefault_heavy"]


class TestStencilApp:
    def test_pingpong_buffers(self):
        pipeline = stencil_app(
            "t/s", grid_bytes=4 * MB, iterations=4, flops_per_sweep=1e6
        )
        sweeps = pipeline.stages_of_kind(StageKind.GPU_KERNEL)
        assert len(sweeps) == 4
        # Alternating read/write targets.
        first, second = sweeps[0], sweeps[1]
        assert first.reads[0].buffer != second.reads[0].buffer
        assert first.writes[0].buffer == second.reads[0].buffer

    def test_stencil_pattern_used(self):
        pipeline = stencil_app(
            "t/s", grid_bytes=4 * MB, iterations=1, flops_per_sweep=1e6
        )
        sweep = pipeline.stages_of_kind(StageKind.GPU_KERNEL)[0]
        assert sweep.reads[0].pattern is AccessPattern.STENCIL

    def test_temporaries_optional(self):
        with_temp = stencil_app(
            "t/s", grid_bytes=4 * MB, iterations=1, flops_per_sweep=1e6,
            temp_bytes=2 * MB,
        )
        assert "temps" in with_temp.buffers
        assert with_temp.buffers["temps"].temporary

    def test_single_iteration_chunkable(self):
        pipeline = stencil_app(
            "t/s", grid_bytes=4 * MB, iterations=1, flops_per_sweep=1e6
        )
        sweep = pipeline.stages_of_kind(StageKind.GPU_KERNEL)[0]
        assert sweep.chunkable

    def test_multi_iteration_not_chunkable(self):
        pipeline = stencil_app(
            "t/s", grid_bytes=4 * MB, iterations=3, flops_per_sweep=1e6
        )
        for sweep in pipeline.stages_of_kind(StageKind.GPU_KERNEL):
            assert not sweep.chunkable


class TestDenseApp:
    def test_structure(self):
        pipeline = dense_app(
            "t/d",
            input_bytes={"a": 4 * MB, "b": 4 * MB},
            output_bytes={"c": 4 * MB},
            kernel_flops=[1e9],
        )
        assert len(pipeline.copy_stages) == 3  # 2 h2d + 1 d2h
        assert len(pipeline.stages_of_kind(StageKind.GPU_KERNEL)) == 1

    def test_multi_kernel(self):
        pipeline = dense_app(
            "t/d",
            input_bytes={"a": 4 * MB},
            output_bytes={"c": 4 * MB},
            kernel_flops=[1e9, 2e9, 3e9],
        )
        assert pipeline.total_flops == pytest.approx(6e9)

    def test_cpu_post_stage_migratable(self):
        pipeline = dense_app(
            "t/d",
            input_bytes={"a": 4 * MB},
            output_bytes={"c": 4 * MB},
            kernel_flops=[1e9],
            cpu_post_flops=1e6,
        )
        post = pipeline.stage("post")
        assert post.kind is StageKind.CPU
        assert post.migratable


class TestOffloadLoopApp:
    def make(self, **overrides):
        params = dict(
            data_bytes=8 * MB,
            state_bytes=64 * 1024,
            result_bytes=2 * MB,
            iterations=3,
            gpu_flops_per_iter=1e7,
            cpu_flops_per_iter=1e5,
        )
        params.update(overrides)
        return offload_loop_app("t/o", **params)

    def test_state_copied_back_each_iteration(self):
        pipeline = self.make()
        # Initial state h2d + one per iteration except the last.
        state_copies = [
            s for s in pipeline.copy_stages if "state" in (s.src or "")
        ]
        assert len(state_copies) == 1 + 2

    def test_broadcast_state_not_chunked(self):
        from repro.pipeline.transforms import chunk_stages

        chunked = chunk_stages(self.make(), 4)
        kernels = [s for s in chunked.stages if s.logical_name == "map_0"]
        for kernel in kernels:
            state_reads = [
                a for a in kernel.reads if a.buffer == "state_dev"
            ]
            assert state_reads[0].region.span == pytest.approx(1.0)

    def test_cpu_result_fraction(self):
        pipeline = self.make(cpu_result_fraction=0.25)
        update = pipeline.stage("update_0")
        result_reads = [a for a in update.reads if a.buffer == "result"]
        assert result_reads[0].fraction == 0.25

    def test_extra_d2h_creates_partials(self):
        pipeline = self.make(extra_d2h_bytes=1 * MB)
        assert "partials" in pipeline.buffers
        assert any("partials" in (s.src or "") for s in pipeline.copy_stages)

    def test_limited_copy_drops_all_copies(self):
        limited = remove_copies(self.make(extra_d2h_bytes=1 * MB))
        assert limited.copy_stages == ()
