"""Tests for repro.workloads.scaling."""

import pytest

from repro.trace.generator import TraceGenerator
from repro.workloads.scaling import (
    ScalingReport,
    estimate_accesses,
    recommended_scale,
    scaling_report,
)

from tests.conftest import TINY_SCALE, build_offload_pipeline


class TestEstimateAccesses:
    def test_matches_generated_trace(self):
        pipeline = build_offload_pipeline(iterations=2).scaled(TINY_SCALE)
        generator = TraceGenerator(pipeline)
        actual = sum(
            len(generator.stage_trace(stage).stream)
            for stage in pipeline.stages
        )
        predicted = estimate_accesses(build_offload_pipeline(iterations=2),
                                      scale=TINY_SCALE)
        assert predicted == pytest.approx(actual, rel=0.05)

    def test_scales_linearly(self):
        pipeline = build_offload_pipeline()
        full = estimate_accesses(pipeline, 1.0)
        half = estimate_accesses(pipeline, 0.5)
        assert half == pytest.approx(full / 2, rel=0.02)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            estimate_accesses(build_offload_pipeline(), 0.0)


class TestRecommendedScale:
    def test_fits_budget(self):
        pipeline = build_offload_pipeline()
        scale = recommended_scale(pipeline, max_accesses=50_000)
        assert estimate_accesses(pipeline, scale) <= 50_000

    def test_large_budget_keeps_full_scale(self):
        pipeline = build_offload_pipeline()
        assert recommended_scale(pipeline, max_accesses=10**12) == 1.0

    def test_respects_min_scale(self):
        pipeline = build_offload_pipeline()
        scale = recommended_scale(pipeline, max_accesses=1, min_scale=1 / 64)
        assert scale == 1 / 64

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            recommended_scale(build_offload_pipeline(), max_accesses=0)


class TestScalingReport:
    def test_invariance_between_scales(self):
        pipeline = build_offload_pipeline(iterations=2)
        report = scaling_report(pipeline, 1 / 64, 1 / 128)
        assert report.runtime_invariant, report
        assert report.access_invariant, report
        assert report.gpu_utilization_delta < 0.1

    def test_rejects_inverted_scales(self):
        with pytest.raises(ValueError):
            scaling_report(build_offload_pipeline(), 1 / 128, 1 / 64)
