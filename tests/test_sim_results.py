"""Tests for repro.sim.results (intervals, activity breakdown)."""

import pytest

from repro.sim.hierarchy import Component
from repro.sim.results import (
    Interval,
    activity_breakdown,
    merge_intervals,
    total_time,
)


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.0).length == 2.0

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_zero_length_allowed(self):
        assert Interval(1.0, 1.0).length == 0.0


class TestMergeIntervals:
    def test_disjoint_stay_separate(self):
        merged = merge_intervals([Interval(0, 1), Interval(2, 3)])
        assert len(merged) == 2

    def test_overlapping_coalesce(self):
        merged = merge_intervals([Interval(0, 2), Interval(1, 3)])
        assert merged == [Interval(0, 3)]

    def test_adjacent_coalesce(self):
        merged = merge_intervals([Interval(0, 1), Interval(1, 2)])
        assert merged == [Interval(0, 2)]

    def test_contained_absorbed(self):
        merged = merge_intervals([Interval(0, 10), Interval(2, 3)])
        assert merged == [Interval(0, 10)]

    def test_unsorted_input(self):
        merged = merge_intervals([Interval(5, 6), Interval(0, 1)])
        assert merged == [Interval(0, 1), Interval(5, 6)]

    def test_total_time_deduplicates(self):
        assert total_time([Interval(0, 2), Interval(1, 3)]) == pytest.approx(3.0)


class TestActivityBreakdown:
    def test_exclusive_segments(self):
        busy = {
            Component.COPY: [Interval(0.0, 1.0)],
            Component.GPU: [Interval(1.0, 3.0)],
            Component.CPU: [],
        }
        activity = activity_breakdown(busy, roi_s=4.0)
        assert activity[frozenset({Component.COPY})] == pytest.approx(1.0)
        assert activity[frozenset({Component.GPU})] == pytest.approx(2.0)
        assert activity[frozenset()] == pytest.approx(1.0)

    def test_overlap_segment(self):
        busy = {
            Component.CPU: [Interval(0.0, 2.0)],
            Component.GPU: [Interval(1.0, 3.0)],
        }
        activity = activity_breakdown(busy, roi_s=3.0)
        assert activity[frozenset({Component.CPU, Component.GPU})] == pytest.approx(1.0)
        assert activity[frozenset({Component.CPU})] == pytest.approx(1.0)
        assert activity[frozenset({Component.GPU})] == pytest.approx(1.0)

    def test_segments_sum_to_roi(self):
        busy = {
            Component.CPU: [Interval(0.0, 0.5), Interval(2.0, 2.25)],
            Component.GPU: [Interval(0.25, 1.5)],
            Component.COPY: [Interval(1.0, 2.5)],
        }
        activity = activity_breakdown(busy, roi_s=3.0)
        assert sum(activity.values()) == pytest.approx(3.0)

    def test_empty_busy_is_all_idle(self):
        activity = activity_breakdown({}, roi_s=2.0)
        assert activity == {frozenset(): 2.0}

    def test_triple_overlap(self):
        busy = {comp: [Interval(0.0, 1.0)] for comp in Component}
        activity = activity_breakdown(busy, roi_s=1.0)
        assert activity == {frozenset(Component): pytest.approx(1.0)}
