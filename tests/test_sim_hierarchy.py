"""Tests for repro.sim.hierarchy (domains, coherence, off-chip log)."""

import numpy as np
import pytest

from repro.config.components import CacheConfig
from repro.sim.hierarchy import CacheSystem, Component, Domain, OffChipLog
from repro.trace.stream import AccessStream


def small_config(lines=8, assoc=2):
    return CacheConfig(lines * 128, line_bytes=128, associativity=assoc)


def reads(blocks):
    arr = np.asarray(blocks, dtype=np.int64)
    return AccessStream(arr, np.zeros(len(arr), dtype=bool))


def writes(blocks):
    arr = np.asarray(blocks, dtype=np.int64)
    return AccessStream(arr, np.ones(len(arr), dtype=bool))


def make_system(coherent: bool, l2_lines=64) -> CacheSystem:
    return CacheSystem(
        cpu_l1=small_config(4),
        cpu_l2=small_config(l2_lines, assoc=4),
        gpu_l1=small_config(4),
        gpu_l2=small_config(l2_lines, assoc=4),
        coherent=coherent,
    )


class TestOffChipLog:
    def test_append_and_arrays(self):
        log = OffChipLog()
        log.append(np.array([1, 2]), np.array([False, True]), 0, Component.CPU)
        log.append(np.array([3]), np.array([False]), 1, Component.GPU)
        blocks, is_write, stage, comp = log.arrays()
        assert list(blocks) == [1, 2, 3]
        assert list(is_write) == [False, True, False]
        assert list(stage) == [0, 0, 1]
        assert len(log) == 3

    def test_counts_by_component(self):
        log = OffChipLog()
        log.append(np.array([1]), np.array([False]), 0, Component.COPY)
        log.append(np.array([2, 3]), np.array([False, False]), 0, Component.GPU)
        counts = log.counts_by_component()
        assert counts[Component.COPY] == 1
        assert counts[Component.GPU] == 2
        assert counts[Component.CPU] == 0

    def test_empty_append_ignored(self):
        log = OffChipLog()
        log.append(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 0, Component.CPU)
        assert len(log) == 0

    def test_empty_arrays(self):
        blocks, is_write, stage, comp = OffChipLog().arrays()
        assert len(blocks) == 0


class TestDomain:
    def test_l1_filters_before_l2(self):
        domain = Domain("cpu", small_config(4), small_config(64, assoc=4))
        log = OffChipLog()
        result = domain.process(reads([0, 0, 0]), log, 0, Component.CPU)
        assert result.requests == 3
        assert result.offchip_reads == 1
        assert domain.l1.stats.hits == 2
        assert domain.l2.stats.accesses == 1  # only the L1 miss reached L2

    def test_offchip_accesses_logged(self):
        domain = Domain("cpu", small_config(4), small_config(8, assoc=4))
        log = OffChipLog()
        domain.process(reads(range(32)), log, stage_ordinal=5, component=Component.CPU)
        blocks, is_write, stage, comp = log.arrays()
        assert len(blocks) >= 32  # all compulsory misses reach memory
        assert (stage == 5).all()

    def test_invalidate_clears_both_levels(self):
        domain = Domain("cpu", small_config(8), small_config(64, assoc=4))
        log = OffChipLog()
        domain.process(writes([1, 2]), log, 0, Component.CPU)
        domain.invalidate(np.array([1, 2]))
        assert 1 not in domain.l1.resident_blocks
        assert 1 not in domain.l2.resident_blocks

    def test_flush_returns_dirty_lines(self):
        domain = Domain("cpu", small_config(8), small_config(64, assoc=4))
        log = OffChipLog()
        domain.process(writes([1, 2]), log, 0, Component.CPU)
        written = domain.flush(np.array([1, 2, 3]))
        assert set(written) == {1, 2}


class TestCoherence:
    def test_peer_hit_becomes_onchip_transfer(self):
        system = make_system(coherent=True)
        # GPU writes blocks 0..3: they stay dirty in the GPU hierarchy.
        system.process_compute(writes([0, 1, 2, 3]), 0, Component.GPU)
        # Drain GPU L1 into L2 so the blocks sit in the probe-able L2.
        for block in list(system.gpu.l1.resident_blocks):
            system.gpu.l1.extract(block)
            system.gpu.l2.access_stream(reads([block]))
        before = len(system.log)
        result = system.process_compute(reads([0, 1, 2, 3]), 1, Component.CPU)
        assert result.onchip_transfers > 0
        # Transfers do not hit memory.
        assert len(system.log) - before == 4 - result.onchip_transfers

    def test_transfer_migrates_line_out_of_peer(self):
        system = make_system(coherent=True)
        system.gpu.l2.access_stream(writes([7]))
        system.process_compute(reads([7]), 0, Component.CPU)
        assert 7 not in system.gpu.l2.resident_blocks
        assert 7 in system.cpu.l2.resident_blocks

    def test_discrete_domains_do_not_probe(self):
        system = make_system(coherent=False)
        system.gpu.l2.access_stream(writes([7]))
        result = system.process_compute(reads([7]), 0, Component.CPU)
        assert result.onchip_transfers == 0
        assert result.offchip_reads == 1

    def test_writebacks_never_probe_peer(self):
        system = make_system(coherent=True, l2_lines=4)
        # Peer holds everything; our writebacks still go to memory.
        system.gpu.l2.access_stream(reads(range(100)))
        system.process_compute(writes(range(100)), 0, Component.CPU)
        comp_counts = system.log.counts_by_component()
        assert comp_counts[Component.CPU] > 0


class TestCopyPath:
    def test_copy_logs_reads_and_writes(self):
        system = make_system(coherent=False)
        src = np.arange(10, dtype=np.int64)
        dst = np.arange(100, 110, dtype=np.int64)
        result = system.process_copy(src, dst, 3)
        assert result.offchip_reads == 10
        assert result.offchip_writes == 10
        counts = system.log.counts_by_component()
        assert counts[Component.COPY] == 20

    def test_copy_flushes_dirty_source_lines(self):
        system = make_system(coherent=False)
        system.process_compute(writes([5]), 0, Component.CPU)
        result = system.process_copy(
            np.array([5], dtype=np.int64), np.array([200], dtype=np.int64), 1
        )
        # The flushed dirty line is an extra off-chip write attributed to
        # the owning core.
        counts = system.log.counts_by_component()
        assert counts[Component.CPU] >= 1
        assert 5 not in system.cpu.l1.resident_blocks

    def test_copy_invalidates_destination_in_caches(self):
        system = make_system(coherent=False)
        system.process_compute(reads([300]), 0, Component.GPU)
        system.process_copy(
            np.array([1], dtype=np.int64), np.array([300], dtype=np.int64), 1
        )
        assert 300 not in system.gpu.l1.resident_blocks
        assert 300 not in system.gpu.l2.resident_blocks

    def test_domain_for_copy_raises(self):
        system = make_system(coherent=False)
        with pytest.raises(ValueError):
            system.domain_for(Component.COPY)
