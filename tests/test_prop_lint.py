"""Property-based tests: the paper's transforms never introduce new
error-level lint findings on randomly generated valid pipelines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, lint_pipeline
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.transforms import fission_async_streams, remove_copies
from repro.units import MB


@st.composite
def copy_pipelines(draw):
    """A discrete-GPU pipeline: host inputs copied in, a kernel chain over
    device temporaries (some chunkable), and the result copied back out."""
    n_inputs = draw(st.integers(1, 3))
    n_kernels = draw(st.integers(1, 5))
    b = PipelineBuilder("prop/lint", metadata={"outputs": ("out",)})
    available = []
    for i in range(n_inputs):
        name = f"in{i}"
        b.buffer(name, draw(st.sampled_from([1 * MB, 2 * MB, 4 * MB])))
        b.copy_h2d(name)
        available.append(f"{name}_dev")
    b.buffer("out", 1 * MB)
    b.mirror("out")
    for k in range(n_kernels):
        is_last = k == n_kernels - 1
        target = "out_dev" if is_last else f"tmp{k}"
        if not is_last:
            b.buffer(target, 1 * MB, temporary=True)
        reads = draw(
            st.lists(
                st.sampled_from(available),
                min_size=1,
                max_size=min(3, len(available)),
                unique=True,
            )
        )
        b.gpu_kernel(
            f"k{k}",
            flops=float(draw(st.integers(1, 1000)) * 1000),
            reads=reads,
            writes=[target],
            chunkable=draw(st.booleans()),
        )
        available.append(target)
    b.copy_d2h("out_dev", "out", name="d2h_out")
    return b.build()


def error_keys(pipeline):
    """(rule, stage, buffer) triples for every error-level finding."""
    report = lint_pipeline(pipeline)
    return {
        (d.rule, d.stage, d.buffer)
        for d in report.at_least(Severity.ERROR)
    }


@given(pipeline=copy_pipelines())
@settings(max_examples=60, deadline=None)
def test_generated_pipelines_are_error_clean(pipeline):
    assert error_keys(pipeline) == set()


@given(pipeline=copy_pipelines())
@settings(max_examples=60, deadline=None)
def test_remove_copies_introduces_no_errors(pipeline):
    before = error_keys(pipeline)
    after = error_keys(remove_copies(pipeline))
    assert after <= before


@given(pipeline=copy_pipelines(), streams=st.integers(2, 6))
@settings(max_examples=60, deadline=None)
def test_fission_introduces_no_errors(pipeline, streams):
    before = error_keys(pipeline)
    after = error_keys(fission_async_streams(pipeline, streams))
    assert after <= before


@given(pipeline=copy_pipelines(), streams=st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_composed_transforms_introduce_no_errors(pipeline, streams):
    """The two transforms compose: limited-copy port of a fissioned
    pipeline is still error-clean."""
    before = error_keys(pipeline)
    after = error_keys(remove_copies(fission_async_streams(pipeline, streams)))
    assert after <= before
