"""Fault-tolerant sweep execution: every degradation path, exercised.

The supervisor in :mod:`repro.experiments.parallel` promises that a
failing, hanging, or crashing task never takes the sweep down with it:
completed results are returned and cached, failures are retried and then
reported as structured :class:`TaskFailure` records.  These tests drive
each path with the deterministic injector of :mod:`repro.testing.faults`
instead of trusting the promise.
"""

from __future__ import annotations

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments.parallel import (
    COPY,
    FATE_ALIVE,
    FATE_CANCELLED,
    FATE_CRASHED,
    FATE_IN_PARENT,
    FATE_TIMED_OUT,
    LIMITED,
    FaultPolicy,
    SweepError,
    SweepMetrics,
    SweepTask,
    TaskFailure,
    run_tasks,
)
from repro.experiments.runner import SweepRunner
from repro.sim.engine import SimOptions
from repro.sim.resultcache import ResultCache
from repro.sim.serialize import results_identical
from repro.testing.faults import FaultRule, injected_faults
from repro.workloads.registry import get

#: Two registered benchmarks x two versions: enough tasks that a sweep has
#: innocent bystanders for every injected fault, small enough to stay fast.
NAMES = ("lonestar/bfs", "rodinia/kmeans")
SCALE = 1 / 512


def _options() -> SimOptions:
    return SimOptions(scale=SCALE, seed=11)


def _tasks(names=NAMES):
    return [SweepTask(get(name), v) for name in names for v in (COPY, LIMITED)]


def _run(tasks, *, jobs=2, policy=None, cache=None, registry=None):
    return run_tasks(
        tasks,
        discrete=discrete_gpu_system(),
        heterogeneous=heterogeneous_processor(),
        options=_options(),
        jobs=jobs,
        cache=cache,
        metrics_registry=registry,
        policy=policy,
    )


def _fast(**kwargs) -> FaultPolicy:
    kwargs.setdefault("backoff_base_s", 0.0)
    return FaultPolicy(**kwargs)


class TestWorkerException:
    def test_partial_results_and_structured_failure(self):
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            results, metrics = _run(
                _tasks(), policy=_fast(max_retries=1)
            )
        assert sorted(results) == [
            ("lonestar/bfs", LIMITED),
            ("rodinia/kmeans", COPY),
            ("rodinia/kmeans", LIMITED),
        ]
        (failure,) = metrics.failures
        assert failure.benchmark == "lonestar/bfs"
        assert failure.version == COPY
        assert failure.error_type == "FaultInjected"
        assert failure.attempts == 2  # first try + one retry
        assert failure.worker_fate == FATE_ALIVE
        assert metrics.retries == 1
        assert "injected fault" in failure.describe()

    def test_retry_then_succeed(self, tmp_path):
        rules = {"rodinia/kmeans:limited-copy": FaultRule("raise", times=1)}
        with injected_faults(rules, counter_dir=tmp_path):
            results, metrics = _run(_tasks(), policy=_fast(max_retries=2))
        assert len(results) == 4
        assert not metrics.failures
        assert metrics.retries >= 1
        assert metrics.launched == 4

    def test_lost_results_regression_all_done_futures_drained(self, tmp_path):
        """One failing future must not discard its batch-mates' finished
        results, and every fresh success must reach the cache."""
        cache = ResultCache(tmp_path / "cache")
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            results, metrics = _run(
                _tasks(), policy=_fast(max_retries=0), cache=cache
            )
        assert len(results) == 3
        assert len(metrics.failures) == 1
        assert metrics.launched == 3
        assert len(cache) == 3  # all successes persisted, failure absent

    def test_partial_results_equal_clean_run_subset(self):
        clean, _ = _run(_tasks(), jobs=1)
        with injected_faults({"rodinia/kmeans:copy": FaultRule("raise")}):
            faulted, metrics = _run(_tasks(), policy=_fast(max_retries=0))
        assert ("rodinia/kmeans", COPY) not in faulted
        assert len(faulted) == len(clean) - 1
        for key, result in faulted.items():
            assert results_identical(result, clean[key]), key


class TestWorkerCrash:
    def test_kill_once_rebuilds_pool_and_recovers(self, tmp_path):
        rules = {"rodinia/kmeans:copy": FaultRule("kill", times=1)}
        with injected_faults(rules, counter_dir=tmp_path):
            results, metrics = _run(_tasks(), policy=_fast(max_retries=2))
        assert len(results) == 4
        assert not metrics.failures
        assert metrics.pool_rebuilds >= 1

    def test_permanent_kill_reports_crashed_failure(self):
        with injected_faults({"rodinia/kmeans:copy": FaultRule("kill")}):
            results, metrics = _run(_tasks(), policy=_fast(max_retries=1))
        # A pool break charges every in-flight task (the culprit is
        # unknowable), so an innocent bystander may exhaust its retries
        # alongside the killer — but everything is accounted for.
        assert len(results) + len(metrics.failures) == 4
        assert ("rodinia/kmeans", COPY) not in results
        failures = {(f.benchmark, f.version): f for f in metrics.failures}
        culprit = failures[("rodinia/kmeans", COPY)]
        assert culprit.worker_fate == FATE_CRASHED
        assert culprit.error_type == "WorkerCrash"
        assert all(f.worker_fate == FATE_CRASHED for f in metrics.failures)

    def test_repeated_breaks_degrade_to_in_parent_serial(self):
        """With no rebuild budget the sweep falls back to the parent
        process, where the injected kill degrades to a raise — the sweep
        still completes and the process survives."""
        with injected_faults({"rodinia/kmeans:copy": FaultRule("kill")}):
            results, metrics = _run(
                _tasks(),
                policy=_fast(max_retries=3, max_pool_rebuilds=0),
            )
        assert len(results) == 3
        (failure,) = metrics.failures
        assert failure.worker_fate == FATE_IN_PARENT
        assert failure.error_type == "FaultInjected"
        assert metrics.pool_rebuilds == 0


class TestTaskTimeout:
    def test_hang_once_times_out_then_succeeds(self, tmp_path):
        rules = {"lonestar/bfs:limited-copy": FaultRule("hang", times=1, hang_s=60)}
        with injected_faults(rules, counter_dir=tmp_path):
            results, metrics = _run(
                _tasks(),
                policy=_fast(max_retries=1, task_timeout_s=2.0),
            )
        assert len(results) == 4
        assert not metrics.failures
        assert metrics.retries >= 1
        assert metrics.pool_rebuilds >= 1

    def test_permanent_hang_becomes_timed_out_failure(self):
        with injected_faults({"lonestar/bfs:limited-copy": FaultRule("hang", hang_s=60)}):
            results, metrics = _run(
                _tasks(),
                policy=_fast(max_retries=0, task_timeout_s=1.5),
            )
        assert len(results) == 3
        (failure,) = metrics.failures
        assert failure.worker_fate == FATE_TIMED_OUT
        assert failure.error_type == "TaskTimeout"


class TestFailFast:
    def test_stops_early_but_keeps_finished_results(self):
        clean, _ = _run(_tasks(), jobs=1)
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            results, metrics = _run(
                _tasks(),
                policy=_fast(max_retries=0, fail_fast=True),
            )
        # Everything is accounted for: finished, failed, or cancelled.
        assert len(results) + len(metrics.failures) == 4
        assert any(f.error_type == "FaultInjected" for f in metrics.failures)
        assert ("lonestar/bfs", COPY) not in results
        for key, result in results.items():
            assert results_identical(result, clean[key]), key

    def test_serial_fail_fast_cancels_remaining_tasks(self):
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            results, metrics = _run(
                _tasks(),
                jobs=1,
                policy=_fast(max_retries=0, fail_fast=True),
            )
        # Serial order is deterministic: bfs:copy fails first, everything
        # after it is cancelled.
        assert not results
        assert len(metrics.failures) == 4
        assert metrics.cancelled == 3
        assert {f.worker_fate for f in metrics.failures} == {
            FATE_IN_PARENT,
            FATE_CANCELLED,
        }


class TestSerialInParent:
    def test_raise_and_kill_both_contained(self):
        rules = {
            "lonestar/bfs:copy": FaultRule("raise"),
            "rodinia/kmeans:limited-copy": FaultRule("kill"),
        }
        with injected_faults(rules):
            results, metrics = _run(_tasks(), jobs=1, policy=_fast(max_retries=1))
        assert len(results) == 2
        assert len(metrics.failures) == 2
        assert all(f.worker_fate == FATE_IN_PARENT for f in metrics.failures)


class TestSweepRunnerIntegration:
    def test_sweep_returns_partial_and_reports_failures(self, tmp_path):
        specs = [get(name) for name in NAMES]
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            runner = SweepRunner(
                options=_options(),
                parallel=2,
                cache_dir=tmp_path,
                fault_policy=_fast(max_retries=0),
            )
            runs = runner.sweep(specs)
        assert sorted(runs) == ["rodinia/kmeans"]  # incomplete pair omitted
        assert len(runner.last_metrics.failures) == 1
        assert len(runner.metrics_registry.failures) == 1
        # The successful half of the failed pair is still readable.
        assert runner.try_result(get("lonestar/bfs"), LIMITED) is not None
        assert runner.try_result(get("lonestar/bfs"), COPY) is None
        # Trace summaries exist for exactly the successful runs.
        assert len(runner.metrics_registry) == 3
        totals = runner.metrics_registry.totals()
        assert totals["failed_runs"] == 1.0
        assert "FAILED [alive] FaultInjected" in runner.metrics_registry.format_table()

    def test_run_raises_sweep_error_with_failures(self):
        spec = get("lonestar/bfs")
        runner = SweepRunner(options=_options(), fault_policy=_fast(max_retries=0))
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            with pytest.raises(SweepError) as excinfo:
                runner.run(spec, COPY)
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.failures[0].error_type == "FaultInjected"

    def test_failed_task_recovers_on_next_request(self, tmp_path):
        """A failure is not memoized: once the fault clears, re-requesting
        the pair re-simulates the failed half and clears the registry."""
        spec = get("lonestar/bfs")
        runner = SweepRunner(
            options=_options(),
            cache_dir=tmp_path,
            fault_policy=_fast(max_retries=0),
        )
        with injected_faults({"lonestar/bfs:copy": FaultRule("raise")}):
            with pytest.raises(SweepError):
                runner.pair(spec)
        assert len(runner.metrics_registry.failures) == 1
        pair = runner.pair(spec)  # fault gone: succeeds
        assert pair.copy is not None
        assert runner.metrics_registry.failures == []
        # Only the failed half re-ran; the limited version came from memo.
        assert runner.last_metrics.launched == 1


class TestDispatchClassification:
    def test_broken_reduce_surfaces_instead_of_degrading(self):
        """Only genuine pickling errors fall back to in-parent execution;
        a spec whose serialization explodes with an arbitrary error is a
        bug that must propagate."""
        from repro.workloads.spec import BenchmarkSpec
        from tests.conftest import build_offload_pipeline

        class ExplosiveBuilder:
            def __call__(self):
                return build_offload_pipeline()

            def __reduce__(self):
                raise RuntimeError("boom: broken __reduce__")

        spec = BenchmarkSpec(
            name="explosive",
            suite="testsuite",
            description="synthetic",
            pc_comm=True,
            pipe_parallel=True,
            regular_pc=True,
            irregular=False,
            sw_queue=False,
            build=ExplosiveBuilder(),
        )
        tasks = [SweepTask(spec, COPY), SweepTask(spec, LIMITED)]
        with pytest.raises(RuntimeError, match="boom"):
            _run(tasks, jobs=2)


class TestSweepMetricsMerge:
    def _metrics(self, **kwargs) -> SweepMetrics:
        return SweepMetrics(**kwargs)

    def test_merge_takes_max_jobs_not_left_operand(self):
        left = self._metrics(total=2, jobs=2)
        right = self._metrics(total=4, jobs=8)
        left.merge(right)
        assert left.jobs == 8
        assert left.total == 6
        assert left.sweeps == 2

    def test_merge_concatenates_failures_and_counters(self):
        failure = TaskFailure(
            benchmark="a/b",
            version=COPY,
            error_type="X",
            message="m",
            attempts=1,
            worker_fate=FATE_ALIVE,
        )
        left = self._metrics(retries=1, pool_rebuilds=1)
        right = self._metrics(retries=2, failures=[failure])
        left.merge(right)
        assert left.retries == 3
        assert left.pool_rebuilds == 1
        assert left.failures == [failure]
        assert left.failed == 1

    def test_format_line_suppresses_speedup_for_merged_metrics(self):
        single = self._metrics(
            total=4, launched=4, wall_s=2.0, serial_estimate_s=8.0
        )
        assert "(4.0x)" in single.format_line()
        merged = self._metrics(
            total=4, launched=4, wall_s=2.0, serial_estimate_s=8.0
        )
        merged.merge(self._metrics(wall_s=1.0, serial_estimate_s=1.0))
        line = merged.format_line()
        assert "serial estimate" in line
        assert "x)" not in line  # no speedup claim across merged sweeps

    def test_format_line_reports_retries_and_failures(self):
        failure = TaskFailure(
            benchmark="a/b",
            version=COPY,
            error_type="X",
            message="m",
            attempts=2,
            worker_fate=FATE_CRASHED,
        )
        metrics = self._metrics(total=4, retries=3, failures=[failure])
        line = metrics.format_line()
        assert "3 retries" in line
        assert "1 failed" in line
