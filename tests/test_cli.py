"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

TINY = "0.0078125"  # 1/128


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "show-config",
            "list",
            "run",
            "table2",
            "fig3",
            "fig9",
            "validate",
            "ablations",
            "all",
        ):
            assert command in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_show_config(self, capsys):
        assert main(["show-config"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "179 GB/s" in out

    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Benchmarks (58)" in out
        assert "rodinia/kmeans" in out

    def test_list_one_suite(self, capsys):
        assert main(["list", "--suite", "pannotia"]) == 0
        out = capsys.readouterr().out
        assert "Benchmarks (10)" in out
        assert "lonestar" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_run_benchmark(self, capsys):
        assert main(["run", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "[copy]" in out and "[limited-copy]" in out
        assert "roi_s" in out

    def test_run_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "rodinia/quake", "--scale", TINY])

    def test_fig3(self, capsys):
        assert main(["fig3", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Parallel + Cache" in out

    def test_advise(self, capsys):
        assert main(["advise", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "Optimization advisor" in out
        assert "remove memory copies" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "|" in out and "gpu" in out
        assert "map_0" in out

    def test_timeline_limited(self, capsys):
        assert main(
            ["timeline", "rodinia/kmeans", "--limited", "--scale", TINY]
        ) == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert '"schema": "repro.sim_result/v1"' in out

    def test_run_spec(self, capsys, tmp_path):
        import json

        spec = {
            "name": "demo/saxpy",
            "outputs": ["y"],
            "buffers": [
                {"name": "x", "size": "4MB"},
                {"name": "y", "size": "4MB"},
            ],
            "stages": [
                {"op": "h2d", "buffer": "x"},
                {"op": "gpu", "name": "k", "flops": 1e7,
                 "reads": [{"buffer": "x_dev"}]},
            ],
        }
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(spec))
        assert main(["run-spec", str(path), "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "demo/saxpy" in out and "porting changes run time" in out

    def test_export_to_file(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        assert main(
            ["export", "rodinia/kmeans", "--scale", TINY,
             "--output", str(target)]
        ) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["pipeline"] == "rodinia/kmeans"
