"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

TINY = "0.0078125"  # 1/128


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "show-config",
            "list",
            "run",
            "table2",
            "fig3",
            "fig9",
            "validate",
            "ablations",
            "lint",
            "all",
        ):
            assert command in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFaultToleranceFlags:
    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["run", "rodinia/kmeans"])
        assert args.max_retries == 2
        assert args.task_timeout is None
        assert args.fail_fast is False

    def test_flags_parse_explicit(self):
        args = build_parser().parse_args(
            [
                "run",
                "rodinia/kmeans",
                "--max-retries",
                "0",
                "--task-timeout",
                "1.5",
                "--fail-fast",
            ]
        )
        assert args.max_retries == 0
        assert args.task_timeout == 1.5
        assert args.fail_fast is True

    def test_partial_sweep_exits_3_and_reports_failure(self, capsys):
        from repro.testing.faults import FaultRule, injected_faults

        argv = [
            "run",
            "rodinia/kmeans",
            "--scale",
            TINY,
            "--jobs",
            "1",
            "--no-cache",
            "--max-retries",
            "0",
        ]
        with injected_faults({"rodinia/kmeans:copy": FaultRule("raise")}):
            assert main(argv) == 3
        captured = capsys.readouterr()
        assert "FaultInjected" in captured.err
        assert "limited-copy" in captured.out  # surviving half still printed
        # Fault gone: the same invocation is clean again.
        assert main(argv) == 0
        assert "FAILED" not in capsys.readouterr().out


class TestCommands:
    def test_show_config(self, capsys):
        assert main(["show-config"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "179 GB/s" in out

    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Benchmarks (58)" in out
        assert "rodinia/kmeans" in out

    def test_list_one_suite(self, capsys):
        assert main(["list", "--suite", "pannotia"]) == 0
        out = capsys.readouterr().out
        assert "Benchmarks (10)" in out
        assert "lonestar" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_run_benchmark(self, capsys):
        assert main(["run", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "[copy]" in out and "[limited-copy]" in out
        assert "roi_s" in out

    def test_run_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "rodinia/quake", "--scale", TINY])

    def test_fig3(self, capsys):
        assert main(["fig3", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Parallel + Cache" in out

    def test_advise(self, capsys):
        assert main(["advise", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "Optimization advisor" in out
        assert "remove memory copies" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "|" in out and "gpu" in out
        assert "map_0" in out

    def test_timeline_limited(self, capsys):
        assert main(
            ["timeline", "rodinia/kmeans", "--limited", "--scale", TINY]
        ) == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "rodinia/kmeans", "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert '"schema": "repro.sim_result/v1"' in out

    def test_run_spec(self, capsys, tmp_path):
        import json

        spec = {
            "name": "demo/saxpy",
            "outputs": ["y"],
            "buffers": [
                {"name": "x", "size": "4MB"},
                {"name": "y", "size": "4MB"},
            ],
            "stages": [
                {"op": "h2d", "buffer": "x"},
                {"op": "gpu", "name": "k", "flops": 1e7,
                 "reads": [{"buffer": "x_dev"}]},
            ],
        }
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(spec))
        assert main(["run-spec", str(path), "--scale", TINY]) == 0
        out = capsys.readouterr().out
        assert "demo/saxpy" in out and "porting changes run time" in out

class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings at/above --fail-on, 2 usage."""

    def _write_spec(self, tmp_path, spec):
        import json

        path = tmp_path / "wl.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def _space_violation_spec(self, tmp_path):
        # A GPU kernel reading a host allocation with no interposed copy:
        # RPL101, error level, in the copy form.
        return self._write_spec(tmp_path, {
            "name": "demo/broken",
            "buffers": [{"name": "x", "size": "4MB"}],
            "stages": [
                {"op": "gpu", "name": "k", "flops": 1e6,
                 "reads": [{"buffer": "x"}]},
            ],
        })

    def _warning_spec(self, tmp_path):
        # Clean at error level, but buffer "spare" is never accessed:
        # RPL104, warning level, in both forms.
        return self._write_spec(tmp_path, {
            "name": "demo/sloppy",
            "buffers": [
                {"name": "x", "size": "4MB"},
                {"name": "spare", "size": "4MB"},
            ],
            "stages": [
                {"op": "h2d", "buffer": "x"},
                {"op": "gpu", "name": "k", "flops": 1e6,
                 "reads": [{"buffer": "x_dev"}]},
            ],
        })

    def test_registry_lints_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "92 pipeline(s) checked" in out

    def test_single_benchmark_json(self, capsys):
        import json

        assert main(["lint", "rodinia/kmeans", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/v2"
        assert payload["clean"] is True
        assert payload["pipelines"] == [
            "rodinia/kmeans", "rodinia/kmeans [limited-copy]",
        ]

    def test_exit_1_on_error_finding(self, capsys, tmp_path):
        assert main(["lint", "--spec", self._space_violation_spec(tmp_path)]) == 1
        assert "RPL101" in capsys.readouterr().out

    def test_exit_0_when_findings_below_threshold(self, capsys, tmp_path):
        assert main(["lint", "--spec", self._warning_spec(tmp_path)]) == 0
        assert "RPL104" in capsys.readouterr().out

    def test_fail_on_warn_promotes_warnings(self, capsys, tmp_path):
        spec = self._warning_spec(tmp_path)
        assert main(["lint", "--spec", spec, "--fail-on", "warn"]) == 1

    def test_json_report_for_findings(self, capsys, tmp_path):
        import json

        spec = self._space_violation_spec(tmp_path)
        assert main(["lint", "--spec", spec, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert any(f["rule"] == "RPL101" for f in payload["findings"])

    def test_exit_2_unknown_benchmark(self, capsys):
        assert main(["lint", "nosuch/bench"]) == 2
        assert "nosuch/bench" in capsys.readouterr().err

    def test_exit_2_bad_severity(self, capsys):
        assert main(["lint", "--fail-on", "fatal"]) == 2
        assert "fatal" in capsys.readouterr().err

    def test_exit_2_unreadable_spec(self, capsys, tmp_path):
        assert main(["lint", "--spec", str(tmp_path / "missing.json")]) == 2
        assert capsys.readouterr().err

    def test_opportunities_flag_surfaces_info_findings(self, capsys):
        assert main(["lint", "rodinia/kmeans", "--opportunities"]) == 0
        out = capsys.readouterr().out
        assert "RPL304" in out  # kmeans' CPU update stages are candidates


class TestLintFix:
    def _dead_copy_spec(self, tmp_path):
        import json

        # The upload is clobbered by "init" before anything reads it:
        # RPL301, fixable by dropping the copy.
        spec = {
            "name": "demo/deadcopy",
            "outputs": ["t"],
            "buffers": [{"name": "t", "size": "1MB"}],
            "stages": [
                {"op": "h2d", "buffer": "t"},
                {"op": "gpu", "name": "init", "flops": 1e6,
                 "writes": [{"buffer": "t_dev"}]},
                {"op": "d2h", "src": "t_dev", "dst": "t", "name": "d2h_t"},
            ],
        }
        path = tmp_path / "dead.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_fix_reports_applied_fixes(self, capsys, tmp_path):
        spec = self._dead_copy_spec(tmp_path)
        assert main(["lint", "--spec", spec, "--fix"]) == 0
        out = capsys.readouterr().out
        assert "RPL301" in out and "drop dead copy" in out
        assert "applied 1 fix(es)" in out
        assert "clean" in out  # the fixed pipeline re-lints clean

    def test_fix_json_payload(self, capsys, tmp_path):
        import json

        spec = self._dead_copy_spec(tmp_path)
        assert main(["lint", "--spec", spec, "--fix", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        (entry,) = payload["fixes"]
        assert entry["pipeline"] == "demo/deadcopy"
        (applied,) = entry["applied"]
        assert applied["rule"] == "RPL301"
        assert applied["kind"] == "drop-copy"
        assert entry["skipped"] == []

    def test_fix_on_clean_registry_benchmark_is_noop(self, capsys):
        assert main(["lint", "rodinia/kmeans", "--fix"]) == 0
        out = capsys.readouterr().out
        assert "applied 0 fix(es)" in out
        assert "clean" in out


class TestAdviseStatic:
    def test_single_benchmark(self, capsys):
        assert main(["advise", "rodinia/kmeans", "--static"]) == 0
        out = capsys.readouterr().out
        assert "static advisor: rodinia/kmeans" in out
        assert "overlap=yes" in out

    def test_registry_table(self, capsys):
        assert main(["advise", "--static"]) == 0
        out = capsys.readouterr().out
        assert "Static optimization advisor" in out
        assert "rodinia/kmeans" in out and "parboil/sgemm" in out

    def test_exit_2_without_benchmark_or_static(self, capsys):
        assert main(["advise"]) == 2
        assert "--static" in capsys.readouterr().err

    def test_exit_2_unknown_benchmark(self, capsys):
        assert main(["advise", "nosuch/bench", "--static"]) == 2
        assert "nosuch/bench" in capsys.readouterr().err


class TestExport:
    def test_export_to_file(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        assert main(
            ["export", "rodinia/kmeans", "--scale", TINY,
             "--output", str(target)]
        ) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["pipeline"] == "rodinia/kmeans"
