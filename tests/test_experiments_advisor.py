"""Tests for the Section VI optimization advisor."""

import pytest

from repro.experiments.advisor import (
    Optimization,
    Recommendation,
    advise,
    advise_benchmark,
)
from repro.experiments.runner import SweepRunner
from repro.sim.engine import SimOptions
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(options=SimOptions(scale=TINY_SCALE))


class TestAdvise:
    def test_recommendations_sorted_by_gain(self, runner):
        report = advise(get("rodinia/kmeans"), runner)
        gains = [r.estimated_gain for r in report.recommendations]
        assert gains == sorted(gains, reverse=True)

    def test_kmeans_flags_copy_removal(self, runner):
        report = advise(get("rodinia/kmeans"), runner)
        kinds = {r.optimization for r in report.recommendations}
        assert Optimization.REMOVE_COPIES in kinds
        copy_rec = next(
            r
            for r in report.recommendations
            if r.optimization is Optimization.REMOVE_COPIES
        )
        assert copy_rec.estimated_gain > 0.2

    def test_misaligned_benchmark_flags_alignment(self, runner):
        # hotspot is misaligned *and* memory-bound enough for the fix to
        # show up in run time (sgemm is misaligned but compute-bound, so
        # its alignment gain falls below the reporting threshold).
        report = advise(get("rodinia/hotspot"), runner)
        kinds = {r.optimization for r in report.recommendations}
        assert Optimization.ALIGNED_ALLOCATION in kinds

    def test_aligned_benchmark_does_not_flag_alignment(self, runner):
        report = advise(get("rodinia/kmeans"), runner)
        kinds = {r.optimization for r in report.recommendations}
        assert Optimization.ALIGNED_ALLOCATION not in kinds

    def test_fault_heavy_benchmark_flags_faults(self, runner):
        report = advise(get("rodinia/srad"), runner)
        kinds = {r.optimization for r in report.recommendations}
        assert Optimization.FAULT_HANDLING in kinds
        fault_rec = next(
            r
            for r in report.recommendations
            if r.optimization is Optimization.FAULT_HANDLING
        )
        assert fault_rec.estimated_gain > 0.2

    def test_contended_benchmark_flags_caching(self, runner):
        report = advise(get("lonestar/bfs"), runner)
        kinds = {r.optimization for r in report.recommendations}
        assert Optimization.COORDINATED_CACHING in kinds

    def test_top_is_first(self, runner):
        report = advise(get("rodinia/kmeans"), runner)
        assert report.top is report.recommendations[0]

    def test_render_contains_all_recommendations(self, runner):
        report = advise(get("rodinia/kmeans"), runner)
        text = report.render()
        assert "rodinia/kmeans" in text
        for rec in report.recommendations:
            assert rec.optimization.value in text

    def test_advise_by_name(self, runner):
        report = advise_benchmark("rodinia/kmeans", runner)
        assert report.benchmark == "rodinia/kmeans"


class TestRecommendation:
    def test_gain_bounds_validated(self):
        with pytest.raises(ValueError):
            Recommendation(Optimization.OVERLAP, 1.5, "x")
        Recommendation(Optimization.OVERLAP, -0.5, "regression")  # allowed
        Recommendation(Optimization.OVERLAP, -4.0, "deep regression")  # allowed
