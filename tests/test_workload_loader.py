"""Tests for the declarative workload loader."""

import json

import pytest

from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import StageKind
from repro.units import KB, MB
from repro.workloads.loader import (
    WorkloadSpecError,
    parse_size,
    pipeline_from_dict,
    pipeline_from_file,
    pipeline_from_json,
)

SPEC = {
    "name": "custom/app",
    "outputs": ["out"],
    "buffers": [
        {"name": "in", "size": "8MB"},
        {"name": "out", "size": "2MB"},
        {"name": "scratch", "size": 65536, "temporary": True},
    ],
    "stages": [
        {"op": "h2d", "buffer": "in", "chunkable": True},
        {"op": "mirror", "buffer": "out"},
        {
            "op": "gpu",
            "name": "kernel",
            "flops": 2e9,
            "reads": [
                {"buffer": "in_dev", "pattern": "streaming", "passes": 2},
                {"buffer": "scratch", "pattern": "random", "fraction": 0.5},
            ],
            "writes": [{"buffer": "out_dev"}],
            "efficiency": 0.6,
            "chunkable": True,
            "resources": {"threads_per_cta": 192, "registers_per_thread": 20},
        },
        {"op": "d2h", "src": "out_dev", "dst": "out", "name": "drain"},
        {
            "op": "cpu",
            "name": "post",
            "flops": 1e6,
            "reads": [{"buffer": "out"}],
            "migratable": True,
        },
    ],
}


class TestParseSize:
    def test_integers_pass_through(self):
        assert parse_size(4096) == 4096

    def test_suffixes(self):
        assert parse_size("4KB") == 4 * KB
        assert parse_size("24MB") == 24 * MB
        assert parse_size("1.5GB") == int(1.5 * 1024 * MB)
        assert parse_size("512B") == 512

    def test_case_insensitive(self):
        assert parse_size("4kb") == 4 * KB

    def test_rejects_garbage(self):
        for bad in ("4 parsecs", "", -5, 0, True, None, [4]):
            with pytest.raises(WorkloadSpecError):
                parse_size(bad)


class TestPipelineFromDict:
    def test_builds_valid_pipeline(self):
        pipeline = pipeline_from_dict(SPEC)
        assert pipeline.name == "custom/app"
        assert pipeline.metadata["outputs"] == ("out",)
        assert len(pipeline.stages) == 4  # h2d, kernel, d2h, post

    def test_buffers_created(self):
        pipeline = pipeline_from_dict(SPEC)
        assert pipeline.buffers["in"].size_bytes == 8 * MB
        assert pipeline.buffers["scratch"].temporary
        assert "in_dev" in pipeline.buffers  # implicit mirror
        assert "out_dev" in pipeline.buffers  # explicit mirror

    def test_kernel_attributes(self):
        pipeline = pipeline_from_dict(SPEC)
        kernel = pipeline.stage("kernel")
        assert kernel.kind is StageKind.GPU_KERNEL
        assert kernel.flops == 2e9
        assert kernel.compute_efficiency == 0.6
        assert kernel.resources.threads_per_cta == 192
        assert kernel.reads[1].pattern is AccessPattern.RANDOM
        assert kernel.reads[1].fraction == 0.5

    def test_cpu_stage_attributes(self):
        pipeline = pipeline_from_dict(SPEC)
        post = pipeline.stage("post")
        assert post.kind is StageKind.CPU
        assert post.migratable

    def test_loaded_pipeline_simulates(self, discrete, tiny_options):
        from repro.sim.engine import simulate

        result = simulate(pipeline_from_dict(SPEC), discrete, tiny_options)
        assert result.roi_s > 0

    def test_loaded_pipeline_ports(self):
        from repro.pipeline.transforms import remove_copies

        limited = remove_copies(pipeline_from_dict(SPEC))
        assert limited.copy_stages == ()

    def test_missing_name_rejected(self):
        with pytest.raises(WorkloadSpecError, match="name"):
            pipeline_from_dict({"buffers": [], "stages": []})

    def test_unknown_op_rejected(self):
        spec = {"name": "x", "stages": [{"op": "teleport"}]}
        with pytest.raises(WorkloadSpecError, match="unknown op"):
            pipeline_from_dict(spec)

    def test_unknown_pattern_rejected(self):
        spec = {
            "name": "x",
            "buffers": [{"name": "a", "size": 4096}],
            "stages": [
                {"op": "gpu", "name": "k", "flops": 1,
                 "reads": [{"buffer": "a", "pattern": "zigzag"}]}
            ],
        }
        with pytest.raises(WorkloadSpecError, match="zigzag"):
            pipeline_from_dict(spec)

    def test_d2h_requires_src_dst(self):
        spec = {"name": "x", "stages": [{"op": "d2h", "src": "a"}]}
        with pytest.raises(WorkloadSpecError, match="src"):
            pipeline_from_dict(spec)

    def test_region_parsed(self):
        spec = {
            "name": "x",
            "buffers": [{"name": "a", "size": 8192}],
            "stages": [
                {"op": "gpu", "name": "k", "flops": 1,
                 "reads": [{"buffer": "a", "region": [0.25, 0.75]}]}
            ],
        }
        pipeline = pipeline_from_dict(spec)
        region = pipeline.stage("k").reads[0].region
        assert (region.start, region.end) == (0.25, 0.75)


class TestJsonAndFile:
    def test_from_json(self):
        pipeline = pipeline_from_json(json.dumps(SPEC))
        assert pipeline.name == "custom/app"

    def test_invalid_json_rejected(self):
        with pytest.raises(WorkloadSpecError, match="invalid JSON"):
            pipeline_from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(WorkloadSpecError, match="object"):
            pipeline_from_json("[1, 2]")

    def test_from_file(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(SPEC))
        pipeline = pipeline_from_file(str(path))
        assert pipeline.name == "custom/app"
