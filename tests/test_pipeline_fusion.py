"""Tests for repro.pipeline.fusion (kernel fusion, GPU->CPU migration)."""

import pytest

from repro.config.components import GpuConfig
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.fusion import fuse_kernels, migrate_kernels_to_cpu
from repro.pipeline.graph import PipelineError
from repro.pipeline.stage import BufferAccess, KernelResources, StageKind
from repro.pipeline.transforms import remove_copies
from repro.units import KB, MB


def chain_pipeline(resources_a=None, resources_b=None, extra_reader=False):
    """h2d -> kernel_a -> kernel_b -> d2h, with an intermediate buffer."""
    b = PipelineBuilder("t", metadata={"outputs": ("out",)})
    b.buffer("in", 4 * MB)
    b.buffer("mid", 4 * MB, temporary=True)
    b.buffer("out", 4 * MB)
    b.copy_h2d("in", name="h2d")
    b.mirror("out")
    b.gpu_kernel("a", flops=100.0, reads=["in_dev"], writes=["mid"],
                 resources=resources_a)
    b.gpu_kernel("b", flops=50.0, reads=["mid"], writes=["out_dev"],
                 resources=resources_b)
    b.copy_d2h("out_dev", "out", name="d2h")
    if extra_reader:
        b.cpu_stage("peek", flops=1.0, reads=["mid"])
    return b.build()


class TestFuseKernels:
    def test_fuses_producer_consumer_pair(self):
        fused = fuse_kernels(chain_pipeline())
        names = [s.name for s in fused.stages]
        assert "a+b" in names
        assert "a" not in names and "b" not in names

    def test_flops_summed(self):
        fused = fuse_kernels(chain_pipeline())
        merged = fused.stage("a+b")
        assert merged.flops == 150.0
        assert merged.kind is StageKind.GPU_KERNEL

    def test_intermediate_traffic_eliminated(self):
        fused = fuse_kernels(chain_pipeline())
        merged = fused.stage("a+b")
        touched = set(merged.buffers)
        assert "mid" not in touched  # passed in registers now
        assert "in_dev" in touched and "out_dev" in touched

    def test_downstream_reader_keeps_intermediate(self):
        fused = fuse_kernels(chain_pipeline(extra_reader=True))
        merged = fused.stage("a+b")
        # 'peek' still reads mid, so the fused kernel must write it.
        assert "mid" in {a.buffer for a in merged.writes}

    def test_dependencies_rewired(self):
        fused = fuse_kernels(chain_pipeline())
        d2h = fused.stage("d2h")
        assert d2h.depends_on == ("a+b",)
        assert fused.topological_order()  # still a DAG

    def test_chain_of_three_collapses(self):
        b = PipelineBuilder("t", metadata={"outputs": ()})
        b.buffer("x", 1 * MB)
        b.buffer("y", 1 * MB, temporary=True)
        b.buffer("z", 1 * MB, temporary=True)
        b.buffer("w", 1 * MB)
        b.gpu_kernel("k1", flops=1.0, reads=["x"], writes=["y"])
        b.gpu_kernel("k2", flops=1.0, reads=["y"], writes=["z"])
        b.gpu_kernel("k3", flops=1.0, reads=["z"], writes=["w"])
        fused = fuse_kernels(b.build())
        assert len(fused.stages) == 1
        assert fused.stages[0].flops == 3.0

    def test_resource_limits_block_fusion(self):
        heavy = KernelResources(threads_per_cta=256, registers_per_thread=80)
        pipeline = chain_pipeline(resources_a=heavy, resources_b=heavy)
        # Combined register pressure (160/thread) exceeds the core.
        fused = fuse_kernels(pipeline, gpu=GpuConfig())
        assert {s.name for s in fused.stages} >= {"a", "b"}

    def test_scratch_limit_blocks_fusion(self):
        half = KernelResources(
            threads_per_cta=64, registers_per_thread=8,
            scratch_bytes_per_cta=30 * KB,
        )
        fused = fuse_kernels(chain_pipeline(half, half))
        assert "a+b" not in {s.name for s in fused.stages}

    def test_non_adjacent_kernels_not_fused(self):
        b = PipelineBuilder("t")
        b.buffer("x", 1 * MB)
        b.buffer("y", 1 * MB)
        b.gpu_kernel("k1", flops=1.0, reads=["x"], writes=["y"])
        b.cpu_stage("host", flops=1.0, reads=["y"])
        b.gpu_kernel("k2", flops=1.0, reads=["y"], after=["host"])
        fused = fuse_kernels(b.build())
        assert len(fused.stages) == 3

    def test_no_data_flow_no_fusion(self):
        b = PipelineBuilder("t")
        b.buffer("x", 1 * MB)
        b.buffer("y", 1 * MB)
        b.gpu_kernel("k1", flops=1.0, reads=["x"])
        b.gpu_kernel("k2", flops=1.0, reads=["y"])  # chained but independent
        fused = fuse_kernels(b.build())
        assert len(fused.stages) == 2

    def test_fusion_reduces_offchip_traffic(self, heterogeneous, tiny_options):
        from repro.sim.engine import simulate

        limited = remove_copies(chain_pipeline())
        baseline = simulate(limited, heterogeneous, tiny_options)
        fused = simulate(fuse_kernels(limited), heterogeneous, tiny_options)
        assert fused.offchip_accesses() < baseline.offchip_accesses()


class TestMigrateKernelsToCpu:
    def test_small_kernels_move_to_cpu(self):
        limited = remove_copies(chain_pipeline())
        migrated = migrate_kernels_to_cpu(limited, max_flops=60.0)
        assert migrated.stage("b").kind is StageKind.CPU
        assert migrated.stage("a").kind is StageKind.GPU_KERNEL

    def test_resources_dropped_on_migration(self):
        limited = remove_copies(
            chain_pipeline(resources_b=KernelResources())
        )
        migrated = migrate_kernels_to_cpu(limited, max_flops=60.0)
        assert migrated.stage("b").resources is None

    def test_requires_limited_copy(self):
        with pytest.raises(PipelineError, match="remove_copies"):
            migrate_kernels_to_cpu(chain_pipeline(), max_flops=60.0)

    def test_threshold_zero_migrates_nothing(self):
        limited = remove_copies(chain_pipeline())
        migrated = migrate_kernels_to_cpu(limited, max_flops=0.0)
        assert migrated.stage("a").kind is StageKind.GPU_KERNEL
        assert migrated.stage("b").kind is StageKind.GPU_KERNEL
