"""Tests for the static pipeline linter (repro.analysis)."""

import json

import pytest

from repro.analysis import (
    LINT_SCHEMA,
    HappensBefore,
    LintError,
    RULES,
    Severity,
    assert_lint_clean,
    derive_flags,
    lint_benchmark,
    lint_pipeline,
    lint_registry,
    render_json,
    render_text,
)
from repro.analysis.happens import regions_overlap
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.stage import BufferAccess, Region
from repro.pipeline.transforms import (
    fission_async_streams,
    migrate_compute,
    parallel_producer_consumer,
    remove_copies,
)
from repro.units import MB
from repro.workloads.registry import simulatable_specs
from repro.workloads.suites.rodinia import kmeans_pipeline


def serial_pipeline():
    b = PipelineBuilder("test/serial", metadata={"outputs": ("out",)})
    b.buffer("data", 4 * MB)
    b.buffer("out", 1 * MB)
    b.copy_h2d("data")
    b.mirror("out")
    b.gpu_kernel(
        "kernel", flops=1e6,
        reads=[BufferAccess("data_dev")], writes=[BufferAccess("out_dev")],
    )
    b.copy_d2h("out_dev", "out", name="d2h_out")
    return b.build()


def racy_pipeline():
    b = PipelineBuilder("test/racy")
    b.buffer("x", 1 * MB, temporary=True)
    b.gpu_kernel("writer", flops=1e6, writes=[BufferAccess("x")])
    b.gpu_kernel("reader", flops=1e6, reads=[BufferAccess("x")], after=[])
    return b.build()


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert Severity.WARNING.at_least(Severity.WARNING)
        assert not Severity.INFO.at_least(Severity.WARNING)

    def test_parse_accepts_warn_shorthand(self):
        assert Severity.parse("warn") is Severity.WARNING
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestHappensBefore:
    def test_serial_chain_is_fully_ordered(self):
        hb = HappensBefore(serial_pipeline())
        assert list(hb.concurrent_pairs()) == []
        assert hb.ordered("h2d_data_1", "d2h_out")

    def test_detached_stages_are_concurrent(self):
        hb = HappensBefore(racy_pipeline())
        assert hb.concurrent("writer", "reader")
        pairs = [(a.name, b.name) for a, b in hb.concurrent_pairs()]
        assert pairs == [("writer", "reader")]

    def test_regions(self):
        assert regions_overlap(Region(0.0, 0.5), Region(0.25, 0.75))
        assert not regions_overlap(Region(0.0, 0.5), Region(0.5, 1.0))


class TestHazards:
    def test_serial_pipeline_is_clean(self):
        assert not lint_pipeline(serial_pipeline()).diagnostics

    def test_raw_hazard_fires(self):
        report = lint_pipeline(racy_pipeline())
        assert report.rules_fired() == ("RPL001",)
        assert not report.clean(Severity.ERROR)

    def test_disjoint_regions_do_not_conflict(self):
        b = PipelineBuilder("test/disjoint")
        b.buffer("x", 1 * MB, temporary=True)
        b.gpu_kernel(
            "lo", flops=1e6,
            writes=[BufferAccess("x", region=Region(0.0, 0.5))],
        )
        b.gpu_kernel(
            "hi", flops=1e6,
            writes=[BufferAccess("x", region=Region(0.5, 1.0))], after=[],
        )
        assert not lint_pipeline(b.build()).diagnostics

    def test_war_classified_by_insertion_order(self):
        b = PipelineBuilder("test/war")
        b.buffer("x", 1 * MB, temporary=True)
        b.buffer("y", 1 * MB, temporary=True)
        b.gpu_kernel(
            "reader", flops=1e6,
            reads=[BufferAccess("x")], writes=[BufferAccess("y")],
        )
        b.gpu_kernel("writer", flops=1e6, writes=[BufferAccess("x")], after=[])
        assert lint_pipeline(b.build()).rules_fired() == ("RPL003",)


class TestTransformsLintClean:
    """The paper's transforms must never introduce error-level findings."""

    def test_kmeans_all_forms(self):
        copy_form = kmeans_pipeline()
        assert_lint_clean(copy_form)
        assert_lint_clean(fission_async_streams(copy_form))
        limited = remove_copies(copy_form)
        assert_lint_clean(limited)
        assert_lint_clean(parallel_producer_consumer(limited))
        assert_lint_clean(migrate_compute(limited))
        assert_lint_clean(parallel_producer_consumer(migrate_compute(limited)))

    def test_chunked_lanes_not_flagged(self):
        """parallel_producer_consumer output stays clean: broadcast accesses
        across chunk lanes are covered by the data-ready flag protocol."""
        chunked = parallel_producer_consumer(remove_copies(kmeans_pipeline()), 4)
        report = lint_pipeline(chunked)
        hazards = [d for d in report if d.rule in ("RPL001", "RPL002", "RPL003")]
        assert hazards == []

    def test_true_race_still_fires_in_chunked_pipeline(self):
        """The chunk-lane exemption must not swallow real races: two chunked
        stages clashing through non-broadcast full-region accesses fire."""
        b = PipelineBuilder("test/chunked_race")
        b.buffer("x", 1 * MB, temporary=True)
        b.gpu_kernel("a", flops=1e6, writes=[BufferAccess("x")], chunkable=True)
        b.gpu_kernel("b", flops=1e6, writes=[BufferAccess("x")], after=[])
        chunked = b.build()
        from repro.pipeline.transforms import chunk_stages

        report = lint_pipeline(chunk_stages(chunked, 2))
        assert "RPL002" in report.rules_fired()


class TestRegistrySweep:
    def test_all_benchmarks_lint_clean_both_forms(self):
        """Every simulatable benchmark, copy and limited-copy form, is clean
        at error level — the CI gate (`repro lint --fail-on error`)."""
        specs = simulatable_specs()
        assert len(specs) == 46
        report = lint_registry(specs)
        errors = report.at_least(Severity.ERROR)
        assert not errors, "\n".join(d.format() for d in errors)
        # Both forms of every benchmark were actually checked.
        assert len(report.pipelines) == 92

    def test_registry_currently_warning_free(self):
        """The seed registry is drift-free, so any new warning is a
        regression introduced by a builder or spec edit."""
        report = lint_registry()
        assert report.clean(Severity.INFO), "\n".join(
            d.format() for d in report
        )


class TestDerivedFlags:
    def test_kmeans_structure(self):
        derived = derive_flags(kmeans_pipeline())
        assert derived.pc_comm
        assert derived.regular_pc
        assert not derived.sw_queue
        assert derived.has_chunkable

    def test_worklist_structure_detected(self):
        from repro.workloads.registry import get

        derived = derive_flags(get("lonestar/bfs").pipeline())
        assert derived.sw_queue

    def test_bh_tree_is_not_a_worklist(self):
        from repro.workloads.registry import get

        derived = derive_flags(get("lonestar/bh").pipeline())
        assert not derived.sw_queue


class TestAssertHook:
    def test_clean_pipeline_returns_report(self):
        report = assert_lint_clean(serial_pipeline())
        assert report.clean(Severity.ERROR)

    def test_raises_with_findings_in_message(self):
        with pytest.raises(LintError) as excinfo:
            assert_lint_clean(racy_pipeline())
        assert "RPL001" in str(excinfo.value)
        assert excinfo.value.report.rules_fired() == ("RPL001",)

    def test_threshold_can_be_relaxed(self):
        b = PipelineBuilder("test/unused")
        b.buffer("used", 1 * MB, temporary=True)
        b.buffer("spare", 1 * MB)
        b.gpu_kernel("k", flops=1e6, writes=[BufferAccess("used")])
        pipeline = b.build()
        assert_lint_clean(pipeline)  # RPL104 is only a warning
        with pytest.raises(LintError):
            assert_lint_clean(pipeline, threshold=Severity.WARNING)


class TestReporters:
    def test_text_mentions_rule_and_location(self):
        text = render_text(lint_pipeline(racy_pipeline()))
        assert "RPL001" in text
        assert "test/racy" in text
        assert "FAILED" in text

    def test_clean_text_summary(self):
        text = render_text(lint_pipeline(serial_pipeline()))
        assert "clean" in text
        assert "1 pipeline(s) checked" in text

    def test_json_schema_stable(self):
        payload = json.loads(render_json(lint_pipeline(racy_pipeline())))
        assert payload["schema"] == LINT_SCHEMA
        assert LINT_SCHEMA == "repro.lint/v2"
        assert payload["clean"] is False
        assert payload["counts"]["error"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "severity", "pipeline", "stage", "buffer", "message",
            "hint", "fixable", "provenance",
        }
        assert finding["rule"] == "RPL001"
        assert finding["pipeline"] == "test/racy"
        assert finding["fixable"] is False
        assert finding["provenance"] == []

    def test_v1_consumers_parse_v2_reports(self):
        # v2 is a strict superset of v1: every v1 field survives with the
        # same name, type, and meaning, so a consumer written against v1
        # (reading only the v1 keys) parses a v2 document unchanged.
        payload = json.loads(render_json(lint_pipeline(racy_pipeline())))
        v1_top = {"schema", "fail_on", "clean", "pipelines", "counts",
                  "findings"}
        assert v1_top <= set(payload)
        v1_finding = {"rule", "severity", "pipeline", "stage", "buffer",
                      "message", "hint"}
        for finding in payload["findings"]:
            assert v1_finding <= set(finding)
            assert isinstance(finding["rule"], str)
            assert isinstance(finding["severity"], str)
        assert payload["schema"].startswith("repro.lint/")

    def test_json_findings_are_byte_stable(self):
        # Two lints of the same pipeline must serialize identically —
        # findings are sorted by (pipeline, rule, stage, buffer, message),
        # not by rule execution order.
        first = render_json(lint_pipeline(racy_pipeline()))
        second = render_json(lint_pipeline(racy_pipeline()))
        assert first == second

    def test_json_respects_fail_on(self):
        report = lint_pipeline(serial_pipeline())
        payload = json.loads(render_json(report, fail_on=Severity.INFO))
        assert payload["fail_on"] == "info"
        assert payload["clean"] is True


class TestRuleCatalogue:
    def test_ids_are_stable_and_families_consistent(self):
        assert set(RULES) == {
            "RPL001", "RPL002", "RPL003",
            "RPL101", "RPL102", "RPL103", "RPL104", "RPL105", "RPL106",
            "RPL201", "RPL202", "RPL203", "RPL204",
            "RPL301", "RPL302", "RPL303", "RPL304", "RPL305",
        }
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL101", "RPL102"):
            assert RULES[rule_id].severity is Severity.ERROR
        for rule_id in ("RPL103", "RPL104", "RPL105", "RPL106",
                        "RPL201", "RPL202", "RPL203", "RPL204",
                        "RPL301", "RPL302"):
            assert RULES[rule_id].severity is Severity.WARNING
        for rule_id in ("RPL303", "RPL304", "RPL305"):
            assert RULES[rule_id].severity is Severity.INFO

    def test_dataflow_family_flags(self):
        # Fixable rules have safe autofixes; opportunity rules are opt-in
        # and never both (an opportunity must not be auto-applied).
        assert RULES["RPL301"].fixable and not RULES["RPL301"].opportunity
        assert RULES["RPL302"].fixable and not RULES["RPL302"].opportunity
        for rule_id in ("RPL303", "RPL304", "RPL305"):
            assert RULES[rule_id].opportunity
            assert not RULES[rule_id].fixable
        for rule_id, rule in RULES.items():
            if not rule_id.startswith("RPL3"):
                assert not rule.fixable and not rule.opportunity
        assert RULES["RPL001"].category == "hazard"
        assert RULES["RPL104"].category == "memspace"
        assert RULES["RPL201"].category == "spec"
        assert RULES["RPL305"].category == "dataflow"


class TestLintBenchmark:
    def test_lints_both_forms(self):
        from repro.workloads.registry import get

        report = lint_benchmark(get("rodinia/kmeans"))
        assert report.pipelines == [
            "rodinia/kmeans", "rodinia/kmeans [limited-copy]",
        ]


class TestRunnerPreflight:
    def _racy_spec(self):
        from repro.workloads.spec import BenchmarkSpec

        return BenchmarkSpec(
            name="racy",
            suite="fixture",
            description="preflight must reject this",
            pc_comm=False,
            pipe_parallel=False,
            regular_pc=False,
            irregular=False,
            sw_queue=False,
            build=racy_pipeline,
        )

    def test_preflight_refuses_racy_pipeline(self):
        from repro.experiments.runner import COPY, SweepRunner
        from repro.sim.engine import SimOptions

        runner = SweepRunner(
            options=SimOptions(scale=1 / 128), preflight=True
        )
        with pytest.raises(LintError):
            runner.run(self._racy_spec(), COPY)

    def test_preflight_off_simulates(self):
        from repro.experiments.runner import COPY, SweepRunner
        from repro.sim.engine import SimOptions

        runner = SweepRunner(options=SimOptions(scale=1 / 128))
        result = runner.run(self._racy_spec(), COPY)
        assert result.roi_s > 0

    def test_preflight_allows_clean_benchmark(self):
        from repro.experiments.runner import LIMITED, SweepRunner
        from repro.sim.engine import SimOptions
        from repro.workloads.registry import get

        runner = SweepRunner(
            options=SimOptions(scale=1 / 128), preflight=True
        )
        result = runner.run(get("rodinia/kmeans"), LIMITED)
        assert result.roi_s > 0

    def test_preflight_memoizes_repeat_lints(self):
        from repro.analysis import default_memo, reset_default_memo
        from repro.experiments.runner import COPY, SweepRunner
        from repro.sim.engine import SimOptions
        from repro.workloads.registry import get

        reset_default_memo()
        try:
            runner = SweepRunner(
                options=SimOptions(scale=1 / 128), preflight=True
            )
            runner.run(get("rodinia/kmeans"), COPY)
            after_first = default_memo().misses
            assert after_first >= 1
            # A fresh runner preflights the same pipeline again: the
            # process-wide memo answers without re-analysing.
            second = SweepRunner(
                options=SimOptions(scale=1 / 128), preflight=True
            )
            second.run(get("rodinia/kmeans"), COPY)
            assert default_memo().misses == after_first
            assert default_memo().hits >= 1
        finally:
            reset_default_memo()
