"""Registry-wide differential tests: fast engine == reference engine.

The vectorized cache implementation (``engine_impl="fast"``, the default
since the flip — ``reference`` is the opt-out baseline) must be
*bit-exact* with the reference model on every benchmark and both pipeline
versions: identical figure inputs, Table II metrics, invariant violations,
and byte-identical v2-full serialization.  This is the contract that lets
the persistent result cache be shared between the two implementations
(``engine_impl`` is deliberately excluded from the cache key — see
:func:`repro.sim.resultcache.cache_key`), which the second half of this
module tests directly.

Because ``stage_memo`` defaults to ``"auto"``, every fast run here
executes with stage-level memoization (:mod:`repro.sim.memo`) enabled
while the reference side runs memo-free — so this matrix is
simultaneously the fast-vs-reference *and* the memo-on-vs-off
differential (the focused memo tests live in tests/test_stage_memo.py).

The full 46x2 matrix runs in CI (``REPRO_EQUIVALENCE_FULL=1``); locally
only a deterministic 8-benchmark sample runs, the rest are skipped (marker
``equivalence_full``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments.parallel import COPY, LIMITED, _simulate_version, _system_for
from repro.sim.engine import SimOptions
from repro.sim.resultcache import ResultCache, cache_key
from repro.sim.serialize import result_to_full_dict, results_identical
from repro.workloads.registry import simulatable_specs

from tests.conftest import TINY_SCALE

#: Benchmarks always exercised locally: the paper's focal four plus one
#: extra per suite, chosen for pattern diversity (graph, spmv, stencil).
SAMPLED_BENCHMARKS = frozenset(
    {
        "rodinia/kmeans",
        "lonestar/bfs",
        "rodinia/srad",
        "parboil/histo",
        "lonestar/mst",
        "pannotia/pr",
        "parboil/spmv",
        "rodinia/backprop",
    }
)

RUN_FULL_MATRIX = bool(os.environ.get("REPRO_EQUIVALENCE_FULL"))

ALL_NAMES = sorted(spec.full_name for spec in simulatable_specs())

PARAMS = [
    pytest.param(
        name,
        version,
        id=f"{name}-{version}",
        marks=[]
        if RUN_FULL_MATRIX or name in SAMPLED_BENCHMARKS
        else [
            pytest.mark.equivalence_full,
            pytest.mark.skip(
                reason="full 46x2 matrix runs with REPRO_EQUIVALENCE_FULL=1"
            ),
        ],
    )
    for name in ALL_NAMES
    for version in (COPY, LIMITED)
]

_SPECS = {spec.full_name: spec for spec in simulatable_specs()}
_DISCRETE = discrete_gpu_system()
_HETEROGENEOUS = heterogeneous_processor()


def _run(name: str, version: str, impl: str):
    options = SimOptions(scale=TINY_SCALE, seed=7, engine_impl=impl)
    system = _system_for(version, _DISCRETE, _HETEROGENEOUS)
    result, _wall = _simulate_version(_SPECS[name], version, system, options)
    return result


@pytest.mark.parametrize("name, version", PARAMS)
def test_fast_engine_is_bit_exact(name, version):
    """Fast and reference SimResults serialize to identical v2-full bytes."""
    reference = _run(name, version, "reference")
    fast = _run(name, version, "fast")
    ref_dict = result_to_full_dict(reference)
    fast_dict = result_to_full_dict(fast)
    assert fast_dict == ref_dict
    # Byte-identical serialization is the cache-sharing contract: the
    # stored gzip payload must not depend on which engine produced it.
    ref_bytes = json.dumps(ref_dict, sort_keys=True).encode()
    fast_bytes = json.dumps(fast_dict, sort_keys=True).encode()
    assert fast_bytes == ref_bytes
    assert results_identical(reference, fast)


def test_fast_is_the_default_engine():
    """The vectorized engine is the default; reference is the opt-out.

    The differential matrix above is what licenses the default: users get
    the fast path, and ``--engine reference`` (or
    ``SimOptions(engine_impl="reference")``) opts back into the readable
    baseline with bit-identical results.
    """
    options = SimOptions()
    assert options.engine_impl == "fast"
    assert options.stage_memo == "auto"


def test_violations_match_on_fault_free_runs():
    """Both engines agree on the (empty) violation list of a clean run."""
    for impl in ("reference", "fast"):
        result = _run("rodinia/kmeans", COPY, impl)
        payload = result_to_full_dict(result)
        assert payload.get("violations", []) == []


class TestResultCacheSharing:
    """A cache entry written by one engine impl serves the other.

    ``engine_impl`` is excluded from the cache key *because* the
    differential suite above proves bit-exactness; these tests pin the
    exclusion and the end-to-end hand-off in both directions.
    """

    def _key(self, impl: str) -> str:
        options = SimOptions(scale=TINY_SCALE, seed=7, engine_impl=impl)
        return cache_key(_SPECS["rodinia/kmeans"], COPY, _DISCRETE, options)

    def test_cache_key_ignores_engine_impl(self):
        assert self._key("reference") == self._key("fast")

    def test_cache_key_still_separates_other_options(self):
        options = SimOptions(scale=TINY_SCALE, seed=8, engine_impl="fast")
        other = cache_key(_SPECS["rodinia/kmeans"], COPY, _DISCRETE, options)
        assert other != self._key("fast")

    @pytest.mark.parametrize(
        "writer, reader", [("reference", "fast"), ("fast", "reference")]
    )
    def test_entry_written_by_one_impl_serves_the_other(
        self, tmp_path, writer, reader
    ):
        cache = ResultCache(tmp_path)
        result = _run("rodinia/kmeans", COPY, writer)
        cache.store(self._key(writer), result, sim_wall_s=0.5)
        entry = cache.load(self._key(reader))
        assert entry is not None
        assert results_identical(entry.result, result)
        # And the served payload equals what the reader would compute.
        assert results_identical(entry.result, _run("rodinia/kmeans", COPY, reader))
