"""Tests for the per-figure experiment harnesses (on a small subset)."""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, table2
from repro.experiments.report import format_csv, format_mapping, format_table
from repro.experiments.runner import (
    COPY,
    LIMITED,
    SweepRunner,
)
from repro.sim.engine import SimOptions
from repro.sim.hierarchy import Component
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE

SUBSET = ("rodinia/kmeans", "lonestar/bfs", "parboil/sgemm")


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(options=SimOptions(scale=TINY_SCALE))


@pytest.fixture(scope="module")
def subset():
    return [get(name) for name in SUBSET]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("A", "Blong"), [(1, 2.5), ("xx", None)])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "2.500" in text
        assert "-" in lines[-1]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("A",), [(1, 2)])

    def test_format_mapping(self):
        text = format_mapping("T", {"key": 1.5})
        assert "key" in text and "1.500" in text

    def test_format_csv(self):
        text = format_csv(("a", "b"), [(1, "x,y"), (2.5, None)])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '1,"x,y"'
        assert lines[2] == "2.5,"

    def test_format_csv_rejects_ragged(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            format_csv(("a",), [(1, 2)])

    def test_format_csv_escapes_quotes(self):
        text = format_csv(("a",), [('say "hi"',)])
        assert text.splitlines()[1] == '"say ""hi"""' 


class TestRunner:
    def test_pair_caches_results(self, runner, subset):
        first = runner.run(subset[0], COPY)
        second = runner.run(subset[0], COPY)
        assert first is second

    def test_versions_differ(self, runner, subset):
        pair = runner.pair(subset[0])
        assert pair.copy.system_kind == "discrete"
        assert pair.limited.system_kind == "heterogeneous"

    def test_unknown_version_rejected(self, runner, subset):
        with pytest.raises(ValueError):
            runner.run(subset[0], "zero-copy")

    def test_sweep_keyed_by_full_name(self, runner, subset):
        sweep = runner.sweep(subset)
        assert set(sweep) == set(SUBSET)


class TestTable2:
    def test_matches_paper(self):
        assert table2.matches_paper(table2.run())

    def test_render_says_match(self):
        assert "MATCH" in table2.render()


class TestFig4:
    def test_limited_footprint_smaller(self, runner, subset):
        rows = fig4.run(runner, subset)
        for row in rows:
            if row.benchmark == "rodinia/kmeans":
                assert row.footprint_ratio < 0.8

    def test_fractions_cover_total(self, runner, subset):
        for row in fig4.run(runner, subset):
            assert sum(row.copy_fractions.values()) == pytest.approx(1.0)

    def test_render(self, runner, subset):
        text = fig4.render(runner, subset)
        assert "Fig. 4" in text and "rodinia/kmeans" in text


class TestFig5:
    def test_copy_accesses_nonzero_in_copy_version(self, runner, subset):
        for row in fig5.run(runner, subset):
            assert row.copy_accesses[Component.COPY] > 0

    def test_limited_version_loses_copy_accesses(self, runner, subset):
        for row in fig5.run(runner, subset):
            assert (
                row.limited_accesses[Component.COPY]
                < row.copy_accesses[Component.COPY]
            )

    def test_total_accesses_drop(self, runner, subset):
        rows = fig5.run(runner, subset)
        stats = fig5.summary(rows)
        assert stats["geomean_access_reduction"] > 0.0

    def test_render_marks_misaligned(self, runner, subset):
        text = fig5.render(runner, subset)
        assert "parboil/sgemm*" in text


class TestFig6:
    def test_runtime_improves_for_copy_heavy(self, runner, subset):
        rows = {r.benchmark: r for r in fig6.run(runner, subset)}
        assert rows["rodinia/kmeans"].runtime_ratio < 0.8

    def test_activity_sums_to_runtime(self, runner, subset):
        for row in fig6.run(runner, subset):
            for shares in (row.copy, row.limited):
                total = (
                    shares.copy_only_s
                    + shares.cpu_only_s
                    + shares.gpu_only_s
                    + shares.overlap_s
                    + shares.idle_s
                )
                assert total == pytest.approx(shares.runtime_s, rel=1e-6)

    def test_copy_version_mostly_serialized(self, runner, subset):
        for row in fig6.run(runner, subset):
            assert row.copy.serial_fraction > 0.8

    def test_render(self, runner, subset):
        assert "Fig. 6" in fig6.render(runner, subset)


class TestFig7:
    def test_estimate_never_exceeds_measured(self, runner, subset):
        for row in fig7.run(runner, subset):
            assert row.copy_estimate.runtime_s <= row.copy_runtime_s * 1.0001
            assert row.limited_estimate.runtime_s <= row.limited_runtime_s * 1.0001

    def test_render(self, runner, subset):
        assert "Eq" not in ""  # placeholder sanity
        assert "Fig. 7" in fig7.render(runner, subset)


class TestFig8:
    def test_migrate_estimate_bounded_by_overlap_components(self, runner, subset):
        for row in fig8.run(runner, subset):
            # Rmc can beat Rco because work moves between cores, but it can
            # never beat the copy-time bound.
            assert row.copy_estimate.runtime_s >= row.copy_estimate.copy_bound_s

    def test_kmeans_copy_bound_on_discrete(self, runner, subset):
        rows = {r.benchmark: r for r in fig8.run(runner, subset)}
        from repro.core.migrate import MigrateBound

        assert rows["rodinia/kmeans"].copy_estimate.bound is MigrateBound.COPY

    def test_render(self, runner, subset):
        assert "Fig. 8" in fig8.render(runner, subset)


class TestFig9:
    def test_classifications_total_matches_log(self, runner, subset):
        for row in fig9.run(runner, subset):
            pair = runner.pair(get(row.benchmark))
            assert row.copy.total == pair.copy.offchip_accesses()
            assert row.limited.total == pair.limited.offchip_accesses()

    def test_graph_benchmark_heavily_contended(self, runner, subset):
        rows = {r.benchmark: r for r in fig9.run(runner, subset)}
        assert rows["lonestar/bfs"].limited.contention_fraction > 0.3

    def test_render_marks_bandwidth_limited(self, runner, subset):
        text = fig9.render(runner, subset)
        assert "lonestar/bfs*" in text
