"""Tests for repro.core.roofline and repro.sim.dram_row."""

import numpy as np
import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.core.roofline import (
    RooflineBound,
    RooflinePoint,
    memory_bound_fraction,
    roofline_report,
)
from repro.sim.dram_row import (
    RANDOM_EFFICIENCY,
    SEQUENTIAL_EFFICIENCY,
    effective_efficiency,
    row_buffer_stats,
    stream_efficiency,
)
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component

from tests.conftest import TINY_SCALE, build_offload_pipeline


def make_point(flops, offchip_bytes, duration=1.0):
    system = discrete_gpu_system()
    return RooflinePoint(
        stage="s",
        component=Component.GPU,
        flops=flops,
        offchip_bytes=offchip_bytes,
        duration_s=duration,
        peak_flops=system.gpu.peak_flops,
        peak_bandwidth=system.gpu_memory.achievable_bandwidth,
    )


class TestRooflinePoint:
    def test_operational_intensity(self):
        point = make_point(flops=1000.0, offchip_bytes=500)
        assert point.operational_intensity == pytest.approx(2.0)

    def test_zero_traffic_means_infinite_intensity(self):
        point = make_point(flops=1000.0, offchip_bytes=0)
        assert point.operational_intensity == float("inf")
        assert point.bound is RooflineBound.COMPUTE

    def test_high_intensity_is_compute_bound(self):
        point = make_point(flops=1e12, offchip_bytes=100)
        assert point.bound is RooflineBound.COMPUTE
        assert point.roof_flops == point.peak_flops

    def test_low_intensity_is_memory_bound(self):
        point = make_point(flops=100.0, offchip_bytes=10_000_000)
        assert point.bound is RooflineBound.MEMORY
        assert point.roof_flops < point.peak_flops

    def test_ridge_point(self):
        system = discrete_gpu_system()
        point = make_point(flops=1.0, offchip_bytes=1)
        expected = system.gpu.peak_flops / system.gpu_memory.achievable_bandwidth
        assert point.ridge_intensity == pytest.approx(expected)

    def test_roof_continuous_at_ridge(self):
        point = make_point(flops=1.0, offchip_bytes=1)
        at_ridge = point.ridge_intensity * point.peak_bandwidth
        assert at_ridge == pytest.approx(point.peak_flops)


class TestRooflineReport:
    def test_skips_copies_and_barriers(self, discrete, tiny_options):
        pipeline = build_offload_pipeline()
        result = simulate(pipeline, discrete, tiny_options)
        points = roofline_report(result, discrete)
        stages = {p.stage for p in points}
        assert not any(s.startswith(("h2d", "d2h")) for s in stages)

    def test_attained_never_far_above_roof(self, discrete, tiny_options):
        pipeline = build_offload_pipeline()
        result = simulate(pipeline, discrete, tiny_options)
        for point in roofline_report(result, discrete):
            # Model noise aside, attained rate stays at or below the roof.
            assert point.attained_flops <= point.roof_flops * 1.5

    def test_memory_bound_fraction_bounds(self, discrete, tiny_options):
        pipeline = build_offload_pipeline()
        result = simulate(pipeline, discrete, tiny_options)
        fraction = memory_bound_fraction(roofline_report(result, discrete))
        assert 0.0 <= fraction <= 1.0

    def test_empty_points(self):
        assert memory_bound_fraction([]) == 0.0


class TestRowBufferStats:
    def test_sequential_stream_all_hits(self):
        blocks = np.arange(64, dtype=np.int64)  # 4 rows of 16 lines
        stats = row_buffer_stats(blocks)
        # 63 transitions, 3 row crossings.
        assert stats.row_hits == 60
        assert stats.hit_fraction == pytest.approx(60 / 64)

    def test_random_stream_few_hits(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 1_000_000, size=5000).astype(np.int64)
        stats = row_buffer_stats(blocks)
        assert stats.hit_fraction < 0.05

    def test_single_access(self):
        stats = row_buffer_stats(np.array([7], dtype=np.int64))
        assert stats.accesses == 1
        assert stats.hit_fraction == 0.0

    def test_empty(self):
        stats = row_buffer_stats(np.empty(0, dtype=np.int64))
        assert stats.hit_fraction == 1.0  # vacuous: no penalty

    def test_row_size_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            row_buffer_stats(np.array([1], dtype=np.int64), row_bytes=200)


class TestEffectiveEfficiency:
    def test_sequential_approaches_upper_pole(self):
        blocks = np.arange(10_000, dtype=np.int64)
        assert stream_efficiency(blocks) > 0.9

    def test_random_approaches_lower_pole(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 10_000_000, size=10_000).astype(np.int64)
        assert stream_efficiency(blocks) < RANDOM_EFFICIENCY + 0.05

    def test_interpolation_bounds(self):
        stats = row_buffer_stats(np.arange(100, dtype=np.int64))
        eff = effective_efficiency(stats)
        assert RANDOM_EFFICIENCY <= eff <= SEQUENTIAL_EFFICIENCY

    def test_bad_poles_rejected(self):
        stats = row_buffer_stats(np.arange(10, dtype=np.int64))
        with pytest.raises(ValueError):
            effective_efficiency(stats, sequential=0.5, random=0.9)


class TestRowModelIntegration:
    def test_random_workload_slows_down_with_row_model(self, tiny_options):
        from repro.pipeline.builder import PipelineBuilder
        from repro.pipeline.patterns import AccessPattern
        from repro.pipeline.stage import BufferAccess
        from repro.units import MB

        b = PipelineBuilder("t")
        b.buffer("big", 32 * MB)
        b.copy_h2d("big")
        # Memory-bound random kernel: tiny FLOPs, huge random traffic.
        b.gpu_kernel(
            "k",
            flops=1e3,
            reads=[BufferAccess("big_dev", AccessPattern.RANDOM, passes=3.0)],
        )
        pipeline = b.build()
        system = discrete_gpu_system()
        flat = simulate(pipeline, system, SimOptions(scale=TINY_SCALE))
        row = simulate(
            pipeline, system, SimOptions(scale=TINY_SCALE, dram_row_model=True)
        )
        assert row.roi_s > flat.roi_s

    def test_streaming_workload_speeds_up_with_row_model(self, tiny_options):
        from repro.pipeline.builder import PipelineBuilder
        from repro.pipeline.stage import BufferAccess
        from repro.units import MB

        b = PipelineBuilder("t")
        b.buffer("big", 32 * MB)
        b.copy_h2d("big")
        b.gpu_kernel("k", flops=1e3, reads=[BufferAccess("big_dev", passes=3.0)])
        pipeline = b.build()
        system = discrete_gpu_system()
        flat = simulate(pipeline, system, SimOptions(scale=TINY_SCALE))
        row = simulate(
            pipeline, system, SimOptions(scale=TINY_SCALE, dram_row_model=True)
        )
        # Sequential sweeps beat the flat 82% assumption.
        assert row.roi_s <= flat.roi_s
