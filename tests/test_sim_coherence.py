"""Tests for the MESI coherence reference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.coherence import BusOp, MesiDirectory, MesiState


class TestBasicProtocol:
    def test_cold_read_is_exclusive(self):
        directory = MesiDirectory(2)
        op = directory.read(0, 100)
        assert op is BusOp.READ_MISS_MEMORY
        assert directory.state(0, 100) is MesiState.EXCLUSIVE

    def test_read_hit_is_silent(self):
        directory = MesiDirectory(2)
        directory.read(0, 100)
        assert directory.read(0, 100) is None

    def test_second_reader_shares(self):
        directory = MesiDirectory(2)
        directory.read(0, 100)
        op = directory.read(1, 100)
        assert op is BusOp.READ_MISS_CACHE
        assert directory.state(0, 100) is MesiState.SHARED
        assert directory.state(1, 100) is MesiState.SHARED

    def test_cold_write_is_modified(self):
        directory = MesiDirectory(2)
        op = directory.write(0, 100)
        assert op is BusOp.WRITE_MISS_MEMORY
        assert directory.state(0, 100) is MesiState.MODIFIED

    def test_exclusive_to_modified_is_silent(self):
        directory = MesiDirectory(2)
        directory.read(0, 100)
        assert directory.write(0, 100) is None
        assert directory.state(0, 100) is MesiState.MODIFIED

    def test_shared_write_upgrades_and_invalidates(self):
        directory = MesiDirectory(3)
        directory.read(0, 100)
        directory.read(1, 100)
        directory.read(2, 100)
        op = directory.write(1, 100)
        assert op is BusOp.UPGRADE
        assert directory.state(0, 100) is MesiState.INVALID
        assert directory.state(2, 100) is MesiState.INVALID
        assert directory.state(1, 100) is MesiState.MODIFIED

    def test_write_miss_steals_from_owner(self):
        directory = MesiDirectory(2)
        directory.write(0, 100)
        op = directory.write(1, 100)
        assert op is BusOp.WRITE_MISS_CACHE
        assert directory.state(0, 100) is MesiState.INVALID
        assert directory.state(1, 100) is MesiState.MODIFIED

    def test_reader_pulls_dirty_line_to_shared(self):
        directory = MesiDirectory(2)
        directory.write(0, 100)
        op = directory.read(1, 100)
        assert op is BusOp.READ_MISS_CACHE
        assert directory.state(0, 100) is MesiState.SHARED
        assert directory.state(1, 100) is MesiState.SHARED

    def test_dirty_eviction_writes_back(self):
        directory = MesiDirectory(2)
        directory.write(0, 100)
        assert directory.evict(0, 100) is BusOp.WRITEBACK
        assert directory.state(0, 100) is MesiState.INVALID

    def test_clean_eviction_silent(self):
        directory = MesiDirectory(2)
        directory.read(0, 100)
        assert directory.evict(0, 100) is None

    def test_modified_write_hit_silent(self):
        directory = MesiDirectory(2)
        directory.write(0, 100)
        assert directory.write(0, 100) is None

    def test_owner_and_holders(self):
        directory = MesiDirectory(3)
        directory.write(2, 7)
        assert directory.owner(7) == 2
        assert directory.holders(7) == (2,)
        directory.read(0, 7)
        assert directory.owner(7) is None
        assert set(directory.holders(7)) == {0, 2}

    def test_unknown_cache_rejected(self):
        directory = MesiDirectory(2)
        with pytest.raises(ValueError):
            directory.read(5, 0)
        with pytest.raises(ValueError):
            MesiDirectory(0)


class TestStats:
    def test_memory_accesses_counted(self):
        directory = MesiDirectory(2)
        directory.read(0, 1)       # memory read
        directory.write(1, 2)      # memory write miss
        directory.write(1, 2)      # silent
        directory.evict(1, 2)      # writeback
        assert directory.stats.memory_accesses == 3

    def test_cache_to_cache_counted(self):
        directory = MesiDirectory(2)
        directory.write(0, 1)
        directory.read(1, 1)       # cache-to-cache
        assert directory.stats.cache_to_cache_transfers == 1

    def test_producer_consumer_avoids_memory(self):
        # The paper's heterogeneous-processor benefit in protocol terms:
        # GPU (cache 1) produces, CPU (cache 0) consumes, all on chip.
        directory = MesiDirectory(2)
        for line in range(100):
            directory.write(1, line)
        before = directory.stats.memory_accesses
        for line in range(100):
            directory.read(0, line)
        assert directory.stats.memory_accesses == before
        assert directory.stats.cache_to_cache_transfers == 100


# --- property tests ----------------------------------------------------------

operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "evict"]),
        st.integers(0, 3),   # cache id
        st.integers(0, 20),  # line
    ),
    min_size=1,
    max_size=300,
)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_invariants_hold_under_random_traffic(ops):
    directory = MesiDirectory(4)
    for op, cache, line in ops:
        getattr(directory, op)(cache, line)
        directory.check_invariants()


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_writer_always_ends_modified(ops):
    directory = MesiDirectory(4)
    for op, cache, line in ops:
        getattr(directory, op)(cache, line)
        if op == "write":
            assert directory.state(cache, line) is MesiState.MODIFIED


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_no_action_on_line_leaves_it_invalid(ops):
    directory = MesiDirectory(4)
    untouched_line = 999
    for op, cache, line in ops:
        getattr(directory, op)(cache, line)
    for cache in range(4):
        assert directory.state(cache, untouched_line) is MesiState.INVALID
