"""Tests for ``repro bench``: exit codes, schema, comparison, determinism.

Exit-code contract: 0 on success (including a clean ``--compare``), 1 when
the comparison finds a regression beyond tolerance, 2 on usage errors
(bad tolerance/reps, unreadable or schema-invalid baseline).  Usage errors
are all detected *before* any measurement, so those tests are instant; the
success/regression paths stub :func:`repro.bench.collect_report` with a
canned report.  One end-to-end test runs the real harness twice under a
deterministic fake clock and requires byte-identical reports.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchConfig,
    collect_report,
    comparable_view,
    compare_reports,
    validate_report,
    write_report,
)
from repro.cli import main


def make_report(p50s, **overrides):
    """A minimal schema-valid report with the given metric p50s."""
    metrics = {
        name: {
            "unit": "s",
            "reps": 1,
            "p50": p50,
            "p95": p50,
            "min": p50,
            "mean": p50,
            "samples": [p50],
        }
        for name, p50 in p50s.items()
    }
    report = {
        "schema": BENCH_SCHEMA,
        "git_sha": None,
        "machine": {"platform": "test"},
        "config": {},
        "metrics": metrics,
        "derived": {},
        "meta": {"created_unix": 0.0},
    }
    report.update(overrides)
    return report


class FakeClock:
    """Monotonic fake clock: every measured interval is exactly 1.0s."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


# -- usage errors (exit 2), all checked before any measurement runs --------


def test_nonpositive_tolerance_exits_2(capsys):
    assert main(["bench", "--tolerance", "0"]) == 2
    assert "--tolerance must be positive" in capsys.readouterr().err


def test_negative_tolerance_exits_2():
    assert main(["bench", "--tolerance", "-1.5"]) == 2


def test_zero_reps_exits_2(capsys):
    assert main(["bench", "--reps", "0"]) == 2
    assert "--reps must be at least 1" in capsys.readouterr().err


def test_missing_baseline_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["bench", "--compare", str(missing)]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_unparseable_baseline_exits_2(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["bench", "--compare", str(bad)]) == 2


def test_schema_invalid_baseline_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/v9", "metrics": {}}))
    assert main(["bench", "--compare", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "invalid baseline" in err
    assert "schema mismatch" in err


# -- success and regression paths (canned collect_report) ------------------


@pytest.fixture
def canned(monkeypatch):
    """Replace the measurement with a canned current report."""

    def set_current(report):
        monkeypatch.setattr("repro.bench.collect_report", lambda config: report)

    return set_current


def test_compare_within_tolerance_exits_0(tmp_path, canned, capsys):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps(make_report({"m.wall_s": 1.0})))
    canned(make_report({"m.wall_s": 1.4}))
    assert main(["bench", "--compare", str(baseline), "--tolerance", "1.5"]) == 0
    assert "no regressions across 1 shared metric(s)" in capsys.readouterr().out


def test_compare_regression_exits_1(tmp_path, canned, capsys):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps(make_report({"m.wall_s": 1.0})))
    canned(make_report({"m.wall_s": 1.6}))
    assert main(["bench", "--compare", str(baseline), "--tolerance", "1.5"]) == 1
    err = capsys.readouterr().err
    assert "1 regression(s)" in err
    assert "m.wall_s" in err


def test_compare_improvement_exits_0(tmp_path, canned):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps(make_report({"m.wall_s": 1.0})))
    canned(make_report({"m.wall_s": 0.2}))
    assert main(["bench", "--compare", str(baseline)]) == 0


def test_unshared_metrics_never_regress(tmp_path, canned):
    """A --quick run's subset compares clean against a full baseline."""
    baseline = tmp_path / "base.json"
    baseline.write_text(
        json.dumps(make_report({"shared.wall_s": 1.0, "full_only.wall_s": 1.0}))
    )
    canned(make_report({"shared.wall_s": 1.0, "quick_only.wall_s": 99.0}))
    assert main(["bench", "--compare", str(baseline), "--tolerance", "1.5"]) == 0


def test_output_writes_valid_report(tmp_path, canned):
    out = tmp_path / "report.json"
    canned(make_report({"m.wall_s": 1.0}))
    assert main(["bench", "-o", str(out)]) == 0
    assert validate_report(json.loads(out.read_text())) == []


def test_no_compare_exits_0(canned):
    canned(make_report({"m.wall_s": 1.0}))
    assert main(["bench"]) == 0


# -- schema / comparison units ---------------------------------------------


def test_write_report_round_trips(tmp_path):
    report = make_report({"a.wall_s": 0.5, "b.wall_s": 2.0})
    path = tmp_path / "r.json"
    write_report(report, path)
    loaded = json.loads(path.read_text())
    assert loaded == report
    assert validate_report(loaded) == []


def test_validate_report_catches_defects():
    assert validate_report([]) != []
    assert validate_report({}) != []
    report = make_report({"m.wall_s": 1.0})
    report["metrics"]["m.wall_s"]["reps"] = 3  # disagrees with 1 sample
    assert any("disagrees" in p for p in validate_report(report))
    assert validate_report(make_report({"m.wall_s": 1.0})) == []


def test_validate_accepts_legacy_top_level_created_unix():
    """Baselines written before the ``meta`` sub-object still validate."""
    legacy = make_report({"m.wall_s": 1.0})
    del legacy["meta"]
    legacy["created_unix"] = 0.0
    assert validate_report(legacy) == []


def test_validate_requires_a_timestamp_somewhere():
    report = make_report({"m.wall_s": 1.0})
    del report["meta"]
    assert any("created_unix" in p for p in validate_report(report))
    bad = make_report({"m.wall_s": 1.0}, meta={"created_unix": "yesterday"})
    assert any("must be numeric" in p for p in validate_report(bad))


def test_comparable_view_strips_provenance():
    report = make_report({"m.wall_s": 1.0})
    view = comparable_view(report)
    assert "meta" not in view and "created_unix" not in view
    legacy = make_report({"m.wall_s": 1.0})
    del legacy["meta"]
    legacy["created_unix"] = 77.0
    assert comparable_view(legacy) == view


def test_compare_reports_tolerance_boundary():
    base = make_report({"m.wall_s": 1.0})
    # Exactly at tolerance is NOT a regression (strict inequality).
    at = compare_reports(base, make_report({"m.wall_s": 1.5}), 1.5)
    assert at.ok and len(at.compared) == 1
    over = compare_reports(base, make_report({"m.wall_s": 1.5000001}), 1.5)
    assert not over.ok
    with pytest.raises(ValueError):
        compare_reports(base, base, 0.0)


# -- determinism of the real harness under an injected clock ---------------


def test_collect_report_is_deterministic_under_fake_clock():
    """Same config + same fake clock => byte-identical reports."""
    config = BenchConfig(
        scale=1 / 128,
        seed=7,
        reps=1,
        quick=True,
        benchmarks=("rodinia/kmeans",),
        quick_sweep=("rodinia/kmeans",),
        hit_reps=3,
    )
    reports = [
        collect_report(config, clock=FakeClock(), now=lambda: 1234.5)
        for _ in range(2)
    ]
    first, second = (json.dumps(r, sort_keys=True) for r in reports)
    assert first == second
    assert validate_report(reports[0]) == []
    assert "sweep.paired.wall_s" in reports[0]["metrics"]
    assert reports[0]["derived"]["memo.hit_rate"] > 0
    # Every measured interval under the fake clock is exactly one tick.
    for record in reports[0]["metrics"].values():
        assert all(s == 1.0 for s in record["samples"])


def test_comparable_payload_is_byte_stable_across_wall_clock():
    """Two runs differing only in wall-clock time produce byte-identical
    comparable payloads: the timestamp is confined to ``meta``."""
    config = BenchConfig(
        scale=1 / 128,
        seed=7,
        reps=1,
        quick=True,
        benchmarks=("rodinia/kmeans",),
        quick_sweep=("rodinia/kmeans",),
        hit_reps=3,
    )
    early = collect_report(config, clock=FakeClock(), now=lambda: 1.0)
    late = collect_report(config, clock=FakeClock(), now=lambda: 2.0e9)
    assert early["meta"]["created_unix"] != late["meta"]["created_unix"]
    assert json.dumps(comparable_view(early), sort_keys=True) == json.dumps(
        comparable_view(late), sort_keys=True
    )
