"""Behavioural tests for named benchmarks the paper singles out.

Each test pins one of the paper's per-benchmark observations to the
corresponding workload model, at tiny scale.
"""

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import StageKind
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.workloads.registry import get

from tests.conftest import TINY_SCALE


@pytest.fixture(scope="module")
def options():
    return SimOptions(scale=TINY_SCALE)


def run_pair(name, options):
    pipeline = get(name).pipeline()
    copy_result = simulate(pipeline, discrete_gpu_system(), options)
    limited_result = simulate(
        remove_copies(pipeline), heterogeneous_processor(), options
    )
    return copy_result, limited_result


class TestKmeans:
    def test_copies_dominate_baseline(self, options):
        copy_result, _ = run_pair("rodinia/kmeans", options)
        copy_share = copy_result.busy_time(Component.COPY) / copy_result.roi_s
        assert copy_share > 0.45  # paper: over 50%

    def test_gpu_underutilized_in_baseline(self, options):
        copy_result, _ = run_pair("rodinia/kmeans", options)
        assert copy_result.utilization(Component.GPU) < 0.30  # paper: 18%

    def test_gpu_does_vast_majority_of_flops(self, options):
        copy_result, _ = run_pair("rodinia/kmeans", options)
        flops = copy_result.flops_by_component
        share = flops[Component.GPU] / (
            flops[Component.GPU] + flops[Component.CPU]
        )
        assert share > 0.9  # paper: 95%

    def test_port_roughly_halves_runtime(self, options):
        copy_result, limited_result = run_pair("rodinia/kmeans", options)
        assert limited_result.roi_s / copy_result.roi_s == pytest.approx(
            0.5, abs=0.12
        )


class TestSrad:
    def test_large_gpu_temporaries(self):
        pipeline = get("rodinia/srad").pipeline()
        temps = [b for b in pipeline.buffers.values() if b.temporary]
        assert sum(b.size_bytes for b in temps) >= pipeline.footprint_bytes * 0.3

    def test_pagefault_serialization_slowdown(self, options):
        copy_result, limited_result = run_pair("rodinia/srad", options)
        gpu_copy = copy_result.busy_time(Component.GPU)
        gpu_limited = limited_result.busy_time(Component.GPU)
        assert gpu_limited / gpu_copy > 4.0  # paper: 7x


class TestDwt:
    def test_cpu_execution_dominates_baseline(self, options):
        copy_result, _ = run_pair("rodinia/dwt", options)
        cpu = copy_result.busy_time(Component.CPU)
        gpu = copy_result.busy_time(Component.GPU)
        assert cpu > gpu  # paper: CPU-dominated, big migration gains

    def test_quantize_stages_migratable(self):
        pipeline = get("rodinia/dwt").pipeline()
        quantize = pipeline.stage("quantize_0")
        assert quantize.kind is StageKind.CPU and quantize.migratable


class TestMummer:
    def test_pointer_chasing_tree_traversal(self):
        pipeline = get("rodinia/mummer").pipeline()
        align = pipeline.stage("align")
        patterns = {a.pattern for a in align.reads}
        assert AccessPattern.POINTER_CHASE in patterns

    def test_not_pipeline_parallelizable(self):
        assert not get("rodinia/mummer").pipe_parallel

    def test_cpu_disk_read_stage_exists(self):
        pipeline = get("rodinia/mummer").pipeline()
        assert pipeline.stage("disk_read").kind is StageKind.CPU


class TestBarnesHut:
    def test_copies_survive_porting(self):
        pipeline = get("lonestar/bh").pipeline()
        limited = remove_copies(pipeline)
        assert len(limited.copy_stages) == len(pipeline.copy_stages)

    def test_tree_temporary_dominates_gpu_footprint(self):
        pipeline = get("lonestar/bh").pipeline()
        tree = pipeline.buffers["tree"]
        assert tree.temporary
        assert tree.size_bytes > pipeline.buffers["bodies"].size_bytes


class TestSsspWln:
    def test_numerous_serialized_kernels(self):
        # Paper: sssp_wln has numerous serialized kernels and copies, so
        # Cserial matters; it runs more iterations than its siblings.
        wln = get("lonestar/sssp_wln").pipeline()
        sssp = get("lonestar/sssp").pipeline()
        wln_kernels = len(wln.stages_of_kind(StageKind.GPU_KERNEL))
        sssp_kernels = len(sssp.stages_of_kind(StageKind.GPU_KERNEL))
        assert wln_kernels > sssp_kernels

    def test_cserial_nonzero(self, options):
        copy_result, _ = run_pair("lonestar/sssp_wln", options)
        assert copy_result.serial_launch_time() > 0


class TestStreamcluster:
    def test_pgain_stages_migratable(self):
        pipeline = get("rodinia/strmclstr").pipeline()
        pgain = pipeline.stage("pgain_0")
        assert pgain.kind is StageKind.CPU and pgain.migratable

    def test_broadcast_centres(self):
        pipeline = get("rodinia/strmclstr").pipeline()
        dist = pipeline.stage("dist_0")
        broadcast = [a for a in dist.reads if a.broadcast]
        assert broadcast and broadcast[0].pattern is AccessPattern.BROADCAST


class TestCutcpAndFft:
    def test_residual_copies_remain(self):
        for name in ("parboil/cutcp", "parboil/fft"):
            limited = remove_copies(get(name).pipeline())
            assert len(limited.copy_stages) >= 2, name

    def test_fft_has_double_buffer_scratch(self):
        pipeline = get("parboil/fft").pipeline()
        assert pipeline.buffers["scratch"].temporary

    def test_fft_cpu_reorder_migratable(self):
        pipeline = get("parboil/fft").pipeline()
        assert pipeline.stage("reorder").migratable


class TestGraphSuites:
    @pytest.mark.parametrize(
        "name", ["lonestar/bfs", "pannotia/pr", "parboil/spmv"]
    )
    def test_copy_accesses_small_fraction(self, name, options):
        copy_result, _ = run_pair(name, options)
        accesses = copy_result.offchip_by_component()
        fraction = accesses[Component.COPY] / sum(accesses.values())
        assert fraction < 0.12  # paper: at most ~5% at full scale

    def test_bfs_touches_under_half_the_data(self, options):
        from repro.core.footprint import footprint_breakdown

        copy_result, _ = run_pair("lonestar/bfs", options)
        breakdown = footprint_breakdown(copy_result)
        copied = breakdown.bytes_touched_by(Component.COPY)
        cores = max(
            breakdown.bytes_touched_by(Component.CPU),
            breakdown.bytes_touched_by(Component.GPU),
        )
        assert cores < copied * 0.6
