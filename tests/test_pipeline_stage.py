"""Tests for repro.pipeline.stage and repro.pipeline.buffers."""

import pytest

from repro.pipeline.buffers import Buffer, MemorySpace
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import (
    FULL_REGION,
    BufferAccess,
    Region,
    Stage,
    StageKind,
    copy_stage,
)


class TestBuffer:
    def test_basic(self):
        buf = Buffer("data", 4096)
        assert buf.space is MemorySpace.CPU
        assert not buf.is_mirror

    def test_mirror_must_be_gpu_space(self):
        with pytest.raises(ValueError, match="GPU space"):
            Buffer("data_dev", 4096, space=MemorySpace.CPU, mirror_of="data")

    def test_mirror_cannot_self_reference(self):
        with pytest.raises(ValueError, match="mirror itself"):
            Buffer("x", 4096, space=MemorySpace.GPU, mirror_of="x")

    def test_rejects_empty_name_and_bad_size(self):
        with pytest.raises(ValueError):
            Buffer("", 4096)
        with pytest.raises(ValueError):
            Buffer("x", 0)

    def test_scaled_floors_at_one_granule(self):
        buf = Buffer("x", 4096)
        assert buf.scaled(1e-9).size_bytes == 128

    def test_scaled_preserves_flags(self):
        buf = Buffer("x", 1 << 20, temporary=True, cpu_line_aligned=False)
        small = buf.scaled(0.5)
        assert small.temporary and not small.cpu_line_aligned
        assert small.size_bytes == 1 << 19


class TestRegion:
    def test_full_region(self):
        assert FULL_REGION.span == 1.0

    def test_subrange_partitions_exactly(self):
        parts = [FULL_REGION.subrange(i, 4) for i in range(4)]
        assert parts[0].start == 0.0
        assert parts[-1].end == 1.0
        for left, right in zip(parts, parts[1:]):
            assert left.end == pytest.approx(right.start)

    def test_subrange_of_subrange(self):
        inner = Region(0.25, 0.75).subrange(1, 2)
        assert inner.start == pytest.approx(0.5)
        assert inner.end == pytest.approx(0.75)

    def test_invalid_regions(self):
        with pytest.raises(ValueError):
            Region(0.5, 0.5)
        with pytest.raises(ValueError):
            Region(-0.1, 0.5)
        with pytest.raises(ValueError):
            Region(0.0, 1.1)

    def test_subrange_rejects_bad_index(self):
        with pytest.raises(ValueError):
            FULL_REGION.subrange(4, 4)
        with pytest.raises(ValueError):
            FULL_REGION.subrange(0, 0)


class TestBufferAccess:
    def test_defaults(self):
        access = BufferAccess("data")
        assert access.pattern is AccessPattern.STREAMING
        assert access.fraction == 1.0
        assert access.passes == 1.0

    def test_chunk_splits_region(self):
        access = BufferAccess("data")
        chunk = access.chunk(1, 4)
        assert chunk.region.start == pytest.approx(0.25)
        assert chunk.region.end == pytest.approx(0.5)

    def test_broadcast_access_not_split(self):
        access = BufferAccess("centres", broadcast=True)
        assert access.chunk(1, 4) is access

    def test_single_chunk_is_identity(self):
        access = BufferAccess("data")
        assert access.chunk(0, 1) is access

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferAccess("x", fraction=0.0)
        with pytest.raises(ValueError):
            BufferAccess("x", fraction=1.5)
        with pytest.raises(ValueError):
            BufferAccess("x", passes=0.0)


class TestStage:
    def test_gpu_kernel(self):
        stage = Stage(
            name="k",
            kind=StageKind.GPU_KERNEL,
            flops=1e9,
            reads=(BufferAccess("a"),),
            writes=(BufferAccess("b"),),
        )
        assert stage.buffers == ("a", "b")
        assert stage.logical_name == "k"

    def test_buffers_deduplicated_in_order(self):
        stage = Stage(
            name="k",
            kind=StageKind.GPU_KERNEL,
            reads=(BufferAccess("a"), BufferAccess("b")),
            writes=(BufferAccess("a"),),
        )
        assert stage.buffers == ("a", "b")

    def test_logical_name_follows_parent(self):
        stage = Stage(name="k_c3", kind=StageKind.CPU, parent="k")
        assert stage.logical_name == "k"

    def test_copy_requires_src_dst(self):
        with pytest.raises(ValueError, match="src and dst"):
            Stage(name="c", kind=StageKind.COPY)

    def test_copy_cannot_have_flops(self):
        with pytest.raises(ValueError, match="FLOPs"):
            Stage(name="c", kind=StageKind.COPY, flops=1.0, src="a", dst="b")

    def test_non_copy_cannot_be_mirror_copy(self):
        with pytest.raises(ValueError, match="mirror"):
            Stage(name="k", kind=StageKind.CPU, mirror_copy=True)

    def test_non_copy_cannot_have_src_dst(self):
        with pytest.raises(ValueError, match="src/dst"):
            Stage(name="k", kind=StageKind.CPU, src="a")

    def test_efficiency_and_occupancy_bounds(self):
        with pytest.raises(ValueError):
            Stage(name="k", kind=StageKind.CPU, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            Stage(name="k", kind=StageKind.CPU, occupancy=1.5)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Stage(name="k", kind=StageKind.CPU, flops=-1.0)


class TestCopyStageHelper:
    def test_copy_stage_reads_src_writes_dst(self):
        stage = copy_stage("c", "host", "dev")
        assert stage.kind is StageKind.COPY
        assert stage.reads[0].buffer == "host"
        assert stage.writes[0].buffer == "dev"
        assert stage.mirror_copy

    def test_non_mirror_copy(self):
        stage = copy_stage("c", "a", "b", mirror=False)
        assert not stage.mirror_copy
