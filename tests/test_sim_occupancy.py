"""Tests for repro.sim.occupancy (the CUDA-style occupancy calculator)."""

import pytest

from repro.config.components import GpuConfig
from repro.pipeline.stage import KernelResources
from repro.sim.occupancy import (
    OccupancyLimiter,
    compute_occupancy,
    derive_stage_occupancy,
)
from repro.units import KB

GPU = GpuConfig()  # Table I: 8 CTAs, 48 warps, 32k regs, 48kB scratch


class TestLimiters:
    def test_lean_kernel_limited_by_cta_slots(self):
        # Tiny CTAs with tiny state: the 8-CTA hardware limit binds.
        report = compute_occupancy(
            GPU, KernelResources(threads_per_cta=64, registers_per_thread=8)
        )
        assert report.limiter is OccupancyLimiter.CTA_SLOTS
        assert report.concurrent_ctas == 8
        assert report.active_warps == 16  # 8 CTAs x 2 warps

    def test_warp_slot_limit(self):
        # 512-thread CTAs (16 warps each): 48 warp slots cap us at 3 CTAs.
        report = compute_occupancy(
            GPU, KernelResources(threads_per_cta=512, registers_per_thread=8)
        )
        assert report.limiter is OccupancyLimiter.WARP_SLOTS
        assert report.concurrent_ctas == 3
        assert report.active_warps == 48
        assert report.occupancy == pytest.approx(1.0)

    def test_register_limit(self):
        # 256 threads x 40 regs = 10240 regs/CTA -> 3 CTAs in 32k regs.
        report = compute_occupancy(
            GPU, KernelResources(threads_per_cta=256, registers_per_thread=40)
        )
        assert report.limiter is OccupancyLimiter.REGISTERS
        assert report.concurrent_ctas == 3
        assert report.occupancy == pytest.approx(24 / 48)

    def test_scratch_limit(self):
        report = compute_occupancy(
            GPU,
            KernelResources(
                threads_per_cta=64,
                registers_per_thread=8,
                scratch_bytes_per_cta=24 * KB,
            ),
        )
        assert report.limiter is OccupancyLimiter.SCRATCH
        assert report.concurrent_ctas == 2

    def test_full_occupancy_config(self):
        # 8 CTAs x 6 warps = 48 warps: perfectly fills the core.
        report = compute_occupancy(
            GPU, KernelResources(threads_per_cta=192, registers_per_thread=20)
        )
        assert report.occupancy == pytest.approx(1.0)

    def test_active_warps_never_exceed_slots(self):
        for threads in (32, 64, 128, 256, 512, 1024):
            for regs in (8, 16, 32, 64):
                report = compute_occupancy(
                    GPU,
                    KernelResources(
                        threads_per_cta=threads, registers_per_thread=regs
                    ),
                )
                assert 0 <= report.active_warps <= GPU.warps_per_core


class TestDeriveStageOccupancy:
    def test_declared_occupancy_is_a_ceiling(self):
        lean = KernelResources(threads_per_cta=192, registers_per_thread=20)
        assert derive_stage_occupancy(GPU, lean, declared_occupancy=0.3) == 0.3

    def test_resources_bind_below_declaration(self):
        fat = KernelResources(threads_per_cta=256, registers_per_thread=40)
        derived = derive_stage_occupancy(GPU, fat, declared_occupancy=1.0)
        assert derived == pytest.approx(0.5)

    def test_oversized_kernel_rejected(self):
        giant = KernelResources(
            threads_per_cta=256,
            registers_per_thread=24,
            scratch_bytes_per_cta=64 * KB,  # exceeds 48kB scratch
        )
        with pytest.raises(ValueError, match="do not fit"):
            derive_stage_occupancy(GPU, giant)


class TestResourceValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            KernelResources(threads_per_cta=0)
        with pytest.raises(ValueError):
            KernelResources(registers_per_thread=0)
        with pytest.raises(ValueError):
            KernelResources(scratch_bytes_per_cta=-1)


class TestEngineIntegration:
    def test_resource_limited_kernel_runs_slower(self, discrete, tiny_options):
        from repro.pipeline.builder import PipelineBuilder
        from repro.sim.engine import simulate
        from repro.units import MB

        def build(resources):
            b = PipelineBuilder("t")
            b.buffer("a", 8 * MB)
            b.copy_h2d("a")
            b.gpu_kernel(
                "k", flops=5e8, reads=["a_dev"], efficiency=0.9,
                resources=resources,
            )
            return b.build()

        lean = simulate(
            build(KernelResources(threads_per_cta=192, registers_per_thread=20)),
            discrete,
            tiny_options,
        )
        fat = simulate(
            build(KernelResources(threads_per_cta=256, registers_per_thread=64)),
            discrete,
            tiny_options,
        )
        assert fat.roi_s > lean.roi_s

    def test_resources_on_cpu_stage_rejected(self):
        from repro.pipeline.stage import Stage, StageKind

        with pytest.raises(ValueError, match="GPU kernels"):
            Stage(name="c", kind=StageKind.CPU, resources=KernelResources())
