"""Serve request validation: normalization, content hashing, 4xx shapes.

Every rejection class maps to a distinct (status, code) pair and a stable
JSON error body — the golden fixtures under ``tests/fixtures/serve/`` pin
the exact payloads so a refactor cannot silently change what clients see.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.serve.schemas import (
    ERROR_SCHEMA,
    VERSIONS,
    JobSpec,
    JobValidationError,
    validate_job,
)
from repro.workloads import registry
from repro.workloads.spec import BenchmarkSpec

KMEANS = "rodinia/kmeans"
BFS = "lonestar/bfs"
#: Registered in Table II but carrying no pipeline model.
NOT_SIMULATABLE = "lonestar/bfs_atomic"


def _validate(body, **kwargs):
    kwargs.setdefault("lint", False)  # preflight covered separately below
    return validate_job(body, **kwargs)


def _rejection(body, **kwargs) -> JobValidationError:
    with pytest.raises(JobValidationError) as excinfo:
        _validate(body, **kwargs)
    return excinfo.value


class TestNormalization:
    def test_minimal_sweep(self):
        spec = _validate({"kind": "sweep", "benchmarks": [KMEANS]})
        assert spec.kind == "sweep"
        assert spec.benchmarks == (KMEANS,)
        assert spec.versions == VERSIONS
        assert spec.scale == 1.0  # the default_scale default
        assert spec.seed == 0
        assert spec.runs == 2

    def test_default_scale_flows_through(self):
        spec = _validate(
            {"kind": "sweep", "benchmarks": [KMEANS]}, default_scale=1 / 64
        )
        assert spec.scale == 1 / 64

    def test_sweep_without_benchmarks_covers_all_simulatable(self):
        spec = _validate({"kind": "sweep"})
        expected = sorted(s.full_name for s in registry.simulatable_specs())
        assert list(spec.benchmarks) == expected
        assert spec.runs == 2 * len(expected)

    def test_benchmarks_sorted_and_deduplicated(self):
        spec = _validate({"kind": "sweep", "benchmarks": [KMEANS, BFS, KMEANS]})
        assert spec.benchmarks == (BFS, KMEANS)

    def test_short_names_resolve(self):
        spec = _validate({"kind": "simulate", "benchmark": "kmeans"})
        assert spec.benchmarks == (KMEANS,)

    def test_simulate_single_version(self):
        spec = _validate(
            {"kind": "simulate", "benchmark": KMEANS, "version": "copy"}
        )
        assert spec.versions == ("copy",)
        assert spec.runs == 1

    def test_simulate_defaults_to_both_versions(self):
        spec = _validate({"kind": "simulate", "benchmark": KMEANS})
        assert spec.versions == VERSIONS

    def test_advise_always_both_versions(self):
        spec = _validate({"kind": "advise", "benchmark": KMEANS})
        assert spec.versions == VERSIONS


class TestContentHash:
    def body(self, **overrides):
        body = {"kind": "sweep", "benchmarks": [KMEANS, BFS], "seed": 3}
        body.update(overrides)
        return body

    def test_deterministic(self):
        a = _validate(self.body()).content_hash()
        b = _validate(self.body()).content_hash()
        assert a == b

    def test_benchmark_order_irrelevant(self):
        a = _validate(self.body(benchmarks=[KMEANS, BFS])).content_hash()
        b = _validate(self.body(benchmarks=[BFS, KMEANS])).content_hash()
        assert a == b

    def test_engine_knobs_excluded(self):
        """reference/fast and memo on/off runs are bit-identical, so jobs
        differing only in those knobs must coalesce (mirrors cache_key)."""
        base = _validate(self.body()).content_hash()
        assert _validate(self.body(engine="reference")).content_hash() == base
        assert _validate(self.body(stage_memo="off")).content_hash() == base

    def test_result_determining_fields_included(self):
        base = _validate(self.body()).content_hash()
        assert _validate(self.body(seed=4)).content_hash() != base
        assert _validate(self.body(scale=0.5)).content_hash() != base
        assert (
            _validate(self.body(benchmarks=[KMEANS])).content_hash() != base
        )

    def test_kind_included(self):
        sweep = _validate(
            {"kind": "sweep", "benchmarks": [KMEANS]}
        ).content_hash()
        advise = _validate(
            {"kind": "advise", "benchmark": KMEANS}
        ).content_hash()
        assert sweep != advise


class TestRejections:
    @pytest.mark.parametrize(
        "body",
        [
            None,
            [],
            "sweep",
            {"kind": "resimulate"},
            {},
            {"kind": "sweep", "benchmarks": [KMEANS], "scael": 0.5},
            {"kind": "sweep", "benchmark": KMEANS},
            {"kind": "simulate", "benchmarks": [KMEANS]},
            {"kind": "simulate"},
            {"kind": "advise"},
            {"kind": "sweep", "benchmarks": []},
            {"kind": "sweep", "benchmarks": KMEANS},
            {"kind": "sweep", "benchmarks": [7]},
            {"kind": "sweep", "benchmarks": [KMEANS], "scale": 0},
            {"kind": "sweep", "benchmarks": [KMEANS], "scale": "big"},
            {"kind": "sweep", "benchmarks": [KMEANS], "scale": True},
            {"kind": "sweep", "benchmarks": [KMEANS], "seed": 1.5},
            {"kind": "sweep", "benchmarks": [KMEANS], "seed": False},
            {"kind": "sweep", "benchmarks": [KMEANS], "engine": "turbo"},
            {"kind": "sweep", "benchmarks": [KMEANS], "stage_memo": "maybe"},
            {"kind": "simulate", "benchmark": KMEANS, "version": "v2"},
            {"kind": "sweep", "benchmarks": [KMEANS], "version": "copy"},
            {"kind": "advise", "benchmark": KMEANS, "version": "copy"},
        ],
        ids=lambda body: repr(body)[:48],
    )
    def test_invalid_job_is_400(self, body):
        error = _rejection(body)
        assert (error.status, error.code) == (400, "invalid-job")

    def test_unknown_benchmark_is_404(self):
        error = _rejection({"kind": "sweep", "benchmarks": ["rodinia/nope"]})
        assert (error.status, error.code) == (404, "unknown-benchmark")
        assert error.detail == {"benchmark": "rodinia/nope"}

    def test_not_simulatable_is_422(self):
        error = _rejection({"kind": "simulate", "benchmark": NOT_SIMULATABLE})
        assert (error.status, error.code) == (422, "not-simulatable")
        assert error.detail == {"benchmark": NOT_SIMULATABLE}

    def test_payload_shape(self):
        payload = _rejection({"kind": "sweep", "benchmark": KMEANS}).payload()
        assert sorted(payload) == ["code", "detail", "error", "schema"]
        assert payload["schema"] == ERROR_SCHEMA


def _install_lint_rejected_benchmark(monkeypatch) -> str:
    """Register a benchmark whose pipeline trips RPL001 at error level."""
    fixture = (
        Path(__file__).parent / "fixtures" / "lint" / "rpl001_raw.py"
    )
    module_spec = importlib.util.spec_from_file_location(
        "serve_lint_fixture", fixture
    )
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    spec = BenchmarkSpec(
        name="rpl001_raw",
        suite="fixture",
        description="RPL001 raw race (lint preflight test)",
        pc_comm=True,
        pipe_parallel=False,
        regular_pc=False,
        irregular=False,
        sw_queue=False,
        build=lambda: module.build()[0],
    )
    monkeypatch.setitem(registry._REGISTRY, spec.full_name, spec)
    return spec.full_name


class TestLintPreflight:
    def test_registered_benchmarks_pass(self):
        # The registry is lint-clean by CI; the preflight must agree.
        spec = validate_job(
            {"kind": "sweep", "benchmarks": [KMEANS, BFS]}, lint=True
        )
        assert spec.runs == 4

    def test_lint_rejected_is_422(self, monkeypatch):
        name = _install_lint_rejected_benchmark(monkeypatch)
        with pytest.raises(JobValidationError) as excinfo:
            validate_job({"kind": "simulate", "benchmark": name}, lint=True)
        error = excinfo.value
        assert (error.status, error.code) == (422, "lint-rejected")
        findings = error.detail["findings"]
        assert findings, "expected at least one error-level finding"
        assert any(f["rule"] == "RPL001" for f in findings)
        for finding in findings:
            assert sorted(finding) == [
                "buffer",
                "message",
                "pipeline",
                "rule",
                "severity",
                "stage",
            ]

    def test_lint_skippable(self, monkeypatch):
        name = _install_lint_rejected_benchmark(monkeypatch)
        spec = validate_job(
            {"kind": "simulate", "benchmark": name}, lint=False
        )
        assert spec.benchmarks == (name,)


class TestGoldenErrorPayloads:
    """The exact 4xx bodies clients parse, pinned as fixtures."""

    def test_invalid_job(self, golden_json):
        error = _rejection(
            {"kind": "sweep", "benchmarks": [KMEANS], "scael": 0.5, "sede": 1}
        )
        golden_json(
            "serve/invalid_job", {"status": error.status, **error.payload()}
        )

    def test_unknown_benchmark(self, golden_json):
        error = _rejection({"kind": "sweep", "benchmarks": ["rodinia/nope"]})
        golden_json(
            "serve/unknown_benchmark",
            {"status": error.status, **error.payload()},
        )

    def test_not_simulatable(self, golden_json):
        error = _rejection({"kind": "simulate", "benchmark": NOT_SIMULATABLE})
        golden_json(
            "serve/not_simulatable",
            {"status": error.status, **error.payload()},
        )

    def test_lint_rejected(self, golden_json, monkeypatch):
        name = _install_lint_rejected_benchmark(monkeypatch)
        with pytest.raises(JobValidationError) as excinfo:
            validate_job(
                {"kind": "simulate", "benchmark": name, "version": "copy"},
                lint=True,
            )
        error = excinfo.value
        golden_json(
            "serve/lint_rejected", {"status": error.status, **error.payload()}
        )


def test_jobspec_describe_round_trips_into_validate():
    spec = _validate(
        {"kind": "sweep", "benchmarks": [KMEANS], "scale": 0.25, "seed": 9}
    )
    body = spec.describe()
    body.pop("versions")  # sweep bodies never carry versions
    assert _validate(body) == spec


def test_jobspec_is_frozen():
    spec = JobSpec(
        kind="sweep",
        benchmarks=(KMEANS,),
        versions=VERSIONS,
        scale=1.0,
        seed=0,
    )
    with pytest.raises(AttributeError):
        spec.scale = 2.0
