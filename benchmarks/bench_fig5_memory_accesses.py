"""Fig. 5: memory access breakdown by component type."""

import pytest

from repro.experiments import fig5
from repro.sim.hierarchy import Component


@pytest.fixture(scope="module")
def rows(runner):
    return fig5.run(runner)


def test_fig5_memory_accesses(benchmark, runner, rows, save_result):
    benchmark.pedantic(fig5.run, args=(runner,), rounds=1, iterations=1)
    assert len(rows) == 46
    save_result("fig5_memory_accesses", fig5.render(runner))


def test_fig5_geomean_access_reduction(rows):
    # Paper: total copy accesses decline by more than 11% in the geomean.
    stats = fig5.summary(rows)
    assert 0.03 <= stats["geomean_access_reduction"] <= 0.30


def test_fig5_substantial_subset_over_20_percent(rows):
    stats = fig5.summary(rows)
    assert stats["benchmarks_copy_over_20pct"] >= 0.2


def test_fig5_graph_suites_have_small_copy_fractions(rows):
    # Paper: for most Lonestar and Pannotia benchmarks, copies account for
    # at most 5% of total memory accesses.
    graph_rows = [
        r
        for r in rows
        if r.benchmark.startswith(("lonestar/", "pannotia/"))
        and r.benchmark != "lonestar/bh"
        and r.benchmark != "lonestar/tsp"
    ]
    small = sum(1 for r in graph_rows if r.copy_fraction <= 0.06)
    assert small >= len(graph_rows) * 0.8


def test_fig5_misaligned_benchmarks_gain_gpu_accesses(rows):
    # The '*' benchmarks see elevated limited-copy GPU cache traffic.
    for row in rows:
        if row.misaligned:
            assert (
                row.limited_accesses[Component.GPU]
                > row.copy_accesses[Component.GPU]
            ), row.benchmark


def test_fig5_cpu_gpu_counts_remain_similar(rows):
    # Paper: CPU and GPU access counts remain substantially similar after
    # removing copies (for non-misaligned, non-fault-shifted benchmarks).
    similar = 0
    candidates = [r for r in rows if not r.misaligned]
    for row in candidates:
        copy_core = row.copy_accesses[Component.GPU]
        limited_core = row.limited_accesses[Component.GPU]
        if copy_core and 0.7 <= limited_core / copy_core <= 1.4:
            similar += 1
    assert similar >= len(candidates) * 0.7
