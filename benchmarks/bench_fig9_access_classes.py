"""Fig. 9: off-chip memory accesses broken down by cause."""

import pytest

from repro.core.classify import AccessClass
from repro.experiments import fig9


@pytest.fixture(scope="module")
def rows(runner):
    return fig9.run(runner)


def test_fig9_access_classes(benchmark, runner, rows, save_result):
    benchmark.pedantic(fig9.run, args=(runner,), rounds=1, iterations=1)
    assert len(rows) == 46
    save_result("fig9_access_classes", fig9.render(runner))


def test_fig9_contention_dominates_for_many(rows):
    # Paper: R-R contention accounts for 38% of accesses on average and
    # upwards of 80% for many benchmarks.
    stats = fig9.summary(rows)
    assert 0.2 <= stats["mean_rr_contention"] <= 0.6
    high = sum(
        1 for r in rows if r.limited.fraction(AccessClass.RR_CONTENTION) > 0.5
    )
    assert high >= 5


def test_fig9_spills_are_modest(rows):
    # Paper: inter-stage cache spills represent about 10% of accesses.
    stats = fig9.summary(rows)
    assert 0.02 <= stats["mean_spills"] <= 0.25


def test_fig9_contention_is_about_half_of_accesses(rows):
    # Paper: half of all memory accesses result from cache contention.
    stats = fig9.summary(rows)
    assert 0.3 <= stats["mean_contention"] <= 0.65


def test_fig9_bandwidth_limited_also_contended(rows):
    # Paper: most bandwidth-limited benchmarks also show significant cache
    # contention, so fixing contention cuts bandwidth demand.
    stats = fig9.summary(rows)
    assert stats["bandwidth_limited_also_contended"] >= 0.7


def test_fig9_kmeans_wr_spills_match_case_study(rows):
    # Section II: ~9.5% of kmeans accesses were W-R spills.
    by_name = {r.benchmark: r for r in rows}
    wr = by_name["rodinia/kmeans"].limited.fraction(AccessClass.WR_SPILL)
    assert 0.03 <= wr <= 0.25


def test_fig9_spills_persist_after_copy_removal(rows):
    # Paper: most benchmarks experience little reduction in cache spills
    # when removing memory copies — the residual kernel-granularity
    # synchronization keeps spilling inter-stage data.  The claim applies
    # to benchmarks whose spills are substantial in the first place (the
    # graph suites' tiny spills are copy-adjacent and disappear with the
    # copies).
    persistent = 0
    considered = 0
    for row in rows:
        copy_spills = (
            row.copy.counts[AccessClass.WR_SPILL]
            + row.copy.counts[AccessClass.RR_SPILL]
        )
        limited_spills = (
            row.limited.counts[AccessClass.WR_SPILL]
            + row.limited.counts[AccessClass.RR_SPILL]
        )
        if copy_spills < 0.05 * max(row.copy.total, 1):
            continue
        considered += 1
        if limited_spills > copy_spills * 0.4:
            persistent += 1
    assert considered >= 10
    assert persistent >= considered * 0.6
