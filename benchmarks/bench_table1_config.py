"""Table I: system configuration construction."""

from repro.config.system import TABLE_I, discrete_gpu_system, heterogeneous_processor, table_i
from repro.experiments.report import format_mapping


def test_table1_config(benchmark, save_result):
    rendered = benchmark(table_i)
    assert rendered == TABLE_I
    # Both machines must build and differ only in the expected places.
    discrete = discrete_gpu_system()
    hetero = heterogeneous_processor()
    assert discrete.cpu == hetero.cpu and discrete.gpu == hetero.gpu
    save_result(
        "table1_config",
        format_mapping("Table I: Heterogeneous system parameters", rendered),
    )
