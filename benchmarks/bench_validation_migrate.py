"""Section V-B validation: compute migration on kmeans and strmclstr."""

import pytest

from repro.experiments import validation


@pytest.fixture(scope="module")
def rows(runner):
    return validation.validate_migration(runner)


def test_validation_migrate(benchmark, runner, rows, save_result):
    benchmark.pedantic(
        validation.validate_migration, args=(runner,), rounds=1, iterations=1
    )
    assert {r.benchmark for r in rows} == {"rodinia/kmeans", "rodinia/strmclstr"}
    save_result(
        "validation_migrate",
        "\n".join(
            f"{r.benchmark}: baseline={r.baseline_runtime_s:.6f}s "
            f"migrated={r.migrated_runtime_s:.6f}s speedup={r.speedup:.2f}x"
            for r in rows
        ),
    )


def test_migration_beats_two_and_a_half_x(rows):
    # Paper: the rewritten benchmarks improved run time by more than 2.5x.
    for row in rows:
        assert row.speedup > 2.0, (row.benchmark, row.speedup)
    assert max(r.speedup for r in rows) > 2.5
