"""Shared fixtures for the figure-regeneration benchmarks.

A single session-scoped :class:`SweepRunner` is shared by every bench so
the 46x2 simulation sweep runs once; each bench then times its figure's
analysis pass and writes the regenerated rows to ``results/``.

The runner fans simulations out over every core and persists results to
the shared sweep cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``),
so a repeated benchmark session replays the sweep from disk instead of
re-simulating it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import DEFAULT_BENCH_SCALE, SweepRunner
from repro.sim.engine import SimOptions
from repro.sim.resultcache import default_cache_dir

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    return SweepRunner(
        options=SimOptions(scale=DEFAULT_BENCH_SCALE),
        parallel=0,  # all cores
        cache_dir=default_cache_dir(),
        verbose=True,
    )


@pytest.fixture(scope="session")
def bench_options() -> SimOptions:
    return SimOptions(scale=DEFAULT_BENCH_SCALE)


@pytest.fixture(scope="session")
def save_result():
    """Write a regenerated table/figure to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
