"""Fig. 7: component-overlap run-time estimates (Eq. 1)."""

import pytest

from repro.experiments import fig7
from repro.sim.hierarchy import Component


@pytest.fixture(scope="module")
def rows(runner):
    return fig7.run(runner)


def test_fig7_overlap(benchmark, runner, rows, save_result):
    benchmark.pedantic(fig7.run, args=(runner,), rounds=1, iterations=1)
    assert len(rows) == 46
    save_result("fig7_overlap", fig7.render(runner))


def test_fig7_estimates_never_exceed_measured(rows):
    for row in rows:
        assert row.copy_estimate.runtime_s <= row.copy_runtime_s * 1.0001
        assert row.limited_estimate.runtime_s <= row.limited_runtime_s * 1.0001


def test_fig7_meaningful_overlap_potential(rows):
    # Paper: overlapping communication and computation could improve run
    # times by 10-15%.
    stats = fig7.summary(rows)
    assert 0.05 <= stats["geomean_copy_overlap_gain"] <= 0.40


def test_fig7_overlap_narrows_copy_vs_limited_gap(rows):
    # Paper: the estimates suggest overlap can eliminate much of the
    # performance difference between copy and limited-copy versions.
    narrowed = 0
    considered = 0
    for row in rows:
        measured_gap = row.copy_runtime_s - row.limited_runtime_s
        if measured_gap <= 0:
            continue
        considered += 1
        estimate_gap = (
            row.copy_estimate.runtime_s - row.limited_estimate.runtime_s
        )
        if estimate_gap < measured_gap:
            narrowed += 1
    assert narrowed >= considered * 0.6


def test_fig7_gpu_is_common_bottleneck(rows):
    bottlenecks = [row.copy_estimate.bottleneck for row in rows]
    assert bottlenecks.count(Component.GPU) > len(rows) * 0.5
