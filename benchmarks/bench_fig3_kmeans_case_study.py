"""Fig. 3: kmeans run times for the five benchmark organizations.

Regenerates the Section II case study and checks the paper's shape: copies
dominate the baseline, each optimization step helps, GPU utilization climbs
monotonically, and well over half the baseline run time is recovered.
"""

import pytest

from repro.core.casestudy import ORGANIZATIONS
from repro.experiments import fig3


@pytest.fixture(scope="module")
def rows(bench_options):
    return fig3.run(bench_options)


def test_fig3_kmeans_case_study(benchmark, rows, bench_options, save_result):
    benchmark.pedantic(fig3.run, args=(bench_options,), rounds=1, iterations=1)
    assert [r.organization for r in rows] == list(ORGANIZATIONS)
    save_result("fig3_kmeans_case_study", fig3.render(bench_options))


def test_fig3_baseline_matches_paper_shape(rows):
    baseline = rows[0]
    # Paper: GPU idle 82% of baseline (utilization ~18%).
    assert baseline.gpu_utilization == pytest.approx(0.18, abs=0.07)


def test_fig3_each_step_improves(rows):
    normalized = [r.normalized_runtime for r in rows]
    assert normalized == sorted(normalized, reverse=True)


def test_fig3_recovery_matches_paper(rows):
    # Paper: up to 77% of run time recovered by the final organization.
    recovered = 1.0 - rows[-1].normalized_runtime
    assert 0.6 <= recovered <= 0.85


def test_fig3_gpu_utilization_climbs(rows):
    utils = [r.gpu_utilization for r in rows]
    assert utils[-1] > utils[2] > utils[0]


def test_fig3_no_copy_roughly_halves_runtime(rows):
    by_label = {r.organization: r for r in rows}
    assert by_label["No Memory Copy"].normalized_runtime == pytest.approx(
        0.50, abs=0.12
    )
