"""Section V-A validation: chunked transforms vs the Eq. 1 estimate."""

import pytest

from repro.experiments import validation


@pytest.fixture(scope="module")
def rows(runner):
    return validation.validate_overlap(runner)


def test_validation_overlap(benchmark, runner, rows, save_result):
    benchmark.pedantic(
        validation.validate_overlap, args=(runner,), rounds=1, iterations=1
    )
    assert len(rows) == 6  # three benchmarks x two versions
    save_result("validation_overlap", validation.render(runner))


def test_limited_copy_transforms_track_estimate_closely(rows):
    # Paper: transformed run times land within ~3.1% of the estimate; our
    # limited-copy (in-memory signalling) transforms match that regime.
    for row in rows:
        if row.version == "limited-copy":
            assert row.error < 0.10, (row.benchmark, row.error)


def test_copy_transforms_improve_but_keep_dependencies(rows):
    # Discrete-side stream chunking improves on the measured baseline but
    # stays above the (optimistic) estimate: data dependencies limit
    # overlap, as the paper cautions.
    for row in rows:
        if row.version == "copy":
            assert row.transformed_runtime_s < row.measured_runtime_s
            assert row.transformed_runtime_s >= row.estimated_runtime_s * 0.97
