"""Fig. 6: run-time component activity breakdown."""

import pytest

from repro.experiments import fig6


@pytest.fixture(scope="module")
def rows(runner):
    return fig6.run(runner)


def test_fig6_runtime(benchmark, runner, rows, save_result):
    benchmark.pedantic(fig6.run, args=(runner,), rounds=1, iterations=1)
    assert len(rows) == 46
    save_result("fig6_runtime", fig6.render(runner))


def test_fig6_geomean_improvement_is_modest(rows):
    # Paper: removing copies yields a geomean 7% run-time improvement —
    # modest, because page-fault slowdowns offset the copy savings.
    stats = fig6.summary(rows)
    assert 0.0 <= stats["geomean_runtime_improvement"] <= 0.20


def test_fig6_execution_is_mostly_serialized(rows):
    # Paper: most execution time runs exactly one component (the
    # bulk-synchronous structure) for both versions.
    stats = fig6.summary(rows)
    assert stats["mean_serial_fraction_copy"] > 0.85


def test_fig6_pagefault_benchmarks_slow_down(rows):
    # srad (7x GPU slowdown) and heartwall regress after porting.
    by_name = {r.benchmark: r for r in rows}
    assert by_name["rodinia/srad"].runtime_ratio > 2.0
    assert by_name["rodinia/heartwall"].runtime_ratio > 1.2
    stats = fig6.summary(rows)
    assert stats["slowdown_benchmarks"] >= 2


def test_fig6_copy_heavy_benchmarks_improve_most(rows):
    by_name = {r.benchmark: r for r in rows}
    # Benchmarks whose baselines are copy-dominated gain the most.
    assert by_name["rodinia/kmeans"].runtime_ratio < 0.75
    assert by_name["rodinia/backprop"].runtime_ratio < 0.85


def test_fig6_limited_copy_has_no_copy_only_time_when_fully_ported(rows):
    by_name = {r.benchmark: r for r in rows}
    # kmeans loses every copy; its limited-copy bar has no copy segment.
    assert by_name["rodinia/kmeans"].limited.copy_only_s == 0.0
    # cutcp keeps residual copies; its bar still shows copy time.
    assert by_name["parboil/cutcp"].limited.copy_only_s > 0.0
