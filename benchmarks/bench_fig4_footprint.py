"""Fig. 4: memory footprint touched by component type."""

import pytest

from repro.core.metrics import geomean
from repro.experiments import fig4


@pytest.fixture(scope="module")
def rows(runner):
    return fig4.run(runner)


def test_fig4_footprint(benchmark, runner, rows, save_result):
    benchmark.pedantic(fig4.run, args=(runner,), rounds=1, iterations=1)
    assert len(rows) == 46
    save_result("fig4_footprint", fig4.render(runner))


def test_fig4_limited_copy_footprints_shrink(rows):
    ratios = [r.footprint_ratio for r in rows]
    # Paper: eliminating mirrored data significantly reduces footprints.
    assert geomean([max(r, 1e-9) for r in ratios]) < 0.85
    assert all(r <= 1.0 + 1e-9 for r in ratios)


def test_fig4_gpu_touches_most_of_limited_footprint(rows):
    # Paper: of the remaining limited-copy footprint, the GPU usually uses
    # more than 70% of the data.
    share = sum(1 for r in rows if r.gpu_share_of_limited() > 0.7) / len(rows)
    assert share > 0.6


def test_fig4_copy_engine_touches_most_copy_version_data(rows):
    # Paper: copy portions make up nearly all of each copy-version bar.
    heavy = 0
    for r in rows:
        copied = sum(
            frac for label, frac in r.copy_fractions.items() if "copy" in label
        )
        if copied > 0.5:
            heavy += 1
    assert heavy >= len(rows) * 0.7


def test_fig4_graph_benchmarks_leave_data_untouched(rows):
    # Lonestar bfs / Pannotia fw: the copy engine touches nearly all data
    # but CPU+GPU touch under half of it.
    by_name = {r.benchmark: r for r in rows}
    for name in ("lonestar/bfs", "pannotia/fw"):
        row = by_name[name]
        cpu_gpu = sum(
            frac
            for label, frac in row.copy_fractions.items()
            if "copy" not in label
        )
        copy_only = row.copy_fractions.get("copy", 0.0)
        assert copy_only > cpu_gpu
