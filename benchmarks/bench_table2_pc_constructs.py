"""Table II: producer-consumer relationships in benchmarks."""

from repro.experiments import table2


def test_table2_pc_constructs(benchmark, save_result):
    rows = benchmark(table2.run)
    assert table2.matches_paper(rows)
    totals = rows[-1]
    assert totals.num == 58
    assert totals.pc_comm == 51
    assert totals.irregular == 32
    assert totals.sw_queue == 11
    save_result("table2_pc_constructs", table2.render())
