"""Benches for the forward-looking extensions (Section VI directions).

These go beyond the paper's figures: kernel fusion, GPU-to-CPU kernel
migration, occupancy sensitivity, the row-buffer DRAM refinement, and the
optimization advisor.
"""

import pytest

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments.advisor import Optimization, advise
from repro.pipeline.fusion import fuse_kernels, migrate_kernels_to_cpu
from repro.pipeline.stage import KernelResources
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.workloads.registry import get


class TestKernelFusionBench:
    @pytest.fixture(scope="class")
    def fused_pair(self, bench_options):
        limited = remove_copies(get("rodinia/srad").pipeline())
        system = heterogeneous_processor()
        baseline = simulate(limited, system, bench_options)
        fused_pipeline = fuse_kernels(limited)
        fused = simulate(fused_pipeline, system, bench_options)
        return limited, fused_pipeline, baseline, fused

    def test_bench(self, benchmark, bench_options, fused_pair, save_result):
        limited, fused_pipeline, baseline, fused = fused_pair
        benchmark.pedantic(
            fuse_kernels, args=(limited,), rounds=1, iterations=1
        )
        save_result(
            "extension_fusion",
            f"srad limited-copy: {len(limited.stages)} stages -> "
            f"{len(fused_pipeline.stages)} after fusion; off-chip accesses "
            f"{baseline.offchip_accesses():,} -> {fused.offchip_accesses():,}",
        )

    def test_fusion_merges_sweep_chain(self, fused_pair):
        limited, fused_pipeline, _, _ = fused_pair
        assert len(fused_pipeline.stages) < len(limited.stages)

    def test_fusion_cuts_offchip_traffic(self, fused_pair):
        _, _, baseline, fused = fused_pair
        assert fused.offchip_accesses() < baseline.offchip_accesses() * 0.6

    def test_fusion_respects_resource_limits(self, bench_options):
        # With heavyweight per-kernel resources, nothing fits fused.
        from repro.pipeline.builder import PipelineBuilder
        from repro.units import MB

        heavy = KernelResources(threads_per_cta=512, registers_per_thread=60)
        b = PipelineBuilder("t")
        b.buffer("x", 4 * MB)
        b.buffer("y", 4 * MB, temporary=True)
        b.buffer("z", 4 * MB)
        b.gpu_kernel("k1", flops=1e6, reads=["x"], writes=["y"], resources=heavy)
        b.gpu_kernel("k2", flops=1e6, reads=["y"], writes=["z"], resources=heavy)
        fused = fuse_kernels(b.build())
        assert len(fused.stages) == 2


class TestCpuMigrationBench:
    def test_bench(self, benchmark, bench_options, save_result):
        # Barnes-Hut has kernels of widely varying size (tree build vs force
        # calculation) — exactly the Section VI migration candidate shape.
        limited = remove_copies(get("lonestar/bh").pipeline())
        system = heterogeneous_processor()
        baseline = simulate(limited, system, bench_options)
        threshold = max(s.flops for s in limited.stages) * 0.2

        def transform_and_run():
            migrated = migrate_kernels_to_cpu(limited, max_flops=threshold)
            return simulate(migrated, system, bench_options)

        migrated_result = benchmark.pedantic(
            transform_and_run, rounds=1, iterations=1
        )
        cpu_flops = migrated_result.flops_by_component[Component.CPU]
        save_result(
            "extension_cpu_migration",
            f"bh limited-copy: CPU now performs {cpu_flops:.3g} FLOPs "
            f"(baseline {baseline.flops_by_component[Component.CPU]:.3g}); "
            f"runtime {baseline.roi_s:.6f}s -> {migrated_result.roi_s:.6f}s",
        )
        assert cpu_flops > baseline.flops_by_component[Component.CPU]


class TestOccupancyBench:
    def test_bench(self, benchmark, bench_options, save_result):
        from repro.pipeline.builder import PipelineBuilder
        from repro.units import MB

        def build(regs):
            b = PipelineBuilder("t")
            b.buffer("a", 16 * MB)
            b.copy_h2d("a")
            b.gpu_kernel(
                "k", flops=2e9, reads=["a_dev"], efficiency=0.9,
                resources=KernelResources(
                    threads_per_cta=256, registers_per_thread=regs
                ),
            )
            return b.build()

        system = discrete_gpu_system()
        rows = []
        for regs in (16, 24, 40, 64, 120):
            result = simulate(build(regs), system, bench_options)
            rows.append((regs, result.roi_s))
        benchmark.pedantic(
            simulate, args=(build(24), system, bench_options), rounds=1,
            iterations=1,
        )
        save_result(
            "extension_occupancy",
            "\n".join(
                f"{regs} regs/thread: runtime={runtime:.6f}s"
                for regs, runtime in rows
            ),
        )
        runtimes = [runtime for _, runtime in rows]
        assert runtimes == sorted(runtimes)  # more registers, less occupancy


class TestRowModelBench:
    def test_bench(self, benchmark, bench_options, save_result):
        pipeline = get("pannotia/pr").pipeline()
        system = discrete_gpu_system()
        flat = simulate(pipeline, system, bench_options)
        row_options = SimOptions(
            scale=bench_options.scale, dram_row_model=True
        )
        row = benchmark.pedantic(
            simulate, args=(pipeline, system, row_options), rounds=1,
            iterations=1,
        )
        save_result(
            "extension_dram_row",
            f"pannotia/pr: flat-efficiency runtime {flat.roi_s:.6f}s, "
            f"row-buffer-aware {row.roi_s:.6f}s",
        )
        # Random graph traffic cannot beat the flat 82% assumption.
        assert row.roi_s >= flat.roi_s * 0.95


class TestAdvisorBench:
    def test_bench(self, benchmark, runner, save_result):
        report = benchmark.pedantic(
            advise, args=(get("rodinia/srad"), runner), rounds=1, iterations=1
        )
        assert report.top is not None
        assert report.top.optimization is Optimization.FAULT_HANDLING
        save_result("extension_advisor_srad", report.render())

    def test_kmeans_advice_ranks_copies_high(self, runner, save_result):
        report = advise(get("rodinia/kmeans"), runner)
        kinds = [r.optimization for r in report.recommendations[:3]]
        assert Optimization.REMOVE_COPIES in kinds
        save_result("extension_advisor_kmeans", report.render())
