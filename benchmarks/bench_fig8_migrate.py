"""Fig. 8: migrated-compute run-time estimates (Eqs. 2-4)."""

import pytest

from repro.core.migrate import MigrateBound
from repro.experiments import fig8


@pytest.fixture(scope="module")
def rows(runner):
    return fig8.run(runner)


def test_fig8_migrate(benchmark, runner, rows, save_result):
    benchmark.pedantic(fig8.run, args=(runner,), rounds=1, iterations=1)
    assert len(rows) == 46
    save_result("fig8_migrate", fig8.render(runner))


def test_fig8_migration_gains_beyond_overlap(rows):
    # Paper: fully utilizing compute could improve performance by another
    # 4-13% in common cases.
    stats = fig8.summary(rows)
    assert stats["geomean_limited_migrate_gain"] >= 0.04


def test_fig8_some_benchmarks_stay_copy_bound(rows):
    # Paper: ~20% of benchmarks remain copy-dominated on the discrete GPU.
    stats = fig8.summary(rows)
    assert 0.05 <= stats["copy_dominated_fraction"] <= 0.45


def test_fig8_cpu_heavy_benchmarks_gain_most(rows):
    # Rodinia dwt: CPU execution dominates, so the estimated gains are
    # substantially larger than the common case.
    by_name = {r.benchmark: r for r in rows}
    dwt = by_name["rodinia/dwt"]
    gain_dwt = 1.0 - dwt.limited_estimate.runtime_s / dwt.limited_runtime_s
    assert gain_dwt > 0.4


def test_fig8_estimates_within_physical_bounds(rows):
    for row in rows:
        estimate = row.copy_estimate
        assert estimate.runtime_s == pytest.approx(
            max(
                estimate.copy_bound_s,
                estimate.core_bound_s,
                estimate.bandwidth_bound_s,
            )
        )


def test_fig8_kmeans_copy_bound_on_discrete(rows):
    by_name = {r.benchmark: r for r in rows}
    assert by_name["rodinia/kmeans"].copy_estimate.bound is MigrateBound.COPY
