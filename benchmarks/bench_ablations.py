"""Ablation benches over the model's design choices (see DESIGN.md)."""

import pytest

from repro.experiments import ablations


class TestCacheSizeAblation:
    @pytest.fixture(scope="class")
    def rows(self, bench_options):
        return ablations.cache_size_sweep(options=bench_options)

    def test_bench(self, benchmark, bench_options, rows, save_result):
        benchmark.pedantic(
            ablations.cache_size_sweep,
            kwargs={"options": bench_options},
            rounds=1,
            iterations=1,
        )
        save_result(
            "ablation_cache_size",
            "\n".join(
                f"L2x{r.gpu_l2_scale:g}: contention={r.contention_fraction:.3f} "
                f"spills={r.spill_fraction:.3f} offchip={r.offchip_accesses}"
                for r in rows
            ),
        )

    def test_bigger_cache_reduces_offchip_traffic(self, rows):
        assert rows[-1].offchip_accesses < rows[0].offchip_accesses

    def test_contention_falls_with_capacity(self, rows):
        assert rows[-1].contention_fraction <= rows[0].contention_fraction


class TestPageFaultAblation:
    @pytest.fixture(scope="class")
    def rows(self, bench_options):
        return ablations.pagefault_sweep(options=bench_options)

    def test_bench(self, benchmark, bench_options, rows, save_result):
        benchmark.pedantic(
            ablations.pagefault_sweep,
            kwargs={"options": bench_options},
            rounds=1,
            iterations=1,
        )
        save_result(
            "ablation_pagefault",
            "\n".join(
                f"{r.service_latency_us:g}us: runtime={r.runtime_s:.6f}s "
                f"slowdown={r.slowdown_vs_no_faults:.2f}x"
                for r in rows
            ),
        )

    def test_slowdown_monotonic_in_latency(self, rows):
        slowdowns = [r.slowdown_vs_no_faults for r in rows]
        assert slowdowns == sorted(slowdowns)

    def test_srad_regime_matches_paper(self, rows):
        # At the default 5us service latency srad sits in the multi-x
        # slowdown regime the paper reports (7x GPU slowdown).
        at_default = [r for r in rows if r.service_latency_us == 5.0][0]
        assert at_default.slowdown_vs_no_faults > 3.0


class TestAlignmentAblation:
    def test_bench(self, benchmark, bench_options, save_result):
        row = benchmark.pedantic(
            ablations.alignment_ablation,
            kwargs={"options": bench_options},
            rounds=1,
            iterations=1,
        )
        assert row.inflation > 0.03
        save_result(
            "ablation_alignment",
            f"{row.benchmark}: aligned={row.aligned_gpu_accesses} "
            f"misaligned={row.misaligned_gpu_accesses} "
            f"inflation={row.inflation:.1%}",
        )


class TestDynamicParallelismAblation:
    @pytest.fixture(scope="class")
    def rows(self, bench_options):
        return ablations.dynamic_parallelism_sweep(options=bench_options)

    def test_bench(self, benchmark, bench_options, rows, save_result):
        benchmark.pedantic(
            ablations.dynamic_parallelism_sweep,
            kwargs={"options": bench_options},
            rounds=1,
            iterations=1,
        )
        save_result(
            "ablation_dynamic_parallelism",
            "\n".join(
                f"{r.device_launch_latency_us:g}us: host={r.host_loop_runtime_s:.6f}s "
                f"dynpar={r.dynpar_runtime_s:.6f}s speedup={r.speedup:.2f}x"
                for r in rows
            ),
        )

    def test_speedup_falls_with_launch_latency(self, rows):
        speedups = [r.speedup for r in rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_overheads_eventually_outweigh_benefits(self, rows):
        # Paper (citing Wang & Yalamanchili): kernel launch overheads can
        # outweigh the performance benefits of dynamic parallelism.
        assert rows[0].speedup > 1.0
        assert rows[-1].speedup < 1.0


class TestPcieAblation:
    @pytest.fixture(scope="class")
    def rows(self, bench_options):
        return ablations.pcie_sweep(options=bench_options)

    def test_bench(self, benchmark, bench_options, rows, save_result):
        benchmark.pedantic(
            ablations.pcie_sweep,
            kwargs={"options": bench_options},
            rounds=1,
            iterations=1,
        )
        save_result(
            "ablation_pcie",
            "\n".join(
                f"{r.pcie_gbps:g}GB/s: runtime={r.runtime_s:.6f}s "
                f"copy_share={r.copy_share:.2f}"
                for r in rows
            ),
        )

    def test_runtime_falls_with_bandwidth(self, rows):
        runtimes = [r.runtime_s for r in rows]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_copy_share_collapses(self, rows):
        # The Section II asymmetry argument: at 8 GB/s copies dominate; at
        # high bandwidth they become a small share.
        at_8 = [r for r in rows if r.pcie_gbps == 8.0][0]
        assert at_8.copy_share > 0.4
        assert rows[-1].copy_share < 0.2
