"""Fluent builder for benchmark pipelines.

Existing GPU computing benchmarks are bulk-synchronous: allocate, copy in,
launch kernels, copy out, with the CPU orchestrating.  The builder therefore
chains stages serially by default (each stage depends on the previously
added one) and lets callers opt out with explicit ``after=`` lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.pipeline.buffers import Buffer, MemorySpace
from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import (
    BufferAccess,
    KernelResources,
    Region,
    Stage,
    StageKind,
    copy_stage,
)

AccessLike = Union[str, BufferAccess]


def _as_access(value: AccessLike, default_pattern: AccessPattern) -> BufferAccess:
    if isinstance(value, BufferAccess):
        return value
    return BufferAccess(value, default_pattern)


class PipelineBuilder:
    """Incrementally construct a :class:`repro.pipeline.graph.Pipeline`."""

    def __init__(self, name: str, metadata: Optional[Dict[str, object]] = None) -> None:
        self._name = name
        self._buffers: Dict[str, Buffer] = {}
        self._stages: List[Stage] = []
        self._last: Optional[str] = None
        self._metadata = dict(metadata or {})
        self._counter = 0

    # -- buffers ------------------------------------------------------------

    def buffer(
        self,
        name: str,
        size_bytes: int,
        *,
        space: MemorySpace = MemorySpace.CPU,
        temporary: bool = False,
        cpu_line_aligned: bool = True,
    ) -> str:
        """Declare an allocation; returns the buffer name for chaining."""
        if name in self._buffers:
            raise PipelineError(f"duplicate buffer {name!r}")
        self._buffers[name] = Buffer(
            name=name,
            size_bytes=size_bytes,
            space=space,
            temporary=temporary,
            cpu_line_aligned=cpu_line_aligned,
        )
        return name

    def mirror(self, cpu_buffer: str, *, name: Optional[str] = None) -> str:
        """Declare the GPU-side mirror of a CPU allocation (cudaMalloc'd)."""
        if cpu_buffer not in self._buffers:
            raise PipelineError(f"cannot mirror unknown buffer {cpu_buffer!r}")
        base = self._buffers[cpu_buffer]
        mirror_name = name or f"{cpu_buffer}_dev"
        if mirror_name in self._buffers:
            raise PipelineError(f"duplicate buffer {mirror_name!r}")
        self._buffers[mirror_name] = Buffer(
            name=mirror_name,
            size_bytes=base.size_bytes,
            space=MemorySpace.GPU,
            mirror_of=cpu_buffer,
        )
        return mirror_name

    # -- stages --------------------------------------------------------------

    def _resolve_deps(self, after: Optional[Sequence[str]]) -> Tuple[str, ...]:
        if after is not None:
            known = {s.name for s in self._stages}
            for dep in after:
                if dep not in known:
                    raise PipelineError(f"unknown dependency {dep!r}")
            return tuple(after)
        if self._last is not None:
            return (self._last,)
        return ()

    def _unique(self, base: str) -> str:
        self._counter += 1
        return f"{base}_{self._counter}"

    def _add(self, stage: Stage) -> str:
        if any(s.name == stage.name for s in self._stages):
            raise PipelineError(f"duplicate stage {stage.name!r}")
        self._stages.append(stage)
        self._last = stage.name
        return stage.name

    def copy_h2d(
        self,
        src: str,
        dst: Optional[str] = None,
        *,
        name: Optional[str] = None,
        mirror: bool = True,
        region: Region = Region(),
        after: Optional[Sequence[str]] = None,
        chunkable: bool = False,
    ) -> str:
        """Host-to-device copy.  With no ``dst`` the mirror is looked up or
        created automatically (the common cudaMemcpy idiom)."""
        if dst is None:
            dst = f"{src}_dev"
            if dst not in self._buffers:
                self.mirror(src)
        return self._add(
            copy_stage(
                name or self._unique(f"h2d_{src}"),
                src,
                dst,
                mirror=mirror,
                region=region,
                depends_on=self._resolve_deps(after),
                chunkable=chunkable,
            )
        )

    def copy_d2h(
        self,
        src: str,
        dst: str,
        *,
        name: Optional[str] = None,
        mirror: bool = True,
        region: Region = Region(),
        after: Optional[Sequence[str]] = None,
        chunkable: bool = False,
    ) -> str:
        """Device-to-host copy."""
        return self._add(
            copy_stage(
                name or self._unique(f"d2h_{src}"),
                src,
                dst,
                mirror=mirror,
                region=region,
                depends_on=self._resolve_deps(after),
                chunkable=chunkable,
            )
        )

    def gpu_kernel(
        self,
        name: str,
        *,
        flops: float,
        reads: Sequence[AccessLike] = (),
        writes: Sequence[AccessLike] = (),
        efficiency: float = 0.5,
        occupancy: float = 1.0,
        after: Optional[Sequence[str]] = None,
        chunkable: bool = False,
        migratable: bool = False,
        pattern: AccessPattern = AccessPattern.STREAMING,
        resources: Optional[KernelResources] = None,
    ) -> str:
        """Launch a GPU kernel stage."""
        return self._add(
            Stage(
                name=name,
                kind=StageKind.GPU_KERNEL,
                flops=flops,
                reads=tuple(_as_access(r, pattern) for r in reads),
                writes=tuple(_as_access(w, pattern) for w in writes),
                depends_on=self._resolve_deps(after),
                compute_efficiency=efficiency,
                occupancy=occupancy,
                chunkable=chunkable,
                migratable=migratable,
                resources=resources,
            )
        )

    def cpu_stage(
        self,
        name: str,
        *,
        flops: float,
        reads: Sequence[AccessLike] = (),
        writes: Sequence[AccessLike] = (),
        efficiency: float = 0.5,
        occupancy: float = 0.25,
        after: Optional[Sequence[str]] = None,
        chunkable: bool = False,
        migratable: bool = False,
        pattern: AccessPattern = AccessPattern.STREAMING,
    ) -> str:
        """Run work on CPU cores.  Default occupancy 0.25 models the common
        single-threaded host code of these benchmarks (1 of 4 cores)."""
        return self._add(
            Stage(
                name=name,
                kind=StageKind.CPU,
                flops=flops,
                reads=tuple(_as_access(r, pattern) for r in reads),
                writes=tuple(_as_access(w, pattern) for w in writes),
                depends_on=self._resolve_deps(after),
                compute_efficiency=efficiency,
                occupancy=occupancy,
                chunkable=chunkable,
                migratable=migratable,
            )
        )

    def barrier(self) -> None:
        """Subsequent default-chained stages depend on *all* stages so far."""
        if self._stages:
            names = tuple(s.name for s in self._stages)
            sync = Stage(
                name=self._unique("barrier"),
                kind=StageKind.CPU,
                flops=0.0,
                depends_on=names,
                compute_efficiency=1.0,
            )
            self._add(sync)

    # -- finish -----------------------------------------------------------------

    def build(self) -> Pipeline:
        return Pipeline(
            name=self._name,
            buffers=dict(self._buffers),
            stages=tuple(self._stages),
            metadata=self._metadata,
        )
