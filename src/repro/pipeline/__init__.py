"""Pipeline IR: benchmarks as DAGs of CPU / GPU / copy stages over buffers."""

from repro.pipeline.buffers import Buffer, MemorySpace
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.dynpar import count_device_launched, dynamic_parallelism
from repro.pipeline.fusion import fuse_kernels, migrate_kernels_to_cpu
from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.patterns import (
    IRREGULAR_PATTERNS,
    LATENCY_BOUND_PATTERNS,
    AccessPattern,
)
from repro.pipeline.stage import (
    FULL_REGION,
    BufferAccess,
    KernelResources,
    Region,
    Stage,
    StageKind,
    copy_stage,
)
from repro.pipeline.transforms import (
    chunk_stages,
    fission_async_streams,
    migrate_compute,
    parallel_producer_consumer,
    remove_copies,
)

__all__ = [
    "AccessPattern",
    "Buffer",
    "BufferAccess",
    "FULL_REGION",
    "KernelResources",
    "IRREGULAR_PATTERNS",
    "LATENCY_BOUND_PATTERNS",
    "MemorySpace",
    "Pipeline",
    "PipelineBuilder",
    "PipelineError",
    "Region",
    "Stage",
    "StageKind",
    "chunk_stages",
    "copy_stage",
    "count_device_launched",
    "dynamic_parallelism",
    "fission_async_streams",
    "fuse_kernels",
    "migrate_compute",
    "migrate_kernels_to_cpu",
    "parallel_producer_consumer",
    "remove_copies",
]
