"""The Pipeline: a validated DAG of stages over a set of buffers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.pipeline.buffers import Buffer
from repro.pipeline.stage import Stage, StageKind


class PipelineError(ValueError):
    """Raised when a pipeline fails structural validation."""


@dataclass(frozen=True)
class Pipeline:
    """An immutable benchmark pipeline.

    Attributes:
        name: benchmark name (e.g. ``"rodinia/kmeans"``).
        buffers: all allocations, keyed by name.
        stages: stages in insertion order (a valid topological order is
            computed, not assumed).
        limited_copy: True once :func:`repro.pipeline.transforms.remove_copies`
            has ported the pipeline.
        metadata: free-form benchmark annotations (suite flags etc.).
    """

    name: str
    buffers: Mapping[str, Buffer]
    stages: Tuple[Stage, ...]
    limited_copy: bool = False
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity and acyclicity; raise PipelineError."""
        names = set()
        for stage in self.stages:
            if stage.name in names:
                raise PipelineError(f"duplicate stage name {stage.name!r}")
            names.add(stage.name)
        for buf_name, buf in self.buffers.items():
            if buf.name != buf_name:
                raise PipelineError(f"buffer key {buf_name!r} != buffer name {buf.name!r}")
            if buf.mirror_of is not None and buf.mirror_of not in self.buffers:
                raise PipelineError(
                    f"buffer {buf.name!r} mirrors unknown buffer {buf.mirror_of!r}"
                )
        for stage in self.stages:
            for dep in stage.depends_on:
                if dep not in names:
                    raise PipelineError(f"stage {stage.name!r} depends on unknown {dep!r}")
            for access in stage.accesses:
                if access.buffer not in self.buffers:
                    raise PipelineError(
                        f"stage {stage.name!r} accesses unknown buffer {access.buffer!r}"
                    )
            if stage.kind is StageKind.COPY:
                # A copy's declared endpoints and its accesses are two views
                # of the same transfer; the deeper space/size checks live in
                # repro.analysis, but a copy that does not even read its src
                # or write its dst is structurally broken.
                if stage.src not in {a.buffer for a in stage.reads}:
                    raise PipelineError(
                        f"copy stage {stage.name!r} does not read its "
                        f"declared src {stage.src!r}"
                    )
                if stage.dst not in {a.buffer for a in stage.writes}:
                    raise PipelineError(
                        f"copy stage {stage.name!r} does not write its "
                        f"declared dst {stage.dst!r}"
                    )
        self.topological_order()  # raises on cycles

    # -- structure queries ------------------------------------------------------

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def topological_order(self) -> Tuple[Stage, ...]:
        """Stages in dependency order (stable w.r.t. insertion order)."""
        by_name = {s.name: s for s in self.stages}
        indegree = {s.name: len(s.depends_on) for s in self.stages}
        dependents: Dict[str, List[str]] = {s.name: [] for s in self.stages}
        for stage in self.stages:
            for dep in stage.depends_on:
                dependents[dep].append(stage.name)
        ready = [s.name for s in self.stages if indegree[s.name] == 0]
        order: List[Stage] = []
        while ready:
            current = ready.pop(0)
            order.append(by_name[current])
            for successor in dependents[current]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self.stages):
            cyclic = sorted(name for name, deg in indegree.items() if deg > 0)
            raise PipelineError(f"pipeline {self.name!r} has a dependency cycle: {cyclic}")
        return tuple(order)

    def stages_of_kind(self, kind: StageKind) -> Tuple[Stage, ...]:
        return tuple(s for s in self.stages if s.kind is kind)

    @property
    def copy_stages(self) -> Tuple[Stage, ...]:
        return self.stages_of_kind(StageKind.COPY)

    @property
    def total_flops(self) -> float:
        return sum(s.flops for s in self.stages)

    def flops_by_kind(self) -> Dict[StageKind, float]:
        totals = {kind: 0.0 for kind in StageKind}
        for stage in self.stages:
            totals[stage.kind] += stage.flops
        return totals

    @property
    def footprint_bytes(self) -> int:
        """Total bytes across all allocations (copy-version footprint)."""
        return sum(b.size_bytes for b in self.buffers.values())

    def producer_consumer_edges(self) -> Tuple[Tuple[str, str, str], ...]:
        """(producer, consumer, buffer) triples: a stage reads what an
        earlier stage wrote.  Used for Table II characterization and by the
        parallel producer-consumer transform."""
        edges: List[Tuple[str, str, str]] = []
        order = self.topological_order()
        last_writer: Dict[str, str] = {}
        for stage in order:
            for access in stage.reads:
                writer = last_writer.get(access.buffer)
                if writer is not None and writer != stage.name:
                    edges.append((writer, stage.name, access.buffer))
            for access in stage.writes:
                last_writer[access.buffer] = stage.name
        return tuple(edges)

    # -- derivation -------------------------------------------------------------

    def with_stages(
        self,
        stages: Iterable[Stage],
        *,
        buffers: Optional[Mapping[str, Buffer]] = None,
        limited_copy: Optional[bool] = None,
        name: Optional[str] = None,
    ) -> "Pipeline":
        """A copy of this pipeline with replaced stages (and optional fields)."""
        return Pipeline(
            name=self.name if name is None else name,
            buffers=dict(self.buffers if buffers is None else buffers),
            stages=tuple(stages),
            limited_copy=self.limited_copy if limited_copy is None else limited_copy,
            metadata=dict(self.metadata),
        )

    def scaled(self, factor: float) -> "Pipeline":
        """Scale every buffer size and stage FLOP count by ``factor``.

        Used to shrink paper-scale workloads for fast simulation; pair with
        :meth:`repro.config.system.SystemConfig.scaled` to preserve
        footprint-to-cache ratios.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        if factor == 1.0:
            return self
        buffers = {name: buf.scaled(factor) for name, buf in self.buffers.items()}
        stages = tuple(replace(s, flops=s.flops * factor) for s in self.stages)
        return Pipeline(
            name=self.name,
            buffers=buffers,
            stages=stages,
            limited_copy=self.limited_copy,
            metadata=dict(self.metadata),
        )
