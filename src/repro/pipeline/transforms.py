"""Program transformations over benchmark pipelines.

These model the source-level ports and optimizations the paper studies:

* :func:`remove_copies` — the "limited-copy" port (Section III-D): eliminate
  mirror allocations and the copies that fill/drain them, letting the GPU
  access CPU allocations directly.
* :func:`fission_async_streams` — kernel fission + asynchronous copy streams
  for discrete GPUs (Section II-B, Section V-A).
* :func:`parallel_producer_consumer` — chunked in-memory producer-consumer
  synchronization for heterogeneous processors (Section V-A).
* :func:`migrate_compute` — moving low-TLP CPU work into GPU kernels
  (Section V-B validation).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Set, Tuple

from repro.pipeline.buffers import Buffer
from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.stage import BufferAccess, Stage, StageKind


def _expand_deps(
    deps: Sequence[str], removed: Dict[str, Tuple[str, ...]]
) -> Tuple[str, ...]:
    """Replace removed stages in a dependency list by their own dependencies."""
    out: List[str] = []
    seen: Set[str] = set()
    work = list(deps)
    while work:
        dep = work.pop(0)
        if dep in seen:
            continue
        seen.add(dep)
        if dep in removed:
            work.extend(removed[dep])
        else:
            out.append(dep)
    return tuple(out)


def _rewire_access(access: BufferAccess, renames: Dict[str, str]) -> BufferAccess:
    target = renames.get(access.buffer)
    if target is None:
        return access
    return replace(access, buffer=target)


def remove_copies(pipeline: Pipeline) -> Pipeline:
    """Port a discrete-GPU pipeline to its limited-copy form.

    Copies marked ``mirror_copy`` are removed and every access to a mirror
    buffer is redirected to the CPU allocation it replicates.  Copies not
    marked as mirror copies (double-buffer shuffles the runtime cannot prove
    safe, memsets, ...) remain — hence *limited*-copy.  Mirror buffers that
    are no longer referenced are dropped, shrinking the footprint (Fig. 4).
    """
    if pipeline.limited_copy:
        return pipeline

    removed: Dict[str, Tuple[str, ...]] = {}
    survivors: List[Stage] = []
    for stage in pipeline.stages:
        if stage.kind is StageKind.COPY and stage.mirror_copy:
            removed[stage.name] = stage.depends_on
        else:
            survivors.append(stage)

    # Mirrors still filled/drained by residual copies keep their identity:
    # the GPU must keep using the device-side buffer those copies target.
    pinned: Set[str] = set()
    for stage in survivors:
        if stage.kind is StageKind.COPY:
            pinned.update(filter(None, (stage.src, stage.dst)))
    renames = {
        buf.name: buf.mirror_of
        for buf in pipeline.buffers.values()
        if buf.mirror_of is not None and buf.name not in pinned
    }

    rewired: List[Stage] = []
    for stage in survivors:
        new_reads = tuple(_rewire_access(a, renames) for a in stage.reads)
        new_writes = tuple(_rewire_access(a, renames) for a in stage.writes)
        new_deps = _expand_deps(stage.depends_on, removed)
        src = renames.get(stage.src, stage.src) if stage.src else None
        dst = renames.get(stage.dst, stage.dst) if stage.dst else None
        rewired.append(
            replace(
                stage,
                reads=new_reads,
                writes=new_writes,
                depends_on=new_deps,
                src=src,
                dst=dst,
            )
        )

    referenced: Set[str] = set()
    for stage in rewired:
        referenced.update(stage.buffers)
        if stage.src:
            referenced.add(stage.src)
        if stage.dst:
            referenced.add(stage.dst)
    buffers = {
        name: buf
        for name, buf in pipeline.buffers.items()
        if not buf.is_mirror or name in referenced
    }
    # Anything a surviving stage references must be kept even if it is a
    # mirror (residual copies may still target mirrors).
    for name in referenced:
        if name not in buffers:
            buffers[name] = pipeline.buffers[name]

    return Pipeline(
        name=pipeline.name,
        buffers=buffers,
        stages=tuple(rewired),
        limited_copy=True,
        metadata=dict(pipeline.metadata),
    )


def chunk_stages(
    pipeline: Pipeline,
    num_chunks: int,
    *,
    suffix: str = "chunk",
) -> Pipeline:
    """Split every ``chunkable`` stage into ``num_chunks`` data-parallel chunks.

    Chunk *i* of a stage depends on chunk *i* of each chunkable predecessor
    and on every non-chunkable predecessor, which turns a bulk-synchronous
    chain of chunkable stages into ``num_chunks`` software-pipelined lanes
    the simulator can overlap across components.  Dependents that are not
    themselves chunkable wait for all chunks.
    """
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    if num_chunks == 1 or not any(s.chunkable for s in pipeline.stages):
        return pipeline

    chunkable = {s.name for s in pipeline.stages if s.chunkable}
    new_stages: List[Stage] = []
    for stage in pipeline.stages:
        if stage.name not in chunkable:
            deps: List[str] = []
            for dep in stage.depends_on:
                if dep in chunkable:
                    deps.extend(f"{dep}_{suffix}{i}" for i in range(num_chunks))
                else:
                    deps.append(dep)
            new_stages.append(replace(stage, depends_on=tuple(deps)))
            continue
        for i in range(num_chunks):
            deps = []
            for dep in stage.depends_on:
                if dep in chunkable:
                    deps.append(f"{dep}_{suffix}{i}")
                else:
                    deps.append(dep)
            new_stages.append(
                replace(
                    stage,
                    name=f"{stage.name}_{suffix}{i}",
                    parent=stage.logical_name,
                    flops=stage.flops / num_chunks,
                    reads=tuple(a.chunk(i, num_chunks) for a in stage.reads),
                    writes=tuple(a.chunk(i, num_chunks) for a in stage.writes),
                    depends_on=tuple(deps),
                )
            )
    return pipeline.with_stages(new_stages)


def fission_async_streams(pipeline: Pipeline, num_streams: int = 4) -> Pipeline:
    """Kernel fission + asynchronous copy streams (discrete GPU systems).

    The programmer explicitly divides independent data/compute chunks of a
    kernel into separate kernels overlapped with asynchronous copies.  Only
    meaningful on pipelines that still contain copies.
    """
    if pipeline.limited_copy:
        raise PipelineError(
            "fission_async_streams applies to copy pipelines; use "
            "parallel_producer_consumer on limited-copy pipelines"
        )
    return chunk_stages(pipeline, num_streams, suffix="s")


def parallel_producer_consumer(pipeline: Pipeline, num_chunks: int = 4) -> Pipeline:
    """Chunked producer-consumer overlap via in-memory data-ready signals.

    The heterogeneous-processor analogue of kernel fission: consumers wait on
    in-memory flags set by producers, so no streams or kernel splitting API
    is required; structurally the resulting schedule is the same chunked
    software pipeline.
    """
    if not pipeline.limited_copy:
        raise PipelineError(
            "parallel_producer_consumer applies to limited-copy pipelines; "
            "call remove_copies first"
        )
    return chunk_stages(pipeline, num_chunks, suffix="pc")


def migrate_compute(
    pipeline: Pipeline,
    *,
    efficiency_factor: float = 0.85,
    occupancy: float = 0.9,
) -> Pipeline:
    """Move ``migratable`` CPU stages onto GPU cores (Section V-B).

    Each migratable CPU stage becomes a GPU kernel (matrix-vector and
    reduction-like host loops rewritten with GPU atomics, hence the
    efficiency haircut).  Device-to-host mirror copies that existed solely to
    feed migrated stages are pruned, and the migrated stages read the
    GPU-resident source data directly — the reduced data movement the paper
    measured (>2.5x on kmeans and strmclstr).

    Output buffers (``pipeline.metadata["outputs"]``) are never cut off: a
    copy producing a final output is retained.
    """
    migratable = {s.name for s in pipeline.stages if s.migratable and s.kind is StageKind.CPU}
    if not migratable:
        return pipeline

    outputs = set(pipeline.metadata.get("outputs", ()) or ())

    # A d2h mirror copy is dead if every non-copy reader of its destination is
    # a migrated stage (which can now read the GPU-side source directly) and
    # the destination is not a declared final output.
    readers: Dict[str, Set[str]] = {}
    for stage in pipeline.stages:
        if stage.kind is StageKind.COPY:
            continue
        for access in stage.reads:
            readers.setdefault(access.buffer, set()).add(stage.name)

    dead_copies: Dict[str, Tuple[str, ...]] = {}
    redirect: Dict[str, str] = {}
    for stage in pipeline.stages:
        if stage.kind is not StageKind.COPY or not stage.mirror_copy:
            continue
        dst_buf = pipeline.buffers.get(stage.dst)
        src_buf = pipeline.buffers.get(stage.src)
        # Only consider device-to-host drains: GPU-space source, CPU dest.
        if src_buf is None or dst_buf is None or not src_buf.is_mirror:
            continue
        dst_readers = readers.get(stage.dst, set())
        if stage.dst in outputs or not dst_readers or not dst_readers <= migratable:
            continue
        dead_copies[stage.name] = stage.depends_on
        redirect[stage.dst] = stage.src

    new_stages: List[Stage] = []
    for stage in pipeline.stages:
        if stage.name in dead_copies:
            continue
        deps = _expand_deps(stage.depends_on, dead_copies)
        if stage.name in migratable:
            new_stages.append(
                replace(
                    stage,
                    kind=StageKind.GPU_KERNEL,
                    depends_on=deps,
                    reads=tuple(_rewire_access(a, redirect) for a in stage.reads),
                    writes=tuple(_rewire_access(a, redirect) for a in stage.writes),
                    compute_efficiency=stage.compute_efficiency * efficiency_factor,
                    occupancy=occupancy,
                    migratable=False,
                )
            )
        else:
            new_stages.append(replace(stage, depends_on=deps))

    return pipeline.with_stages(new_stages)
