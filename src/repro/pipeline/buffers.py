"""Buffers: the named data arrays a benchmark pipeline operates on.

A buffer is an allocation in one of the two memory spaces of the discrete
GPU system.  In the heterogeneous processor all buffers live in the single
shared memory, but the declared space is retained so the porting transform
(:func:`repro.pipeline.transforms.remove_copies`) can recognize GPU-side
mirrors of CPU allocations and eliminate them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class MemorySpace(enum.Enum):
    """Allocation home in the discrete GPU system."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class Buffer:
    """A named, contiguous allocation.

    Attributes:
        name: unique identifier within a pipeline.
        size_bytes: allocation size.
        space: which memory the buffer lives in on the discrete system.
        mirror_of: name of the CPU buffer this GPU buffer replicates, if any.
            Mirrors (and the copies that fill them) are what the limited-copy
            port removes.
        temporary: GPU-only intermediate data that is never copied (e.g. the
            large inter-kernel temporaries of Lonestar bh and Rodinia srad).
        cpu_line_aligned: whether the allocation is cache-line aligned.  CUDA
            aligns GPU allocations; plain CPU allocations that the GPU
            accesses directly after copy removal may not be, which elevates
            GPU cache contention (the ``*`` benchmarks of Fig. 5).
    """

    name: str
    size_bytes: int
    space: MemorySpace = MemorySpace.CPU
    mirror_of: Optional[str] = None
    temporary: bool = False
    cpu_line_aligned: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("buffer name must be non-empty")
        if self.size_bytes <= 0:
            raise ValueError(f"buffer {self.name!r} must have positive size")
        if self.mirror_of is not None and self.space is not MemorySpace.GPU:
            raise ValueError(f"mirror buffer {self.name!r} must live in GPU space")
        if self.mirror_of == self.name:
            raise ValueError(f"buffer {self.name!r} cannot mirror itself")

    @property
    def is_mirror(self) -> bool:
        return self.mirror_of is not None

    def scaled(self, factor: float, granule: int = 128) -> "Buffer":
        """Return a copy with size scaled by ``factor`` (≥ one granule)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        new_size = max(granule, int(round(self.size_bytes * factor)))
        return Buffer(
            name=self.name,
            size_bytes=new_size,
            space=self.space,
            mirror_of=self.mirror_of,
            temporary=self.temporary,
            cpu_line_aligned=self.cpu_line_aligned,
        )
