"""Memory access patterns for pipeline stages.

Each :class:`repro.pipeline.stage.BufferAccess` carries one of these
patterns; the trace generator (:mod:`repro.trace.generator`) turns the
pattern into a concrete block-granularity address stream.
"""

from __future__ import annotations

import enum


class AccessPattern(enum.Enum):
    """How a stage walks a buffer.

    STREAMING: one sequential sweep per pass; perfect spatial locality, no
        temporal locality beyond the line.
    STRIDED: sequential with a stride larger than one element; touches a
        subset of lines per pass.
    STENCIL: sequential sweep where each element also reads a small spatial
        neighbourhood (rows above/below); strong short-range reuse.
    RANDOM: uniformly random touches over the region; poor locality.
    GRAPH: irregular graph traversal; skewed (power-law) block popularity —
        a few hot blocks (high-degree vertices) and a long random tail.
    REDUCTION: streaming read of the region folding into a tiny output.
    BROADCAST: repeated reads of a small region (e.g. cluster centres);
        near-perfect temporal locality once resident.
    POINTER_CHASE: serially dependent random walk; like RANDOM for caching
        purposes but with no memory-level parallelism (latency-bound).
    """

    STREAMING = "streaming"
    STRIDED = "strided"
    STENCIL = "stencil"
    RANDOM = "random"
    GRAPH = "graph"
    REDUCTION = "reduction"
    BROADCAST = "broadcast"
    POINTER_CHASE = "pointer_chase"


#: Patterns whose address streams are serially dependent, limiting the
#: memory-level parallelism a core can extract (used by the timing model).
LATENCY_BOUND_PATTERNS = frozenset({AccessPattern.POINTER_CHASE})

#: Patterns considered "irregular" for workload characterization purposes.
IRREGULAR_PATTERNS = frozenset(
    {AccessPattern.RANDOM, AccessPattern.GRAPH, AccessPattern.POINTER_CHASE}
)
