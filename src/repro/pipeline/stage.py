"""Pipeline stages: the units of work a benchmark performs.

A benchmark pipeline is a DAG of stages.  Each stage runs on one component
(CPU cores, GPU cores, or the copy engine), performs some floating-point
work, and reads/writes regions of named buffers with declared access
patterns.  Copy stages additionally name their source and destination
buffers so the limited-copy porting transform can reason about them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.pipeline.patterns import AccessPattern


class StageKind(enum.Enum):
    """Which component executes a stage."""

    CPU = "cpu"
    GPU_KERNEL = "gpu"
    COPY = "copy"


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel GPU resource usage, as a CUDA compiler would report.

    When attached to a GPU stage, the engine derives the stage's occupancy
    from the Table I per-core limits (CTA slots, warp slots, registers,
    scratch memory) via :mod:`repro.sim.occupancy` instead of trusting the
    declared value alone.
    """

    threads_per_cta: int = 256
    registers_per_thread: int = 24
    scratch_bytes_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_cta <= 0:
            raise ValueError("threads_per_cta must be positive")
        if self.registers_per_thread <= 0:
            raise ValueError("registers_per_thread must be positive")
        if self.scratch_bytes_per_cta < 0:
            raise ValueError("scratch_bytes_per_cta must be non-negative")


@dataclass(frozen=True)
class Region:
    """A fractional sub-range [start, end) of a buffer."""

    start: float = 0.0
    end: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ValueError(f"invalid region [{self.start}, {self.end})")

    @property
    def span(self) -> float:
        return self.end - self.start

    def subrange(self, index: int, count: int) -> "Region":
        """The ``index``-th of ``count`` equal chunks of this region."""
        if count <= 0 or not 0 <= index < count:
            raise ValueError(f"invalid chunk {index}/{count}")
        width = self.span / count
        lo = self.start + index * width
        hi = self.start + (index + 1) * width if index < count - 1 else self.end
        return Region(lo, hi)


FULL_REGION = Region(0.0, 1.0)


@dataclass(frozen=True)
class BufferAccess:
    """One stage's use of one buffer.

    Attributes:
        buffer: buffer name.
        pattern: how the region is walked.
        region: fractional sub-range of the buffer this access touches.
        fraction: density of touches within the region — graph traversals
            often visit only part of the structure (Fig. 4 discussion of
            Lonestar bfs / Pannotia fw).
        passes: how many times the touched set is swept (iterative kernels
            revisit data; values < 1 model partial sweeps).
        broadcast: when a chunking transform splits this stage, broadcast
            accesses are *not* split — every chunk reads the whole region
            (e.g. the kmeans cluster centres).
    """

    buffer: str
    pattern: AccessPattern = AccessPattern.STREAMING
    region: Region = FULL_REGION
    fraction: float = 1.0
    passes: float = 1.0
    broadcast: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.passes <= 0:
            raise ValueError(f"passes must be positive, got {self.passes}")

    def chunk(self, index: int, count: int) -> "BufferAccess":
        """This access restricted to chunk ``index`` of ``count``."""
        if self.broadcast or count == 1:
            return self
        return replace(self, region=self.region.subrange(index, count))


@dataclass(frozen=True)
class Stage:
    """One node of a benchmark pipeline DAG.

    Attributes:
        name: unique identifier within the pipeline.
        kind: executing component.
        flops: floating-point operations performed (0 for pure copies).
        reads / writes: buffer accesses.
        depends_on: names of stages that must complete first.  Benchmarks as
            written are bulk-synchronous, so builders chain stages linearly;
            transforms relax this.
        compute_efficiency: achievable fraction of the component's peak FLOP
            rate (divergence, low ILP, ... reduce it).
        occupancy: fraction of the component's cores/threads the stage can
            fill; models limited thread-level parallelism (e.g. the kmeans
            centre-replacement step).
        mirror_copy: for COPY stages — True when the copy only fills or
            drains a mirror buffer and is removable by the limited-copy port.
        chunkable: whether data-parallel chunking transforms may split this
            stage (wide, data-independent parallelism per element).
        migratable: whether the compute-migration transform may move this
            stage's work to the other core type.
        src / dst: for COPY stages, source and destination buffer names.
    """

    name: str
    kind: StageKind
    flops: float = 0.0
    reads: Tuple[BufferAccess, ...] = ()
    writes: Tuple[BufferAccess, ...] = ()
    depends_on: Tuple[str, ...] = ()
    compute_efficiency: float = 0.5
    occupancy: float = 1.0
    mirror_copy: bool = False
    chunkable: bool = False
    migratable: bool = False
    src: Optional[str] = None
    dst: Optional[str] = None
    # Optional GPU resource usage; the engine derives occupancy from it.
    resources: Optional["KernelResources"] = None
    # Launched from the GPU via dynamic parallelism (no CPU involvement,
    # but a higher per-launch latency; see repro.pipeline.dynpar).
    device_launched: bool = False
    # Set by chunking transforms so results can be grouped per logical stage.
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if self.flops < 0:
            raise ValueError(f"stage {self.name!r}: flops must be non-negative")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError(f"stage {self.name!r}: compute_efficiency must be in (0, 1]")
        if not 0.0 < self.occupancy <= 1.0:
            raise ValueError(f"stage {self.name!r}: occupancy must be in (0, 1]")
        if self.kind is StageKind.COPY:
            if self.src is None or self.dst is None:
                raise ValueError(f"copy stage {self.name!r} needs src and dst buffers")
            if self.flops:
                raise ValueError(f"copy stage {self.name!r} cannot perform FLOPs")
        else:
            if self.mirror_copy:
                raise ValueError(f"non-copy stage {self.name!r} cannot be a mirror copy")
            if self.src is not None or self.dst is not None:
                raise ValueError(f"non-copy stage {self.name!r} cannot have src/dst")
        if self.resources is not None and self.kind is not StageKind.GPU_KERNEL:
            raise ValueError(f"only GPU kernels take resources, not {self.name!r}")
        if self.device_launched and self.kind is not StageKind.GPU_KERNEL:
            raise ValueError(
                f"only GPU kernels can be device-launched, not {self.name!r}"
            )

    @property
    def logical_name(self) -> str:
        """The pre-chunking stage name, for grouping chunked results."""
        return self.parent if self.parent is not None else self.name

    @property
    def accesses(self) -> Tuple[BufferAccess, ...]:
        return self.reads + self.writes

    @property
    def buffers(self) -> Tuple[str, ...]:
        """All buffer names this stage touches, reads first, de-duplicated."""
        seen = []
        for access in self.accesses:
            if access.buffer not in seen:
                seen.append(access.buffer)
        return tuple(seen)


def copy_stage(
    name: str,
    src: str,
    dst: str,
    *,
    mirror: bool = True,
    region: Region = FULL_REGION,
    depends_on: Tuple[str, ...] = (),
    chunkable: bool = False,
) -> Stage:
    """Convenience constructor for a memory-copy stage."""
    return Stage(
        name=name,
        kind=StageKind.COPY,
        reads=(BufferAccess(src, AccessPattern.STREAMING, region=region),),
        writes=(BufferAccess(dst, AccessPattern.STREAMING, region=region),),
        depends_on=depends_on,
        mirror_copy=mirror,
        chunkable=chunkable,
        src=src,
        dst=dst,
        compute_efficiency=1.0,
    )
