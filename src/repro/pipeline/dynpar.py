"""Dynamic parallelism: device-side kernel launches (Section VI).

CUDA 5.0's dynamic parallelism lets GPU code launch consumer kernels
directly, eliminating the host round-trip that benchmarks with CPU-checked
outer loops pay between kernels (the Lonestar/Rodinia-bfs structure of
Section V-A).  The paper notes, citing Wang and Yalamanchili (IISWC 2014),
that device-side launch overheads "can outweigh performance benefits" —
which this model reproduces: the transform removes the flag copy and the
CPU check, but every device-launched kernel pays the (configurable, higher)
device launch latency instead of the host's.

:func:`dynamic_parallelism` rewrites a pipeline; the engine honours the
``device_launched`` stage flag by skipping the CPU launch sliver and
charging ``SystemConfig.device_launch_latency_s`` instead.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set, Tuple

from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import Stage, StageKind

#: Control stages at or below this many FLOPs are considered loop-condition
#: checks rather than real work.
CONTROL_FLOPS_THRESHOLD = 1e6

#: Buffers at or below this size are considered control flags.
CONTROL_BUFFER_BYTES = 64 * 1024


def _is_control_copy(pipeline: Pipeline, stage: Stage) -> bool:
    """A copy that only moves a small flag back to the host."""
    if stage.kind is not StageKind.COPY:
        return False
    src = pipeline.buffers[stage.src]
    return src.size_bytes <= CONTROL_BUFFER_BYTES


def _is_control_check(pipeline: Pipeline, stage: Stage) -> bool:
    """A tiny CPU stage that only inspects small (flag) buffers."""
    if stage.kind is not StageKind.CPU:
        return False
    if stage.flops > CONTROL_FLOPS_THRESHOLD:
        return False
    if not stage.reads and not stage.writes:
        return False
    return all(
        pipeline.buffers[access.buffer].size_bytes <= CONTROL_BUFFER_BYTES
        for access in stage.accesses
    )


def dynamic_parallelism(pipeline: Pipeline) -> Pipeline:
    """Replace host-checked kernel loops with device-side launches.

    Flag copies and loop-condition CPU checks are removed; GPU kernels whose
    (rewired) dependencies are all GPU kernels become device-launched.  The
    net effect on run time depends on the device launch latency — see the
    ``bench_ablations`` dynamic-parallelism sweep.
    """
    removed: Dict[str, Tuple[str, ...]] = {}
    survivors: List[Stage] = []
    for stage in pipeline.stages:
        if _is_control_copy(pipeline, stage) or _is_control_check(pipeline, stage):
            removed[stage.name] = stage.depends_on
        else:
            survivors.append(stage)
    if not removed:
        return pipeline

    def expand(deps: Tuple[str, ...]) -> Tuple[str, ...]:
        out: List[str] = []
        seen: Set[str] = set()
        work = list(deps)
        while work:
            dep = work.pop(0)
            if dep in seen:
                continue
            seen.add(dep)
            if dep in removed:
                work.extend(removed[dep])
            else:
                out.append(dep)
        return tuple(out)

    rewired = [replace(s, depends_on=expand(s.depends_on)) for s in survivors]
    by_name = {s.name: s for s in rewired}

    final: List[Stage] = []
    for stage in rewired:
        if (
            stage.kind is StageKind.GPU_KERNEL
            and stage.depends_on
            and all(
                by_name[dep].kind is StageKind.GPU_KERNEL
                for dep in stage.depends_on
            )
        ):
            final.append(replace(stage, device_launched=True))
        else:
            final.append(stage)

    # Drop flag buffers nothing references any more.
    referenced: Set[str] = set()
    for stage in final:
        referenced.update(stage.buffers)
        if stage.src:
            referenced.add(stage.src)
        if stage.dst:
            referenced.add(stage.dst)
    buffers = {
        name: buf for name, buf in pipeline.buffers.items() if name in referenced
    }
    return Pipeline(
        name=pipeline.name,
        buffers=buffers,
        stages=tuple(final),
        limited_copy=pipeline.limited_copy,
        metadata=dict(pipeline.metadata),
    )


def count_device_launched(pipeline: Pipeline) -> int:
    return sum(1 for s in pipeline.stages if s.device_launched)
