"""Kernel fusion and GPU-to-CPU kernel migration (Section VI directions).

The paper's implications section discusses two further transformations:

* **Kernel fusion** — merging producer and consumer GPU kernels so
  intermediate data passes through registers/scratch instead of spilling to
  memory.  Fusion "can encounter resource limitations, such as GPU register
  and scratch memory capacity", so :func:`fuse_kernels` checks combined
  :class:`~repro.pipeline.stage.KernelResources` against the Table I core
  limits before fusing.
* **Compute migration to CPU cores** — "migrating short-running GPU kernels
  to CPU cores could increase pipeline compute overlap and increase
  effective cache capacity"; :func:`migrate_kernels_to_cpu` converts
  sub-threshold kernels on limited-copy (heterogeneous) pipelines.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set, Tuple

from repro.config.components import GpuConfig
from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.stage import BufferAccess, KernelResources, Stage, StageKind


def _combined_resources(
    a: Optional[KernelResources], b: Optional[KernelResources]
) -> Optional[KernelResources]:
    """Resource usage of a fused kernel: max threads, summed state."""
    if a is None and b is None:
        return None
    a = a or KernelResources()
    b = b or KernelResources()
    return KernelResources(
        threads_per_cta=max(a.threads_per_cta, b.threads_per_cta),
        registers_per_thread=a.registers_per_thread + b.registers_per_thread,
        scratch_bytes_per_cta=a.scratch_bytes_per_cta + b.scratch_bytes_per_cta,
    )


def _fits_on_core(gpu: GpuConfig, resources: Optional[KernelResources]) -> bool:
    if resources is None:
        return True
    warps = -(-resources.threads_per_cta // gpu.threads_per_warp)
    if warps > gpu.warps_per_core:
        return False
    regs = resources.registers_per_thread * resources.threads_per_cta
    if regs > gpu.registers_per_core:
        return False
    return resources.scratch_bytes_per_cta <= gpu.scratch_bytes_per_core


def _fusable_pair(
    pipeline: Pipeline, producer: Stage, consumer: Stage, gpu: GpuConfig
) -> bool:
    """Producer/consumer GPU kernels in a straight line, fitting one core."""
    if producer.kind is not StageKind.GPU_KERNEL:
        return False
    if consumer.kind is not StageKind.GPU_KERNEL:
        return False
    if consumer.depends_on != (producer.name,):
        return False
    dependents = [
        s for s in pipeline.stages if producer.name in s.depends_on
    ]
    if len(dependents) != 1:
        return False
    produced = {access.buffer for access in producer.writes}
    consumed = {access.buffer for access in consumer.reads}
    if not produced & consumed:
        return False
    return _fits_on_core(
        gpu, _combined_resources(producer.resources, consumer.resources)
    )


def _fuse(producer: Stage, consumer: Stage, outputs: Set[str]) -> Stage:
    """Merge two kernels, eliminating the register-passed intermediate."""
    produced = {access.buffer for access in producer.writes}
    consumed = {access.buffer for access in consumer.reads}
    intermediate = produced & consumed

    # Buffers read downstream of the fusion (or declared outputs) must still
    # be written; only pure intermediates disappear.
    surviving_writes: List[BufferAccess] = list(producer.writes)
    fused_reads = list(producer.reads) + [
        access for access in consumer.reads if access.buffer not in intermediate
    ]
    fused_writes = surviving_writes + [
        access
        for access in consumer.writes
        if access.buffer not in {w.buffer for w in surviving_writes}
    ]
    return replace(
        producer,
        name=f"{producer.name}+{consumer.name}",
        flops=producer.flops + consumer.flops,
        reads=tuple(fused_reads),
        writes=tuple(fused_writes),
        compute_efficiency=min(
            producer.compute_efficiency, consumer.compute_efficiency
        ),
        occupancy=min(producer.occupancy, consumer.occupancy),
        resources=_combined_resources(producer.resources, consumer.resources),
        chunkable=producer.chunkable and consumer.chunkable,
        parent=producer.logical_name,
    )


def fuse_kernels(
    pipeline: Pipeline,
    gpu: Optional[GpuConfig] = None,
    keep_intermediates: bool = False,
) -> Pipeline:
    """Fuse straight-line producer-consumer GPU kernel pairs.

    Applies repeatedly until no pair qualifies, so kernel chains collapse.
    With ``keep_intermediates`` the intermediate buffers stay written (some
    downstream consumer may exist outside the analysed window); otherwise
    pure intermediates that nothing else reads are dropped from the fused
    kernel's traffic — the memory saving fusion exists for.
    """
    gpu = gpu or GpuConfig()
    outputs = set(pipeline.metadata.get("outputs", ()) or ())
    current = pipeline
    while True:
        order = current.topological_order()
        by_name = {s.name: s for s in order}
        fused_pair: Optional[Tuple[Stage, Stage]] = None
        for consumer in order:
            if len(consumer.depends_on) != 1:
                continue
            producer = by_name[consumer.depends_on[0]]
            if _fusable_pair(current, producer, consumer, gpu):
                fused_pair = (producer, consumer)
                break
        if fused_pair is None:
            return current
        producer, consumer = fused_pair

        if keep_intermediates:
            merged = _fuse(producer, consumer, outputs)
        else:
            # Drop writes of intermediates nothing else reads.
            produced = {a.buffer for a in producer.writes}
            consumed = {a.buffer for a in consumer.reads}
            intermediate = produced & consumed
            later_readers: Set[str] = set()
            seen_consumer = False
            for stage in order:
                if stage.name == consumer.name:
                    seen_consumer = True
                    continue
                if seen_consumer:
                    later_readers.update(a.buffer for a in stage.reads)
            dead = {
                buf
                for buf in intermediate
                if buf not in later_readers and buf not in outputs
            }
            merged = _fuse(producer, consumer, outputs)
            merged = replace(
                merged,
                writes=tuple(a for a in merged.writes if a.buffer not in dead),
            )

        new_stages: List[Stage] = []
        for stage in current.stages:
            if stage.name == producer.name:
                new_stages.append(merged)
            elif stage.name == consumer.name:
                continue
            else:
                deps = tuple(
                    merged.name if dep in (producer.name, consumer.name) else dep
                    for dep in stage.depends_on
                )
                # Collapse duplicate deps introduced by the rename.
                deduped: List[str] = []
                for dep in deps:
                    if dep not in deduped:
                        deduped.append(dep)
                new_stages.append(replace(stage, depends_on=tuple(deduped)))
        current = current.with_stages(new_stages)


def migrate_kernels_to_cpu(
    pipeline: Pipeline,
    max_flops: float,
    *,
    efficiency_factor: float = 0.9,
    cpu_occupancy: float = 0.75,
) -> Pipeline:
    """Move short-running GPU kernels onto CPU cores (Section VI).

    Only meaningful on limited-copy pipelines: with shared physical memory
    no data movement is needed, and CPU cores executing the small kernels
    free GPU cores and effective cache capacity.  Kernels at or below
    ``max_flops`` are converted.
    """
    if not pipeline.limited_copy:
        raise PipelineError(
            "migrate_kernels_to_cpu applies to limited-copy pipelines "
            "(shared physical memory); call remove_copies first"
        )
    new_stages: List[Stage] = []
    for stage in pipeline.stages:
        if stage.kind is StageKind.GPU_KERNEL and stage.flops <= max_flops:
            new_stages.append(
                replace(
                    stage,
                    kind=StageKind.CPU,
                    compute_efficiency=stage.compute_efficiency
                    * efficiency_factor,
                    occupancy=cpu_occupancy,
                    resources=None,
                )
            )
        else:
            new_stages.append(stage)
    return pipeline.with_stages(new_stages)
