"""Unit helpers and constants used throughout the library.

All internal quantities use SI base units: bytes, seconds, FLOPs.  These
helpers exist so that configuration code reads like the paper's Table I
("24 GB/s peak", "1MB L2", "700MHz") rather than raw powers of ten.
"""

from __future__ import annotations

# --- capacity ---------------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# --- bandwidth (the paper quotes decimal GB/s pin bandwidths) ---------------
GB_PER_S = 1e9

# --- rates -------------------------------------------------------------------
MHZ = 1e6
GHZ = 1e9
GFLOPS = 1e9

# --- time --------------------------------------------------------------------
SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9


def bytes_to_human(num_bytes: float) -> str:
    """Render a byte count using binary suffixes, e.g. ``1536 -> '1.5KB'``."""
    value = float(num_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or suffix == "TB":
            if suffix == "B":
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def seconds_to_human(seconds: float) -> str:
    """Render a duration with an appropriate unit, e.g. ``0.0031 -> '3.100ms'``."""
    if seconds < 0:
        return "-" + seconds_to_human(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= MILLISECONDS:
        return f"{seconds / MILLISECONDS:.3f}ms"
    if seconds >= MICROSECONDS:
        return f"{seconds / MICROSECONDS:.3f}us"
    return f"{seconds / NANOSECONDS:.1f}ns"


def bandwidth_to_human(bytes_per_second: float) -> str:
    """Render a bandwidth, e.g. ``8e9 -> '8.0GB/s'``."""
    return f"{bytes_per_second / GB_PER_S:.1f}GB/s"
