"""System configuration (Table I of the paper)."""

from repro.config.components import (
    DDR3_1600,
    GDDR5,
    CacheConfig,
    CpuConfig,
    GpuConfig,
    InterconnectConfig,
    MemoryConfig,
    PcieConfig,
)
from repro.config.system import (
    TABLE_I,
    PageFaultConfig,
    SystemConfig,
    SystemKind,
    discrete_gpu_system,
    heterogeneous_processor,
    table_i,
)

__all__ = [
    "CacheConfig",
    "CpuConfig",
    "GpuConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "PcieConfig",
    "PageFaultConfig",
    "SystemConfig",
    "SystemKind",
    "DDR3_1600",
    "GDDR5",
    "TABLE_I",
    "discrete_gpu_system",
    "heterogeneous_processor",
    "table_i",
]
