"""Hardware component configuration records.

These dataclasses encode the simulated-system parameters of the paper's
Table I.  They are deliberately plain: a configuration is data, and the
simulator modules in :mod:`repro.sim` interpret it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GB_PER_S, GFLOPS, GHZ, KB, MB, MICROSECONDS, NANOSECONDS


@dataclass(frozen=True)
class CacheConfig:
    """A single cache level.

    Attributes:
        capacity_bytes: total data capacity.
        line_bytes: cache line (block) size; the paper uses 128B throughout.
        associativity: number of ways per set.
        writeback: whether dirty lines are written back on eviction (all
            caches in this study are write-back, write-allocate).
    """

    capacity_bytes: int
    line_bytes: int = 128
    associativity: int = 8
    writeback: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size must be a positive power of two, got {self.line_bytes}")
        if self.associativity <= 0:
            raise ValueError(f"associativity must be positive, got {self.associativity}")
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "capacity must be a multiple of line_bytes * associativity "
                f"({self.capacity_bytes} % {self.line_bytes * self.associativity})"
            )

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def scaled(self, factor: float) -> "CacheConfig":
        """Return a copy with capacity scaled by ``factor``.

        The result is rounded so the capacity remains a valid multiple of
        ``line_bytes * associativity`` (at least one set).
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        granule = self.line_bytes * self.associativity
        sets = max(1, round(self.capacity_bytes * factor / granule))
        return CacheConfig(
            capacity_bytes=sets * granule,
            line_bytes=self.line_bytes,
            associativity=self.associativity,
            writeback=self.writeback,
        )


@dataclass(frozen=True)
class CpuConfig:
    """CPU complex: out-of-order x86 cores with private L1/L2 caches."""

    num_cores: int = 4
    clock_hz: float = 3.5 * GHZ
    issue_width: int = 4
    flops_per_core: float = 14 * GFLOPS
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KB))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KB))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * KB))
    # Average off-chip miss latency seen by a core and the memory-level
    # parallelism it can sustain; used by the latency-sensitivity term of the
    # CPU stage-duration model.
    miss_latency_s: float = 120 * NANOSECONDS
    memory_level_parallelism: float = 6.0

    @property
    def peak_flops(self) -> float:
        """Aggregate peak FLOP rate across all cores (Fcpu in Eq. 2)."""
        return self.num_cores * self.flops_per_core

    @property
    def total_l2_bytes(self) -> int:
        return self.num_cores * self.l2.capacity_bytes


@dataclass(frozen=True)
class GpuConfig:
    """GPU complex: Fermi-like SIMT cores sharing a banked L2."""

    num_cores: int = 16
    clock_hz: float = 0.7 * GHZ
    max_ctas_per_core: int = 8
    warps_per_core: int = 48
    threads_per_warp: int = 32
    scratch_bytes_per_core: int = 48 * KB
    registers_per_core: int = 32 * 1024
    flops_per_core: float = 22.4 * GFLOPS
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(24 * KB, associativity=4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1 * MB, associativity=16))
    warp_scheduler: str = "greedy-then-oldest"

    @property
    def peak_flops(self) -> float:
        """Aggregate peak FLOP rate across all SIMT cores (Fgpu in Eq. 2)."""
        return self.num_cores * self.flops_per_core

    @property
    def max_threads(self) -> int:
        return self.num_cores * self.warps_per_core * self.threads_per_warp


@dataclass(frozen=True)
class MemoryConfig:
    """An off-chip memory pool built from one or more DRAM channels.

    The paper reports that achieved bandwidth "generally tops out at about
    82% of peak pin bandwidth"; ``efficiency`` captures that.
    """

    name: str
    num_channels: int
    peak_bandwidth: float
    efficiency: float = 0.82

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.peak_bandwidth <= 0:
            raise ValueError("peak bandwidth must be positive")

    @property
    def achievable_bandwidth(self) -> float:
        return self.peak_bandwidth * self.efficiency


@dataclass(frozen=True)
class PcieConfig:
    """PCIe link between CPU and discrete-GPU memory spaces."""

    generation: str = "2.0 x16"
    peak_bandwidth: float = 8 * GB_PER_S
    efficiency: float = 0.9
    # Fixed software + DMA setup cost per copy operation.
    copy_launch_latency_s: float = 10 * MICROSECONDS

    @property
    def achievable_bandwidth(self) -> float:
        return self.peak_bandwidth * self.efficiency


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip interconnect, folded into effective latency/bandwidth terms."""

    name: str
    ports: int
    link_latency_s: float = 20 * NANOSECONDS


# --- Table I instances -------------------------------------------------------

DDR3_1600 = MemoryConfig(name="DDR3-1600", num_channels=2, peak_bandwidth=24 * GB_PER_S)
GDDR5 = MemoryConfig(name="GDDR5", num_channels=4, peak_bandwidth=179 * GB_PER_S)
