"""Whole-system configurations for the two machines of Table I.

:func:`discrete_gpu_system` builds the split-memory discrete GPU machine and
:func:`heterogeneous_processor` builds the single-chip cache-coherent
processor.  Both share identical CPU and GPU core complexes; they differ in
memory topology, the presence of a PCIe link, and whether CPU and GPU share
an on-chip coherence domain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.config.components import (
    DDR3_1600,
    GDDR5,
    CpuConfig,
    GpuConfig,
    InterconnectConfig,
    MemoryConfig,
    PcieConfig,
)
from repro.units import MICROSECONDS


class SystemKind(enum.Enum):
    """The two system organizations the paper compares."""

    DISCRETE = "discrete"
    HETEROGENEOUS = "heterogeneous"


@dataclass(frozen=True)
class PageFaultConfig:
    """CPU-handled GPU page faults (heterogeneous processor only).

    gem5-gpu models GPU faults like IOMMU faults: the GPU interrupts the CPU,
    which maps the page and returns the translation.  Faults are serviced
    serially by the faulting core.
    """

    enabled: bool = True
    page_bytes: int = 4096
    service_latency_s: float = 5 * MICROSECONDS
    # Ordinarily the GPU's other warps make progress while a fault is
    # serviced, so several faults are effectively pipelined.
    hidden_parallelism: float = 8.0
    # Fault-heavy benchmarks (numerous would-be-parallel writes to unmapped
    # memory) instead serialize on the CPU handler; the penalty multiplies
    # the full serial cost (paper: up to 7x slowdown for Rodinia srad).
    serialization_penalty: float = 2.0


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated machine."""

    kind: SystemKind
    cpu: CpuConfig
    gpu: GpuConfig
    cpu_memory: MemoryConfig
    gpu_memory: MemoryConfig
    pcie: Optional[PcieConfig]
    interconnect: InterconnectConfig
    page_faults: PageFaultConfig
    # Per-kernel/copy launch overhead paid on the CPU (drives Cserial).
    kernel_launch_latency_s: float = 8 * MICROSECONDS
    # Per-launch overhead of a device-side (dynamic-parallelism) launch;
    # higher than a host launch, per Wang & Yalamanchili (IISWC 2014).
    device_launch_latency_s: float = 20 * MICROSECONDS

    def __post_init__(self) -> None:
        if self.kind is SystemKind.DISCRETE and self.pcie is None:
            raise ValueError("discrete system requires a PCIe link")
        if self.kind is SystemKind.HETEROGENEOUS and self.pcie is not None:
            raise ValueError("heterogeneous processor has no PCIe link")

    @property
    def is_heterogeneous(self) -> bool:
        return self.kind is SystemKind.HETEROGENEOUS

    @property
    def shared_memory(self) -> bool:
        """True when CPU and GPU address the same physical memory pool."""
        return self.is_heterogeneous

    def scaled(self, factor: float) -> "SystemConfig":
        """Scale cache capacities and per-launch latencies by ``factor``.

        Memory bandwidths and FLOP rates are left untouched: scaling shrinks
        footprints and caches together so that capacity *ratios* — which
        drive contention and spill behaviour — are preserved.  Launch
        latencies are scaled too because launch *counts* do not shrink with
        the input: keeping them constant would let fixed overheads dominate
        scaled runs and distort the run-time breakdowns.  (Per-fault and
        per-miss latencies are untouched: fault and miss counts already
        scale with the footprint.)
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        cpu = replace(
            self.cpu,
            l1i=self.cpu.l1i.scaled(factor),
            l1d=self.cpu.l1d.scaled(factor),
            l2=self.cpu.l2.scaled(factor),
        )
        gpu = replace(
            self.gpu,
            l1=self.gpu.l1.scaled(factor),
            l2=self.gpu.l2.scaled(factor),
        )
        pcie = self.pcie
        if pcie is not None:
            pcie = replace(
                pcie, copy_launch_latency_s=pcie.copy_launch_latency_s * factor
            )
        return replace(
            self,
            cpu=cpu,
            gpu=gpu,
            pcie=pcie,
            kernel_launch_latency_s=self.kernel_launch_latency_s * factor,
            device_launch_latency_s=self.device_launch_latency_s * factor,
        )


def discrete_gpu_system(
    cpu: Optional[CpuConfig] = None,
    gpu: Optional[GpuConfig] = None,
    pcie: Optional[PcieConfig] = None,
) -> SystemConfig:
    """The discrete GPU system of Table I: split DDR3/GDDR5 memories + PCIe."""
    return SystemConfig(
        kind=SystemKind.DISCRETE,
        cpu=cpu or CpuConfig(),
        gpu=gpu or GpuConfig(),
        cpu_memory=DDR3_1600,
        gpu_memory=GDDR5,
        pcie=pcie or PcieConfig(),
        interconnect=InterconnectConfig(name="6-port switch + dance-hall", ports=6),
        page_faults=PageFaultConfig(enabled=False),
    )


def heterogeneous_processor(
    cpu: Optional[CpuConfig] = None,
    gpu: Optional[GpuConfig] = None,
    page_faults: Optional[PageFaultConfig] = None,
) -> SystemConfig:
    """The heterogeneous CPU-GPU processor of Table I: shared GDDR5, no PCIe."""
    return SystemConfig(
        kind=SystemKind.HETEROGENEOUS,
        cpu=cpu or CpuConfig(),
        gpu=gpu or GpuConfig(),
        cpu_memory=GDDR5,
        gpu_memory=GDDR5,
        pcie=None,
        interconnect=InterconnectConfig(name="12-port switch + dance-hall", ports=12),
        page_faults=page_faults or PageFaultConfig(enabled=True),
    )


def table_i() -> dict:
    """Render Table I ("Heterogeneous system parameters") as structured data."""
    discrete = discrete_gpu_system()
    hetero = heterogeneous_processor()
    return {
        "CPU Cores": (
            f"({discrete.cpu.num_cores}) {discrete.cpu.issue_width}-wide out-of-order, "
            f"x86 cores, {discrete.cpu.clock_hz / 1e9:.1f}GHz"
        ),
        "CPU Caches": (
            f"Per-core {discrete.cpu.l1i.capacity_bytes // 1024}kB L1I + "
            f"{discrete.cpu.l1d.capacity_bytes // 1024}kB L1D and exclusive, private "
            f"{discrete.cpu.l2.capacity_bytes // 1024}kB L2 cache, "
            f"{discrete.cpu.l2.line_bytes}B lines"
        ),
        "GPU Cores": (
            f"({discrete.gpu.num_cores}) {discrete.gpu.max_ctas_per_core} CTAs, "
            f"{discrete.gpu.warps_per_core} warps of {discrete.gpu.threads_per_warp} threads, "
            f"{discrete.gpu.clock_hz / 1e6:.0f}MHz"
        ),
        "GPU Caches": (
            f"{discrete.gpu.l1.capacity_bytes // 1024}kB L1 per-core. GPU-shared, banked, "
            f"non-inclusive L2 cache {discrete.gpu.l2.capacity_bytes // (1024 * 1024)}MB, "
            f"{discrete.gpu.l2.line_bytes}B lines"
        ),
        "Discrete: CPU Memory": (
            f"({discrete.cpu_memory.num_channels}) {discrete.cpu_memory.name} channels, "
            f"{discrete.cpu_memory.peak_bandwidth / 1e9:.0f} GB/s peak"
        ),
        "Discrete: GPU Memory": (
            f"({discrete.gpu_memory.num_channels}) {discrete.gpu_memory.name} channels, "
            f"{discrete.gpu_memory.peak_bandwidth / 1e9:.0f} GB/s peak"
        ),
        "Discrete: PCI Express": (
            f"v{discrete.pcie.generation}, {discrete.pcie.peak_bandwidth / 1e9:.0f} GB/s peak"
        ),
        "Heterogeneous: Memory": (
            f"({hetero.gpu_memory.num_channels}) shared {hetero.gpu_memory.name} channels, "
            f"{hetero.gpu_memory.peak_bandwidth / 1e9:.0f} GB/s peak"
        ),
    }


TABLE_I = table_i()
