"""Fig. 7: component-overlap run-time estimates (Eq. 1).

Applies the component-overlap model to both versions of every benchmark and
normalizes to the baseline copy run time.  The paper reports that
overlapping communication and computation could improve run times by
10-15%, largely closing the gap between the copy and limited-copy versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.metrics import geomean
from repro.core.overlap import ComponentTimes, OverlapEstimate, component_overlap_runtime
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class Fig7Row:
    benchmark: str
    copy_runtime_s: float
    limited_runtime_s: float
    copy_estimate: OverlapEstimate
    limited_estimate: OverlapEstimate

    @property
    def copy_normalized(self) -> float:
        return self.copy_estimate.runtime_s / self.copy_runtime_s

    @property
    def limited_normalized(self) -> float:
        return self.limited_estimate.runtime_s / self.copy_runtime_s


def run(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> List[Fig7Row]:
    runner = runner or default_runner()
    rows: List[Fig7Row] = []
    for name, pair in runner.sweep(specs).items():
        rows.append(
            Fig7Row(
                benchmark=name,
                copy_runtime_s=pair.copy.roi_s,
                limited_runtime_s=pair.limited.roi_s,
                copy_estimate=component_overlap_runtime(
                    ComponentTimes.from_result(pair.copy)
                ),
                limited_estimate=component_overlap_runtime(
                    ComponentTimes.from_result(pair.limited)
                ),
            )
        )
    return rows


def summary(rows: List[Fig7Row]) -> Dict[str, float]:
    copy_gain = [
        max(1e-9, r.copy_estimate.runtime_s / r.copy_runtime_s) for r in rows
    ]
    limited_gain = [
        max(1e-9, r.limited_estimate.runtime_s / max(r.limited_runtime_s, 1e-30))
        for r in rows
    ]
    return {
        "geomean_copy_overlap_gain": 1.0 - geomean(copy_gain),
        "geomean_limited_overlap_gain": 1.0 - geomean(limited_gain),
    }


def render(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> str:
    rows = run(runner, specs)
    table_rows = [
        (
            r.benchmark,
            1.0,
            r.copy_normalized,
            r.copy_estimate.bottleneck.value,
            r.limited_runtime_s / r.copy_runtime_s,
            r.limited_normalized,
            r.limited_estimate.bottleneck.value,
        )
        for r in rows
    ]
    table = format_table(
        (
            "Benchmark",
            "Copy RT",
            "Copy Rco",
            "bound",
            "Limited RT",
            "Limited Rco",
            "bound",
        ),
        table_rows,
        title="Fig. 7: Component-overlap estimates (normalized to copy run time)",
    )
    stats = summary(rows)
    return (
        f"{table}\n\n"
        f"Geomean overlap gain, copy version: "
        f"{stats['geomean_copy_overlap_gain']:.1%}\n"
        f"Geomean overlap gain, limited-copy version: "
        f"{stats['geomean_limited_overlap_gain']:.1%} (paper: 10-15% potential)"
    )
