"""Fig. 5: memory access breakdown by component type.

Total off-chip memory accesses per component for copy and limited-copy
versions, normalized to the copy version.  Verifies the paper's headline
numbers: copy accesses are most commonly 4-10% of the total (over 20% for a
substantial subset), and removing copies cuts total accesses by more than
11% in the geometric mean.  Benchmarks flagged ``misaligned_limited_copy``
show elevated limited-copy GPU accesses (the ``*`` marks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.metrics import geomean
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.sim.hierarchy import Component
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class Fig5Row:
    benchmark: str
    misaligned: bool
    copy_accesses: Dict[Component, int]
    limited_accesses: Dict[Component, int]

    @property
    def copy_total(self) -> int:
        return sum(self.copy_accesses.values())

    @property
    def limited_total(self) -> int:
        return sum(self.limited_accesses.values())

    @property
    def copy_fraction(self) -> float:
        """Copy-engine accesses as a fraction of the copy version's total."""
        return (
            self.copy_accesses[Component.COPY] / self.copy_total
            if self.copy_total
            else 0.0
        )

    @property
    def total_ratio(self) -> float:
        """Limited-copy total accesses normalized to the copy version."""
        return self.limited_total / self.copy_total if self.copy_total else 0.0


def run(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> List[Fig5Row]:
    runner = runner or default_runner()
    rows: List[Fig5Row] = []
    for name, pair in runner.sweep(specs).items():
        rows.append(
            Fig5Row(
                benchmark=name,
                misaligned=pair.spec.misaligned_limited_copy,
                copy_accesses=pair.copy.offchip_by_component(),
                limited_accesses=pair.limited.offchip_by_component(),
            )
        )
    return rows


def summary(rows: List[Fig5Row]) -> Dict[str, float]:
    ratios = [max(r.total_ratio, 1e-9) for r in rows]
    fractions = [r.copy_fraction for r in rows]
    return {
        "geomean_access_reduction": 1.0 - geomean(ratios),
        "benchmarks_copy_over_20pct": sum(1 for f in fractions if f > 0.2) / len(rows),
        "benchmarks_copy_4_to_10pct": sum(1 for f in fractions if 0.04 <= f <= 0.10)
        / len(rows),
        "median_copy_fraction": sorted(fractions)[len(fractions) // 2],
    }


def render(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> str:
    rows = run(runner, specs)
    table_rows = []
    for r in rows:
        star = "*" if r.misaligned else ""
        total = max(r.copy_total, 1)
        table_rows.append(
            (
                r.benchmark + star,
                r.copy_accesses[Component.CPU] / total,
                r.copy_accesses[Component.GPU] / total,
                r.copy_accesses[Component.COPY] / total,
                r.limited_accesses[Component.CPU] / total,
                r.limited_accesses[Component.GPU] / total,
                r.limited_accesses[Component.COPY] / total,
                r.total_ratio,
            )
        )
    table = format_table(
        (
            "Benchmark",
            "cpu",
            "gpu",
            "copy",
            "lc:cpu",
            "lc:gpu",
            "lc:copy",
            "lc total",
        ),
        table_rows,
        title="Fig. 5: Memory accesses by component "
        "(normalized to copy version; * = misaligned limited-copy)",
    )
    stats = summary(rows)
    return (
        f"{table}\n\n"
        f"Geomean total-access reduction: {stats['geomean_access_reduction']:.1%} "
        f"(paper: more than 11%)\n"
        f"Benchmarks with copy accesses >20%: "
        f"{stats['benchmarks_copy_over_20pct']:.0%} (paper: a substantial subset)"
    )
