"""Shared sweep runner with result caching.

Every figure of Section IV/V is computed from the same 46-benchmark sweep:
the copy version on the discrete GPU system and the limited-copy version on
the heterogeneous processor.  The runner memoizes simulation results so the
per-figure harnesses (and the pytest benchmarks) reuse one sweep, fans
misses out over a process pool (``parallel=``), and can persist results
across invocations through the content-addressed cache of
:mod:`repro.sim.resultcache` (``cache_dir=``).

Both the in-memory memo and the persistent cache key on the full
(:class:`BenchmarkSpec`, version, :class:`SystemConfig`,
:class:`SimOptions`, engine tag) content hash, so runners at different
``scale`` (or any other option) never collide — even when they share a
cache directory.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config.system import (
    SystemConfig,
    discrete_gpu_system,
    heterogeneous_processor,
)
from repro.experiments.parallel import (
    COPY,
    LIMITED,
    VERSIONS,
    FaultPolicy,
    SweepError,
    SweepMetrics,
    SweepTask,
    TaskFailure,
    resolve_jobs,
    run_tasks,
)
from repro.sim.engine import SimOptions
from repro.sim.observe.metrics import MetricsRegistry
from repro.sim.resultcache import ResultCache, cache_key
from repro.sim.results import SimResult
from repro.workloads.registry import simulatable_specs
from repro.workloads.spec import BenchmarkSpec

if TYPE_CHECKING:
    from repro.experiments.executors import ExecutorBackend

__all__ = [
    "BenchmarkRun",
    "COPY",
    "DEFAULT_BENCH_SCALE",
    "FaultPolicy",
    "LIMITED",
    "SweepError",
    "SweepRunner",
    "TaskFailure",
    "VERSIONS",
    "default_runner",
]

#: Default footprint/cache scale for the benchmark harness.  1/32 keeps a
#: full 46x2 sweep around a minute while preserving the footprint-to-cache
#: ratios that drive every figure (see DESIGN.md); pass --scale to the CLI
#: (or a custom SimOptions) for paper-scale runs.
DEFAULT_BENCH_SCALE = 1 / 32


@dataclass(frozen=True)
class BenchmarkRun:
    """The pair of runs every figure compares."""

    spec: BenchmarkSpec
    copy: SimResult
    limited: SimResult


class SweepRunner:
    """Runs and caches the copy / limited-copy sweep.

    Args:
        options: simulation options shared by every run of the sweep.
        discrete / heterogeneous: the two machines; Table I defaults.
        parallel: process-pool width for sweep fan-out.  ``None`` or 1 runs
            serially in-process; 0 means all cores (``os.cpu_count()``);
            N > 1 uses N workers.  Results are bit-identical either way.
        cache_dir: directory of the persistent result cache; ``None``
            disables persistence (in-memory memoization only).  Pass
            :func:`repro.sim.resultcache.default_cache_dir` for the shared
            ``~/.cache/repro-sweeps`` location.
        verbose: print a one-line progress/metrics summary per sweep to
            stderr.
        preflight: statically lint every pipeline about to be simulated
            (:func:`repro.analysis.assert_lint_clean`) and refuse to run on
            error-level findings by raising
            :class:`repro.analysis.LintError`.  In-memory memo hits skip
            the check — they were vetted when first produced.
        fault_policy: retry/timeout/fail-fast behaviour for failing tasks
            (:class:`~repro.experiments.parallel.FaultPolicy`; default
            policy when ``None``).  Failed tasks never abort a sweep: they
            surface as :class:`TaskFailure` entries on ``last_metrics`` and
            in the ``metrics_registry``, while every completed result is
            kept, cached, and memoized.
        backend: executor backend fanning out the sweep — ``"local"``
            (default process pool), ``"subprocess"``, ``"ssh"``, or a
            ready :class:`~repro.experiments.executors.ExecutorBackend`
            instance.  Results are bit-identical across backends.
        hosts: remote host names for the ``"ssh"`` backend.
    """

    def __init__(
        self,
        options: Optional[SimOptions] = None,
        discrete: Optional[SystemConfig] = None,
        heterogeneous: Optional[SystemConfig] = None,
        parallel: Optional[int] = None,
        cache_dir: Union[None, str, Path] = None,
        verbose: bool = False,
        preflight: bool = False,
        fault_policy: Optional[FaultPolicy] = None,
        backend: Union[None, str, "ExecutorBackend"] = None,
        hosts: Sequence[str] = (),
    ):
        self.options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
        self.discrete = discrete or discrete_gpu_system()
        self.heterogeneous = heterogeneous or heterogeneous_processor()
        self.jobs = resolve_jobs(parallel)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.verbose = verbose
        self.preflight = preflight
        self.fault_policy = fault_policy
        self.backend = backend
        self.hosts = tuple(hosts)
        #: Memo keyed by the *content hash* of each run — includes every
        #: SimOptions field (scale, seed, ...), the system, and the engine
        #: tag, so changing ``self.options`` can never serve stale results.
        self._memo: Dict[str, SimResult] = {}
        self.last_metrics: Optional[SweepMetrics] = None
        #: Per-(benchmark, version) trace summaries of everything this
        #: runner has produced (fresh, cache hit, or memo hit) — the
        #: sweep-level aggregation point of repro.sim.observe.metrics.
        self.metrics_registry = MetricsRegistry()

    # -- keys ----------------------------------------------------------------

    def _system_for(self, version: str) -> SystemConfig:
        return self.discrete if version == COPY else self.heterogeneous

    def _key(self, spec: BenchmarkSpec, version: str) -> str:
        if version not in VERSIONS:
            raise ValueError(f"unknown version {version!r}; choose from {VERSIONS}")
        return cache_key(spec, version, self._system_for(version), self.options)

    # -- execution -----------------------------------------------------------

    def _ensure(
        self, pairs: List[Tuple[BenchmarkSpec, str]]
    ) -> Dict[Tuple[str, str], str]:
        """Fill the memo for every (spec, version); returns their keys."""
        keys: Dict[Tuple[str, str], str] = {}
        tasks: List[Tuple[SweepTask, str]] = []
        memo_hits = 0
        for spec, version in pairs:
            key = self._key(spec, version)
            keys[(spec.full_name, version)] = key
            if key in self._memo:
                memo_hits += 1
                self.metrics_registry.record(
                    spec.full_name, version, self._memo[key]
                )
            else:
                tasks.append((SweepTask(spec, version), key))
        if self.preflight:
            self._preflight([task for task, _ in tasks])
        results, metrics = run_tasks(
            [task for task, _ in tasks],
            discrete=self.discrete,
            heterogeneous=self.heterogeneous,
            options=self.options,
            jobs=self.jobs,
            cache=self.cache,
            metrics_registry=self.metrics_registry,
            policy=self.fault_policy,
            backend=self.backend,
            hosts=self.hosts,
        )
        # Failed tasks produce no result; memoize exactly the successes so
        # a later request re-attempts the failures instead of KeyError-ing.
        for task, key in tasks:
            produced = results.get((task.full_name, task.version))
            if produced is not None:
                self._memo[key] = produced
        metrics.total += memo_hits
        metrics.memo_hits = memo_hits
        self.last_metrics = metrics
        if self.verbose:
            if metrics.total > 2:
                print(metrics.format_line(), file=sys.stderr)
            for failure in metrics.failures:
                print(f"sweep: FAILED {failure.describe()}", file=sys.stderr)
        return keys

    def _preflight(self, tasks: List[SweepTask]) -> None:
        """Refuse to simulate pipelines with error-level lint findings.

        Lints are memoized by pipeline content hash, so repeated sweeps
        over the same specs (scale sweeps, ``pair()`` loops, the static
        advisor) analyse each distinct pipeline once per process.
        """
        from repro.analysis import assert_lint_clean
        from repro.pipeline.transforms import remove_copies

        for task in tasks:
            pipeline = task.spec.pipeline()
            if task.version == LIMITED:
                pipeline = remove_copies(pipeline)
            assert_lint_clean(pipeline, task.spec, memoize=True)

    def _failures_for(self, name: str, version: str) -> List[TaskFailure]:
        metrics = self.last_metrics
        failures = metrics.failures if metrics is not None else []
        return [
            f for f in failures if f.benchmark == name and f.version == version
        ]

    def _require(
        self, name: str, version: str, keys: Dict[Tuple[str, str], str]
    ) -> SimResult:
        key = keys[(name, version)]
        result = self._memo.get(key)
        if result is not None:
            return result
        relevant = self._failures_for(name, version)
        detail = "; ".join(f.describe() for f in relevant) or "no result produced"
        raise SweepError(f"{name}:{version} did not complete: {detail}", relevant)

    def run(self, spec: BenchmarkSpec, version: str) -> SimResult:
        """Simulate one benchmark version (memoized + persistently cached).

        Raises :class:`SweepError` (carrying the structured failures) when
        the task exhausted its retries without producing a result.
        """
        keys = self._ensure([(spec, version)])
        return self._require(spec.full_name, version, keys)

    def try_result(
        self, spec: BenchmarkSpec, version: str
    ) -> Optional[SimResult]:
        """The memoized result of (spec, version), if this runner has one.

        Never simulates: use it after a sweep to read out partial results
        without re-attempting the failed tasks.
        """
        return self._memo.get(self._key(spec, version))

    def pair(self, spec: BenchmarkSpec) -> BenchmarkRun:
        keys = self._ensure([(spec, COPY), (spec, LIMITED)])
        return BenchmarkRun(
            spec=spec,
            copy=self._require(spec.full_name, COPY, keys),
            limited=self._require(spec.full_name, LIMITED, keys),
        )

    def sweep(
        self, specs: Optional[Iterable[BenchmarkSpec]] = None
    ) -> Dict[str, BenchmarkRun]:
        """Run the full (or a restricted) sweep; keyed by full benchmark name.

        Misses fan out over the process pool when ``parallel`` allows; a
        repeat invocation against a warm persistent cache simulates nothing.

        Failing tasks never abort the sweep: benchmarks whose pair could
        not be completed are omitted from the returned dict, their
        :class:`TaskFailure` reports land on ``last_metrics.failures`` (and
        ``metrics_registry.failures``), and single-version successes remain
        readable through :meth:`try_result`.
        """
        specs = list(specs) if specs is not None else list(simulatable_specs())
        keys = self._ensure(
            [(spec, version) for spec in specs for version in VERSIONS]
        )
        runs: Dict[str, BenchmarkRun] = {}
        for spec in specs:
            copy = self._memo.get(keys[(spec.full_name, COPY)])
            limited = self._memo.get(keys[(spec.full_name, LIMITED)])
            if copy is not None and limited is not None:
                runs[spec.full_name] = BenchmarkRun(
                    spec=spec, copy=copy, limited=limited
                )
        return runs

    def trace_summary_table(self) -> str:
        """Per-benchmark trace summaries of every run this runner served."""
        return self.metrics_registry.format_table()


_default_runner: Optional[SweepRunner] = None


def default_runner() -> SweepRunner:
    """Process-wide shared runner so harnesses reuse one sweep."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner()
    return _default_runner
