"""Shared sweep runner with result caching.

Every figure of Section IV/V is computed from the same 46-benchmark sweep:
the copy version on the discrete GPU system and the limited-copy version on
the heterogeneous processor.  The runner memoizes simulation results so the
per-figure harnesses (and the pytest benchmarks) reuse one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.config.system import (
    SystemConfig,
    discrete_gpu_system,
    heterogeneous_processor,
)
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.results import SimResult
from repro.workloads.registry import simulatable_specs
from repro.workloads.spec import BenchmarkSpec

#: Default footprint/cache scale for the benchmark harness.  1/32 keeps a
#: full 46x2 sweep around a minute while preserving the footprint-to-cache
#: ratios that drive every figure (see DESIGN.md); pass --scale to the CLI
#: (or a custom SimOptions) for paper-scale runs.
DEFAULT_BENCH_SCALE = 1 / 32

COPY = "copy"
LIMITED = "limited-copy"
VERSIONS = (COPY, LIMITED)


@dataclass(frozen=True)
class BenchmarkRun:
    """The pair of runs every figure compares."""

    spec: BenchmarkSpec
    copy: SimResult
    limited: SimResult


class SweepRunner:
    """Runs and caches the copy / limited-copy sweep."""

    def __init__(
        self,
        options: Optional[SimOptions] = None,
        discrete: Optional[SystemConfig] = None,
        heterogeneous: Optional[SystemConfig] = None,
    ):
        self.options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
        self.discrete = discrete or discrete_gpu_system()
        self.heterogeneous = heterogeneous or heterogeneous_processor()
        self._cache: Dict[Tuple[str, str], SimResult] = {}

    def run(self, spec: BenchmarkSpec, version: str) -> SimResult:
        """Simulate one benchmark version (cached)."""
        if version not in VERSIONS:
            raise ValueError(f"unknown version {version!r}; choose from {VERSIONS}")
        key = (spec.full_name, version)
        if key not in self._cache:
            pipeline = spec.pipeline()
            if version == COPY:
                result = simulate(pipeline, self.discrete, self.options)
            else:
                result = simulate(
                    remove_copies(pipeline), self.heterogeneous, self.options
                )
            self._cache[key] = result
        return self._cache[key]

    def pair(self, spec: BenchmarkSpec) -> BenchmarkRun:
        return BenchmarkRun(
            spec=spec,
            copy=self.run(spec, COPY),
            limited=self.run(spec, LIMITED),
        )

    def sweep(
        self, specs: Optional[Iterable[BenchmarkSpec]] = None
    ) -> Dict[str, BenchmarkRun]:
        """Run the full (or a restricted) sweep; keyed by full benchmark name."""
        specs = list(specs) if specs is not None else list(simulatable_specs())
        return {spec.full_name: self.pair(spec) for spec in specs}


_default_runner: Optional[SweepRunner] = None


def default_runner() -> SweepRunner:
    """Process-wide shared runner so harnesses reuse one sweep."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner()
    return _default_runner
