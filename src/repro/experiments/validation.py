"""Model validations from Sections V-A and V-B.

* **Overlap validation** — the paper applies kernel fission + async streams
  (discrete) or in-memory data-ready signals (heterogeneous) to backprop,
  kmeans, and strmclstr, and the transformed run times land within ~3.1% of
  the component-overlap estimate (Eq. 1).
* **Migration validation** — rewriting kmeans and strmclstr CPU
  matrix-vector/reduction work into preceding GPU kernels improves run time
  by more than 2.5x, within ~35% of the estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.overlap import ComponentTimes, component_overlap_runtime
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.pipeline.transforms import (
    chunk_stages,
    fission_async_streams,
    migrate_compute,
    parallel_producer_consumer,
    remove_copies,
)
from repro.sim.engine import simulate
from repro.workloads.registry import get

#: The three benchmarks the paper transforms for overlap validation.
OVERLAP_BENCHMARKS = ("rodinia/backprop", "rodinia/kmeans", "rodinia/strmclstr")
#: The two benchmarks it rewrites for migration validation.
MIGRATE_BENCHMARKS = ("rodinia/kmeans", "rodinia/strmclstr")


@dataclass(frozen=True)
class OverlapValidationRow:
    benchmark: str
    version: str
    measured_runtime_s: float
    estimated_runtime_s: float
    transformed_runtime_s: float

    @property
    def error(self) -> float:
        """Transformed run time relative to the estimate (0.031 = 3.1%)."""
        if not self.estimated_runtime_s:
            return 0.0
        return abs(self.transformed_runtime_s - self.estimated_runtime_s) / (
            self.estimated_runtime_s
        )


def validate_overlap(
    runner: Optional[SweepRunner] = None,
    benchmarks: Iterable[str] = OVERLAP_BENCHMARKS,
    streams: int = 4,
) -> List[OverlapValidationRow]:
    """Compare chunked-transform simulations against Eq. 1 (both versions).

    The paper chunks data into at least four concurrent streams, so
    ``streams`` defaults to 4.
    """
    runner = runner or default_runner()
    rows: List[OverlapValidationRow] = []
    for name in benchmarks:
        spec = get(name)
        pipeline = spec.pipeline()
        pair = runner.pair(spec)

        estimate = component_overlap_runtime(ComponentTimes.from_result(pair.copy))
        transformed = simulate(
            fission_async_streams(pipeline, streams), runner.discrete, runner.options
        )
        rows.append(
            OverlapValidationRow(
                benchmark=name,
                version="copy",
                measured_runtime_s=pair.copy.roi_s,
                estimated_runtime_s=estimate.runtime_s,
                transformed_runtime_s=transformed.roi_s,
            )
        )

        limited = remove_copies(pipeline)
        estimate_lc = component_overlap_runtime(
            ComponentTimes.from_result(pair.limited)
        )
        transformed_lc = simulate(
            parallel_producer_consumer(limited, streams),
            runner.heterogeneous,
            runner.options,
        )
        rows.append(
            OverlapValidationRow(
                benchmark=name,
                version="limited-copy",
                measured_runtime_s=pair.limited.roi_s,
                estimated_runtime_s=estimate_lc.runtime_s,
                transformed_runtime_s=transformed_lc.roi_s,
            )
        )
    return rows


@dataclass(frozen=True)
class MigrateValidationRow:
    benchmark: str
    baseline_runtime_s: float
    migrated_runtime_s: float

    @property
    def speedup(self) -> float:
        return (
            self.baseline_runtime_s / self.migrated_runtime_s
            if self.migrated_runtime_s
            else 0.0
        )


def validate_migration(
    runner: Optional[SweepRunner] = None,
    benchmarks: Iterable[str] = MIGRATE_BENCHMARKS,
    chunks: int = 4,
) -> List[MigrateValidationRow]:
    """Simulate the hand-migrated copy versions of kmeans and strmclstr.

    Migration moves the CPU reduction work into GPU kernels and prunes the
    device-to-host copies that fed it; combined with stream chunking this is
    the >2.5x transformation of Section V-B.
    """
    runner = runner or default_runner()
    rows: List[MigrateValidationRow] = []
    for name in benchmarks:
        spec = get(name)
        pipeline = spec.pipeline()
        baseline = runner.run(spec, "copy")
        migrated = migrate_compute(pipeline)
        migrated = chunk_stages(migrated, chunks)
        result = simulate(migrated, runner.discrete, runner.options)
        rows.append(
            MigrateValidationRow(
                benchmark=name,
                baseline_runtime_s=baseline.roi_s,
                migrated_runtime_s=result.roi_s,
            )
        )
    return rows


def render(runner: Optional[SweepRunner] = None) -> str:
    overlap_rows = validate_overlap(runner)
    overlap_table = format_table(
        ("Benchmark", "Version", "Measured", "Eq.1 est.", "Transformed", "Error"),
        [
            (
                r.benchmark,
                r.version,
                f"{r.measured_runtime_s:.6f}",
                f"{r.estimated_runtime_s:.6f}",
                f"{r.transformed_runtime_s:.6f}",
                f"{r.error:.1%}",
            )
            for r in overlap_rows
        ],
        title="Section V-A validation: chunked transforms vs Eq. 1 "
        "(paper: within 3.1%)",
    )
    migrate_rows = validate_migration(runner)
    migrate_table = format_table(
        ("Benchmark", "Baseline", "Migrated", "Speedup"),
        [
            (
                r.benchmark,
                f"{r.baseline_runtime_s:.6f}",
                f"{r.migrated_runtime_s:.6f}",
                f"{r.speedup:.2f}x",
            )
            for r in migrate_rows
        ],
        title="Section V-B validation: compute migration (paper: more than 2.5x)",
    )
    return f"{overlap_table}\n\n{migrate_table}"
