"""Fig. 3: kmeans run times for various benchmark organizations.

Reproduces the Section II case study: normalized run times and GPU
utilizations for the five organizations, against the paper's reported
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.casestudy import ORGANIZATIONS, OrganizationResult, kmeans_case_study
from repro.experiments.report import format_table
from repro.sim.engine import SimOptions

#: Paper-reported values (normalized run time, GPU utilization) per
#: organization; run times are inferred from the quoted improvements
#: (37% async; ~2x no-copy; +40% parallel; +32% caching; <=77% recovered).
PAPER_FIG3: Dict[str, Dict[str, float]] = {
    "Baseline": {"normalized_runtime": 1.00, "gpu_utilization": 0.18},
    "Asynchronous Copy": {"normalized_runtime": 0.63, "gpu_utilization": float("nan")},
    "No Memory Copy": {"normalized_runtime": 0.50, "gpu_utilization": 0.39},
    "Parallel*": {"normalized_runtime": 0.30, "gpu_utilization": 0.65},
    "Parallel + Cache": {"normalized_runtime": 0.23, "gpu_utilization": 0.80},
}


@dataclass(frozen=True)
class Fig3Row:
    organization: str
    runtime_s: float
    normalized_runtime: float
    gpu_utilization: float
    paper_normalized: float
    paper_gpu_utilization: float
    estimated: bool


def run(options: Optional[SimOptions] = None) -> List[Fig3Row]:
    results = kmeans_case_study(options=options)
    baseline = results[0].runtime_s
    rows: List[Fig3Row] = []
    for result in results:
        paper = PAPER_FIG3[result.label]
        rows.append(
            Fig3Row(
                organization=result.label,
                runtime_s=result.runtime_s,
                normalized_runtime=result.runtime_s / baseline,
                gpu_utilization=result.gpu_utilization,
                paper_normalized=paper["normalized_runtime"],
                paper_gpu_utilization=paper["gpu_utilization"],
                estimated=result.estimated,
            )
        )
    return rows


def render(options: Optional[SimOptions] = None) -> str:
    rows = run(options)
    table = format_table(
        (
            "Organization",
            "Runtime (s)",
            "Normalized",
            "Paper",
            "GPU util",
            "Paper util",
        ),
        [
            (
                r.organization + (" (est.)" if r.estimated else ""),
                f"{r.runtime_s:.6f}",
                r.normalized_runtime,
                r.paper_normalized,
                r.gpu_utilization,
                r.paper_gpu_utilization,
            )
            for r in rows
        ],
        title="Fig. 3: Kmeans run times for various benchmark organizations",
    )
    recovered = 1.0 - rows[-1].normalized_runtime
    return f"{table}\n\nRun time recovered vs baseline: {recovered:.0%} (paper: up to 77%)"
