"""Fig. 9: off-chip memory accesses broken down by cause.

Classifies every off-chip access of both benchmark versions into required
(compulsory + long-range reuse), W-R/R-R spills, and W-R/R-R contention,
normalized to the copy version's total.  The paper: R-R contention accounts
for 38% of accesses on average (upwards of 80% for many), W-R contention up
to 36%, spills about 10%; roughly half of all accesses stem from cache
contention caused by residual kernel-granularity synchronization.
``*`` marks bandwidth-limited benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.classify import AccessClass, Classification, classify_result
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.workloads.spec import BenchmarkSpec

CLASS_ORDER = (
    AccessClass.REQUIRED,
    AccessClass.WR_SPILL,
    AccessClass.RR_SPILL,
    AccessClass.RR_CONTENTION,
    AccessClass.WR_CONTENTION,
)


@dataclass(frozen=True)
class Fig9Row:
    benchmark: str
    bandwidth_limited: bool
    copy: Classification
    limited: Classification

    @property
    def limited_total_ratio(self) -> float:
        return self.limited.total / self.copy.total if self.copy.total else 0.0


def run(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> List[Fig9Row]:
    runner = runner or default_runner()
    rows: List[Fig9Row] = []
    for name, pair in runner.sweep(specs).items():
        rows.append(
            Fig9Row(
                benchmark=name,
                bandwidth_limited=pair.spec.bandwidth_limited,
                copy=classify_result(pair.copy),
                limited=classify_result(pair.limited),
            )
        )
    return rows


def summary(rows: List[Fig9Row]) -> Dict[str, float]:
    rr = [r.limited.fraction(AccessClass.RR_CONTENTION) for r in rows]
    contention = [r.limited.contention_fraction for r in rows]
    spills = [r.limited.spill_fraction for r in rows]
    bw_and_contended = [
        r for r in rows if r.bandwidth_limited and r.limited.contention_fraction > 0.2
    ]
    bw_rows = [r for r in rows if r.bandwidth_limited]
    return {
        "mean_rr_contention": sum(rr) / len(rr),
        "mean_contention": sum(contention) / len(contention),
        "mean_spills": sum(spills) / len(spills),
        "bandwidth_limited_also_contended": (
            len(bw_and_contended) / len(bw_rows) if bw_rows else 0.0
        ),
    }


def render(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> str:
    rows = run(runner, specs)
    table_rows = []
    for r in rows:
        star = "*" if r.bandwidth_limited else ""
        base = max(r.copy.total, 1)
        for label, cls in (("copy", r.copy), ("limited", r.limited)):
            table_rows.append(
                (
                    r.benchmark + star,
                    label,
                    cls.total / base,
                    *[cls.counts[c] / base for c in CLASS_ORDER],
                )
            )
    table = format_table(
        (
            "Benchmark",
            "Version",
            "Total",
            "Required",
            "W-R spill",
            "R-R spill",
            "R-R cont.",
            "W-R cont.",
        ),
        table_rows,
        title="Fig. 9: Off-chip accesses by cause "
        "(normalized to copy total; * = bandwidth-limited)",
    )
    stats = summary(rows)
    return (
        f"{table}\n\n"
        f"Mean R-R contention fraction (limited-copy): "
        f"{stats['mean_rr_contention']:.0%} (paper: 38%)\n"
        f"Mean total contention fraction: {stats['mean_contention']:.0%} "
        f"(paper: about half of all accesses)\n"
        f"Mean inter-stage spill fraction: {stats['mean_spills']:.0%} "
        f"(paper: about 10%)\n"
        f"Bandwidth-limited benchmarks that are also cache-contended: "
        f"{stats['bandwidth_limited_also_contended']:.0%} (paper: most)"
    )
