"""Fig. 8: migrated-compute run-time estimates (Eqs. 2-4).

Optimistic estimates of distributing every compute phase across CPU and GPU
cores, bounded by copy time and memory bandwidth, for both benchmark
versions normalized to the copy baseline.  The paper: fully utilizing
compute resources could commonly improve performance by another 4-13%, with
larger gains when CPU execution dominates (e.g. Rodinia dwt); ~20% of
benchmarks stay copy-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.metrics import geomean
from repro.core.migrate import MigrateBound, MigrateEstimate, migrated_compute_runtime
from repro.core.overlap import ComponentTimes
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class Fig8Row:
    benchmark: str
    copy_runtime_s: float
    limited_runtime_s: float
    copy_estimate: MigrateEstimate
    limited_estimate: MigrateEstimate

    @property
    def copy_normalized(self) -> float:
        return self.copy_estimate.runtime_s / self.copy_runtime_s

    @property
    def limited_normalized(self) -> float:
        return self.limited_estimate.runtime_s / self.copy_runtime_s


def run(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> List[Fig8Row]:
    runner = runner or default_runner()
    rows: List[Fig8Row] = []
    for name, pair in runner.sweep(specs).items():
        rows.append(
            Fig8Row(
                benchmark=name,
                copy_runtime_s=pair.copy.roi_s,
                limited_runtime_s=pair.limited.roi_s,
                copy_estimate=migrated_compute_runtime(
                    ComponentTimes.from_result(pair.copy),
                    runner.discrete,
                    float(pair.copy.offchip_bytes()),
                ),
                limited_estimate=migrated_compute_runtime(
                    ComponentTimes.from_result(pair.limited),
                    runner.heterogeneous,
                    float(pair.limited.offchip_bytes()),
                ),
            )
        )
    return rows


def summary(rows: List[Fig8Row]) -> Dict[str, float]:
    limited_gain = [
        max(1e-9, r.limited_estimate.runtime_s / max(r.limited_runtime_s, 1e-30))
        for r in rows
    ]
    copy_dominated = sum(
        1 for r in rows if r.copy_estimate.bound is MigrateBound.COPY
    )
    return {
        "geomean_limited_migrate_gain": 1.0 - geomean(limited_gain),
        "copy_dominated_fraction": copy_dominated / len(rows),
    }


def render(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> str:
    rows = run(runner, specs)
    table_rows = [
        (
            r.benchmark,
            r.copy_normalized,
            r.copy_estimate.bound.value,
            r.limited_normalized,
            r.limited_estimate.bound.value,
        )
        for r in rows
    ]
    table = format_table(
        ("Benchmark", "Copy Rmc", "bound", "Limited Rmc", "bound"),
        table_rows,
        title="Fig. 8: Migrated-compute estimates (normalized to copy run time)",
    )
    stats = summary(rows)
    return (
        f"{table}\n\n"
        f"Geomean migrated-compute gain over limited-copy run time: "
        f"{stats['geomean_limited_migrate_gain']:.1%} (paper: commonly 4-13%)\n"
        f"Copy-bound benchmarks (hard to optimize on discrete GPUs): "
        f"{stats['copy_dominated_fraction']:.0%} (paper: ~20%)"
    )
