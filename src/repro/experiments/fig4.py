"""Fig. 4: memory footprint touched, by component set.

For the copy and limited-copy version of each benchmark, partitions the
touched footprint into mutually exclusive subsets per component combination
and normalizes both bars to the copy version's total — showing how
eliminating mirrored data shrinks the footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.footprint import (
    SUBSET_ORDER,
    FootprintBreakdown,
    footprint_breakdown,
    subset_label,
)
from repro.core.metrics import geomean
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.sim.hierarchy import Component
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class Fig4Row:
    benchmark: str
    copy_total_bytes: int
    limited_total_bytes: int
    #: per-subset fraction of the copy total, for both versions
    copy_fractions: Dict[str, float]
    limited_fractions: Dict[str, float]

    @property
    def footprint_ratio(self) -> float:
        """Limited-copy footprint as a fraction of the copy footprint."""
        return (
            self.limited_total_bytes / self.copy_total_bytes
            if self.copy_total_bytes
            else 0.0
        )

    def gpu_share_of_limited(self) -> float:
        """Fraction of the limited-copy footprint the GPU touches (the paper:
        usually more than 70%)."""
        gpu = sum(
            frac
            for label, frac in self.limited_fractions.items()
            if "gpu" in label
        )
        total = sum(self.limited_fractions.values())
        return gpu / total if total else 0.0


def _fractions(breakdown: FootprintBreakdown, baseline_total: int) -> Dict[str, float]:
    normalized = breakdown.normalized_to(baseline_total)
    return {subset_label(subset): frac for subset, frac in normalized.items()}


def run(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> List[Fig4Row]:
    runner = runner or default_runner()
    rows: List[Fig4Row] = []
    for name, pair in runner.sweep(specs).items():
        copy_bd = footprint_breakdown(pair.copy)
        limited_bd = footprint_breakdown(pair.limited)
        baseline_total = copy_bd.total_bytes
        rows.append(
            Fig4Row(
                benchmark=name,
                copy_total_bytes=baseline_total,
                limited_total_bytes=limited_bd.total_bytes,
                copy_fractions=_fractions(copy_bd, baseline_total),
                limited_fractions=_fractions(limited_bd, baseline_total),
            )
        )
    return rows


def render(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> str:
    rows = run(runner, specs)
    labels = [subset_label(s) for s in SUBSET_ORDER]
    table_rows = []
    for r in rows:
        table_rows.append(
            (
                r.benchmark,
                "copy",
                1.0,
                *[r.copy_fractions.get(label, 0.0) for label in labels],
            )
        )
        table_rows.append(
            (
                r.benchmark,
                "limited",
                r.footprint_ratio,
                *[r.limited_fractions.get(label, 0.0) for label in labels],
            )
        )
    table = format_table(
        ("Benchmark", "Version", "Total (norm.)", *labels),
        table_rows,
        title="Fig. 4: Memory footprint touched by component type "
        "(normalized to copy version)",
    )
    mean_ratio = geomean([max(r.footprint_ratio, 1e-9) for r in rows])
    gpu_shares = [r.gpu_share_of_limited() for r in rows]
    share_70 = sum(1 for s in gpu_shares if s > 0.7) / len(gpu_shares)
    return (
        f"{table}\n\n"
        f"Geomean limited-copy footprint vs copy: {mean_ratio:.2f}\n"
        f"Benchmarks where GPU touches >70% of limited-copy footprint: "
        f"{share_70:.0%} (paper: usually more than 70%)"
    )
