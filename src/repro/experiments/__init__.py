"""Experiment harnesses: one module per table/figure of the paper."""

from repro.experiments import (
    ablations,
    advisor,
    compare,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    parallel,
    table2,
    validation,
)
from repro.experiments.parallel import (
    SweepMetrics,
    SweepTask,
    resolve_jobs,
    run_tasks,
)
from repro.experiments.runner import (
    COPY,
    DEFAULT_BENCH_SCALE,
    LIMITED,
    BenchmarkRun,
    SweepRunner,
    default_runner,
)

__all__ = [
    "BenchmarkRun",
    "COPY",
    "DEFAULT_BENCH_SCALE",
    "LIMITED",
    "SweepMetrics",
    "SweepRunner",
    "SweepTask",
    "ablations",
    "advisor",
    "compare",
    "default_runner",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "parallel",
    "resolve_jobs",
    "run_tasks",
    "table2",
    "validation",
]
