"""Plain-text table rendering for experiment outputs.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent across experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, float_digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_cell(c, float_digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render rows as CSV (for plotting tools); quotes cells with commas."""

    def cell(value: Cell) -> str:
        text = "" if value is None else (
            repr(value) if isinstance(value, float) else str(value)
        )
        if "," in text or '"' in text or "\n" in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        lines.append(",".join(cell(c) for c in row))
    return "\n".join(lines)


def format_mapping(title: str, mapping: Mapping[str, Cell], float_digits: int = 3) -> str:
    """Render a key/value block (used for summary statistics)."""
    width = max((len(k) for k in mapping), default=0)
    lines = [title, "=" * len(title)]
    for key, value in mapping.items():
        lines.append(f"{key.ljust(width)}  {format_cell(value, float_digits)}")
    return "\n".join(lines)
