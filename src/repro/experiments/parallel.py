"""Parallel, cache-backed, fault-tolerant execution of the 46x2 sweep.

The sweep is embarrassingly parallel: each (benchmark, version) simulation
is independent, so this module fans tasks out through a pluggable
:class:`~repro.experiments.executors.ExecutorBackend` — the default
``local`` backend is a ``concurrent.futures.ProcessPoolExecutor``;
``subprocess`` runs each task in its own worker child, and ``ssh`` fans
the same workers out over remote hosts (``--backend`` / ``--hosts``) —
and funnels finished results through the persistent
:class:`~repro.sim.resultcache.ResultCache`.  The coordinator resolves
cache hits before dispatch and stores (or absorbs, for remote workers
that ship their cache-entry bytes back) fresh results as workers
complete.

Most benchmark specs hold closure-based pipeline builders that cannot be
pickled, so tasks cross the process boundary as ``suite/name`` strings and
are re-resolved from the registry inside the worker.  Unregistered specs
(e.g. user-defined benchmarks) are pickled directly when possible and fall
back to in-parent serial execution otherwise — the sweep always completes.

Tasks also *fail* independently.  A supervisor (see :func:`run_tasks`)
catches per-future exceptions instead of letting one bad task abort the
fleet, retries failures with capped exponential backoff, enforces an
optional per-task wall-clock timeout (hung workers are killed and the pool
recycled), and recovers from ``BrokenProcessPool`` by rebuilding the pool —
degrading to in-parent serial execution after repeated breaks.  Whatever
cannot be completed is reported as a structured :class:`TaskFailure` on the
returned :class:`SweepMetrics`; everything that did finish is returned and
cached.  The policy knobs live on :class:`FaultPolicy` and surface on every
CLI sweep command as ``--max-retries`` / ``--task-timeout`` /
``--fail-fast`` (see docs/SWEEPS.md).
"""

from __future__ import annotations

import asyncio
import functools
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Executor,
    Future,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config.system import SystemConfig
from repro.experiments.executors import (
    ExecutorBackend,
    HostUnavailable,
    RemoteTaskError,
    TaskCrash,
    WireProtocolError,
    WorkerOutcome,
    WorkerTask,
    create_backend,
)
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.memo import stage_memo_snapshot
from repro.sim.observe.metrics import MetricsRegistry
from repro.sim.resultcache import ResultCache, cache_key, decode_entry_bytes
from repro.sim.results import SimResult
from repro.testing.faults import maybe_inject
from repro.workloads import registry
from repro.workloads.spec import BenchmarkSpec

#: Patchable sleep seam (tests fake it to observe honored backoffs
#: without actually waiting).
_sleep = time.sleep

COPY = "copy"
LIMITED = "limited-copy"
VERSIONS = (COPY, LIMITED)

#: ``TaskFailure.worker_fate`` values — what happened to the process that
#: was running the task when it finally failed.
FATE_ALIVE = "alive"  # worker survived and returned the exception
FATE_CRASHED = "crashed"  # worker process died (pool broken)
FATE_TIMED_OUT = "timed-out"  # killed by the supervisor's task timeout
FATE_IN_PARENT = "in-parent"  # ran serially in the parent process
FATE_CANCELLED = "cancelled"  # never ran: abandoned by --fail-fast


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None -> 1 (serial), <=0 -> all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class FaultPolicy:
    """How a sweep reacts to failing, hanging, or crashing tasks.

    Args:
        max_retries: additional attempts a failing task gets before it is
            reported as a :class:`TaskFailure` (0 = one attempt, no retry).
        task_timeout_s: wall-clock budget for a single pooled simulation;
            a task exceeding it has its worker killed, the pool recycled,
            and the task retried (``None`` disables the timeout; in-parent
            serial execution cannot be interrupted, so the timeout only
            applies to pool workers).
        fail_fast: stop dispatching new work as soon as any task exhausts
            its retries.  Results already finished (and those of tasks
            still in flight) are kept; undispatched tasks are reported as
            ``cancelled`` failures.
        backoff_base_s: first retry delay; doubles per failed attempt.
        backoff_cap_s: ceiling on the exponential backoff delay.
        max_pool_rebuilds: ``BrokenProcessPool`` recoveries tolerated
            before the sweep degrades to in-parent serial execution.
    """

    max_retries: int = 2
    task_timeout_s: Optional[float] = None
    fail_fast: bool = False
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    max_pool_rebuilds: int = 2

    def backoff_s(self, failed_attempts: int) -> float:
        """Capped exponential delay before retry number ``failed_attempts``."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_base_s * (2 ** max(0, failed_attempts - 1)),
            self.backoff_cap_s,
        )


@dataclass(frozen=True)
class TaskFailure:
    """One task that could not be completed, with its post-mortem."""

    benchmark: str
    version: str
    error_type: str
    message: str
    attempts: int
    worker_fate: str  # one of the FATE_* constants above
    #: Host the final attempt ran on (executor backends; None when
    #: unknown or in-parent).
    host: Optional[str] = None

    def describe(self) -> str:
        where = f" on {self.host}" if self.host else ""
        return (
            f"{self.benchmark}:{self.version} failed after "
            f"{self.attempts} attempt(s) [{self.worker_fate}{where}] "
            f"{self.error_type}: {self.message}"
        )


class SweepError(RuntimeError):
    """A requested simulation failed after exhausting its retries.

    Raised by :class:`~repro.experiments.runner.SweepRunner` accessors that
    must return a result; carries the structured failures behind it.
    """

    def __init__(self, message: str, failures: Sequence[TaskFailure] = ()):
        super().__init__(message)
        self.failures = list(failures)


@dataclass(frozen=True)
class SweepTask:
    """One (benchmark, version) simulation to perform."""

    spec: BenchmarkSpec
    version: str

    @property
    def full_name(self) -> str:
        return self.spec.full_name


@dataclass
class SweepMetrics:
    """What one sweep invocation did, for the per-sweep progress line."""

    total: int = 0
    launched: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    #: Sum of per-simulation wall times (fresh runs measured, cache hits
    #: restored from their stored time) — what a serial, uncached sweep of
    #: the same tasks would have cost.
    serial_estimate_s: float = 0.0
    #: Attempts beyond the first that the fault supervisor scheduled.
    retries: int = 0
    #: Times the process pool was torn down and rebuilt (worker crash or
    #: task timeout).
    pool_rebuilds: int = 0
    #: How many sweep invocations this object aggregates (grows via
    #: :meth:`merge`).
    sweeps: int = 1
    #: Stage-level memoization traffic (repro.sim.memo) of the fresh
    #: simulations this sweep launched: per-stage memory steps replayed
    #: instead of recomputed, and steps computed and recorded.  Pool
    #: workers count their own (per-process) memos; the serial path counts
    #: the parent's shared memo.
    stage_memo_hits: int = 0
    stage_memo_misses: int = 0
    #: Tasks a *remote worker's* cache answered without simulating
    #: (subprocess/ssh backends); coordinator-cache hits stay in
    #: ``cache_hits``.
    remote_cache_hits: int = 0
    #: Fresh results per executor host ("local" for the process pool).
    host_launched: Dict[str, int] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def cancelled(self) -> int:
        return sum(1 for f in self.failures if f.worker_fate == FATE_CANCELLED)

    @property
    def speedup_estimate(self) -> float:
        return self.serial_estimate_s / self.wall_s if self.wall_s > 0 else 0.0

    def merge(self, other: "SweepMetrics") -> None:
        self.total += other.total
        self.launched += other.launched
        self.cache_hits += other.cache_hits
        self.memo_hits += other.memo_hits
        # jobs is a configuration, not a counter: a merged line reports the
        # widest pool any constituent sweep used.
        self.jobs = max(self.jobs, other.jobs)
        self.wall_s += other.wall_s
        self.serial_estimate_s += other.serial_estimate_s
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds
        self.sweeps += other.sweeps
        self.stage_memo_hits += other.stage_memo_hits
        self.stage_memo_misses += other.stage_memo_misses
        self.remote_cache_hits += other.remote_cache_hits
        for host, count in other.host_launched.items():
            self.host_launched[host] = self.host_launched.get(host, 0) + count
        self.failures.extend(other.failures)

    def format_line(self) -> str:
        parts = [
            f"{self.total} runs",
            f"{self.launched} simulated",
            f"{self.cache_hits} cache hits",
        ]
        if self.memo_hits:
            parts.append(f"{self.memo_hits} memo hits")
        if self.stage_memo_hits:
            parts.append(f"{self.stage_memo_hits} stage-memo hits")
        if self.remote_cache_hits:
            parts.append(f"{self.remote_cache_hits} worker cache hits")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failures:
            parts.append(f"{self.failed} failed")
        line = (
            f"sweep: {', '.join(parts)} in {self.wall_s:.1f}s "
            f"[jobs={self.jobs}]"
        )
        if self.serial_estimate_s > 0:
            line += f"; serial estimate {self.serial_estimate_s:.1f}s"
            # Merged metrics sum wall times of sweeps that may have run
            # back-to-back against a warm memo, so a speedup ratio over the
            # sum would be meaningless; only a single sweep claims one.
            if self.sweeps == 1 and self.wall_s > 0:
                line += f" ({self.speedup_estimate:.1f}x)"
        return line


def _system_for(
    version: str, discrete: SystemConfig, heterogeneous: SystemConfig
) -> SystemConfig:
    if version not in VERSIONS:
        raise ValueError(f"unknown version {version!r}; choose from {VERSIONS}")
    return discrete if version == COPY else heterogeneous


def _simulate_version(
    spec: BenchmarkSpec,
    version: str,
    system: SystemConfig,
    options: SimOptions,
) -> Tuple[SimResult, float]:
    start = time.perf_counter()
    # Deterministic fault-injection hook (no-op unless $REPRO_FAULTS is
    # set): the only seam the robustness tests need, in both the pooled
    # worker and the in-parent serial path.
    maybe_inject(spec.full_name, version)
    pipeline = spec.pipeline()
    if version == LIMITED:
        pipeline = remove_copies(pipeline)
    result = simulate(pipeline, system, options)
    return result, time.perf_counter() - start


def _simulate_with_memo(
    spec: BenchmarkSpec,
    version: str,
    system: SystemConfig,
    options: SimOptions,
) -> Tuple[SimResult, float, Tuple[int, int]]:
    """:func:`_simulate_version` plus the run's stage-memo (hits, misses)."""
    before = stage_memo_snapshot()
    result, wall_s = _simulate_version(spec, version, system, options)
    after = stage_memo_snapshot()
    return result, wall_s, (after[0] - before[0], after[1] - before[1])


def _worker(
    payload: Tuple[str, Optional[bytes], str, SystemConfig, SimOptions],
) -> Tuple[str, str, SimResult, float, Tuple[int, int]]:
    """Top-level (picklable) task body executed in a pool worker."""
    full_name, spec_blob, version, system, options = payload
    if spec_blob is None:
        spec = registry.get(full_name)
    else:
        spec = pickle.loads(spec_blob)
    result, wall_s, memo_delta = _simulate_with_memo(
        spec, version, system, options
    )
    return full_name, version, result, wall_s, memo_delta


def _dispatchable(task: SweepTask) -> Optional[bytes]:
    """How to ship a task's spec to a worker: None means "resolve by name
    from the registry"; bytes is a pickled unregistered spec.  Raises when
    the spec cannot be pickled at all (caller runs it in-parent)."""
    try:
        registered = registry.get(task.full_name) is task.spec
    except KeyError:
        registered = False
    if registered:
        return None
    return pickle.dumps(task.spec)


@dataclass
class _TaskState:
    """Supervisor bookkeeping for one dispatched task."""

    task: SweepTask
    key: str
    spec_blob: Optional[bytes] = None
    attempts: int = 0
    ready_at: float = 0.0  # monotonic time when eligible to (re)submit
    started_at: float = 0.0  # monotonic submit time of the current attempt


def run_tasks(
    tasks: Sequence[SweepTask],
    *,
    discrete: SystemConfig,
    heterogeneous: SystemConfig,
    options: SimOptions,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    metrics_registry: Optional[MetricsRegistry] = None,
    policy: Optional[FaultPolicy] = None,
    backend: Union[None, str, ExecutorBackend] = None,
    hosts: Sequence[str] = (),
) -> Tuple[Dict[Tuple[str, str], SimResult], SweepMetrics]:
    """Execute a batch of sweep tasks, parallel, cache-aware, fault-tolerant.

    Returns results keyed by ``(full_name, version)`` plus the metrics of
    this invocation.  With ``jobs`` resolving to 1 the whole batch runs
    serially in-process (bit-identical to the parallel path — simulations
    are deterministic and workers run the same code).  With a
    ``metrics_registry`` every result of the batch — fresh simulation and
    persistent-cache hit alike — is summarized into it, so sweeps can
    surface per-benchmark trace summaries without re-running anything.

    ``backend`` selects the execution substrate when the batch pools
    (``local`` process pool by default; ``subprocess`` for per-task
    worker children; ``ssh`` to fan out over ``hosts`` — or pass a live
    :class:`~repro.experiments.executors.ExecutorBackend`).  Fault
    semantics are backend-independent; ``jobs`` always bounds total
    in-flight tasks.

    A failing task never aborts the batch: it is retried per ``policy``
    (default :class:`FaultPolicy`) and, once its retries are exhausted,
    reported as a :class:`TaskFailure` on ``metrics.failures`` while the
    rest of the sweep completes.  The returned dict then holds exactly the
    successful subset, every fresh success already persisted to ``cache``.
    """
    jobs = resolve_jobs(jobs)
    policy = policy if policy is not None else FaultPolicy()
    metrics = SweepMetrics(total=len(tasks), jobs=jobs)
    results: Dict[Tuple[str, str], SimResult] = {}
    start = time.perf_counter()
    stop = False  # set once fail-fast trips; no further dispatch

    def record(task: SweepTask, result: SimResult) -> None:
        if metrics_registry is not None:
            metrics_registry.record(task.full_name, task.version, result)

    pending: List[Tuple[SweepTask, str]] = []
    for task in tasks:
        system = _system_for(task.version, discrete, heterogeneous)
        key = cache_key(task.spec, task.version, system, options)
        entry = cache.load(key) if cache is not None else None
        if entry is not None:
            results[(task.full_name, task.version)] = entry.result
            record(task, entry.result)
            metrics.cache_hits += 1
            metrics.serial_estimate_s += entry.sim_wall_s
        else:
            pending.append((task, key))

    def finish(
        task: SweepTask,
        key: str,
        result: SimResult,
        wall_s: float,
        memo_delta: Tuple[int, int] = (0, 0),
        *,
        host: Optional[str] = None,
        store: bool = True,
        remote_hit: bool = False,
    ) -> None:
        results[(task.full_name, task.version)] = result
        record(task, result)
        metrics.launched += 1
        if remote_hit:
            metrics.remote_cache_hits += 1
        if host is not None:
            metrics.host_launched[host] = metrics.host_launched.get(host, 0) + 1
        metrics.serial_estimate_s += wall_s
        metrics.stage_memo_hits += memo_delta[0]
        metrics.stage_memo_misses += memo_delta[1]
        if metrics_registry is not None:
            metrics_registry.record_stage_memo(memo_delta[0], memo_delta[1])
        if cache is not None and store:
            cache.store(key, result, sim_wall_s=wall_s)

    def complete(state: _TaskState, outcome: WorkerOutcome) -> bool:
        """Record one successful :class:`WorkerOutcome`.

        Remote outcomes may carry raw cache-entry bytes instead of a
        result; the coordinator's cache absorbs them (warm-cache sync).
        Returns False when the payload was undecodable — the caller
        requeues the task as a wire-protocol failure.
        """
        result = outcome.result
        stored = False
        if result is None:
            entry = None
            if outcome.entry_bytes is not None:
                if cache is not None:
                    entry = cache.absorb(state.key, outcome.entry_bytes)
                    stored = entry is not None
                else:
                    entry = decode_entry_bytes(state.key, outcome.entry_bytes)
            if entry is None:
                return False
            result = entry.result
        finish(
            state.task,
            state.key,
            result,
            outcome.wall_s,
            (outcome.memo_hits, outcome.memo_misses),
            host=outcome.host,
            store=not stored,
            remote_hit=outcome.cache_hit,
        )
        return True

    def final_failure(
        state: _TaskState,
        error_type: str,
        message: str,
        fate: str,
        host: Optional[str] = None,
    ) -> None:
        nonlocal stop
        failure = TaskFailure(
            benchmark=state.task.full_name,
            version=state.task.version,
            error_type=error_type,
            message=message,
            attempts=state.attempts,
            worker_fate=fate,
            host=host,
        )
        metrics.failures.append(failure)
        if metrics_registry is not None:
            metrics_registry.record_failure(failure)
        if policy.fail_fast and fate != FATE_CANCELLED:
            stop = True

    local: List[Tuple[SweepTask, str]] = []
    remote: List[Tuple[SweepTask, str, Optional[bytes]]] = []
    pool_backend: Optional[ExecutorBackend] = None
    if jobs > 1 and len(pending) > 1:
        pool_backend = create_backend(backend, hosts=hosts)
        for task, key in pending:
            try:
                remote.append((task, key, _dispatchable(task)))
            except (pickle.PicklingError, AttributeError, TypeError):
                # Only genuine can't-pickle errors force in-parent serial
                # execution; anything else (a registry bug, a broken
                # __reduce__) must surface instead of silently degrading.
                local.append((task, key))
    else:
        local = pending

    # Workers on this machine share the coordinator's cache directory;
    # the ssh backend rewrites the path for remote filesystems.
    worker_cache_dir = str(cache.root) if cache is not None else None

    def worker_task(state: _TaskState, system: SystemConfig) -> WorkerTask:
        return WorkerTask(
            benchmark=state.task.full_name,
            version=state.task.version,
            spec_blob=state.spec_blob,
            system=system,
            options=options,
            cache_key=state.key,
            cache_dir=worker_cache_dir,
        )

    def run_pooled(
        states: List[_TaskState], backend: ExecutorBackend
    ) -> List[_TaskState]:
        """Supervise pooled execution through an executor backend; returns
        the tasks still unfinished when the backend had to be abandoned
        (degrade-to-serial)."""
        nonlocal stop
        workers = min(jobs, len(states))
        ready: List[_TaskState] = list(states)
        waiting: List[_TaskState] = []
        inflight: Dict[Future, _TaskState] = {}
        try:
            backend.start(workers)
        except Exception:
            return states  # nothing provisioned; run everything in-parent
        # Pool breaks *and* timeout teardowns share one bounded recycle
        # budget: a workload that crashes or hangs every attempt must
        # degrade to serial, not recycle executors forever.
        recycles = 0

        def requeue(
            state: _TaskState,
            error_type: str,
            message: str,
            fate: str,
            host: Optional[str] = None,
        ) -> None:
            if state.attempts > policy.max_retries:
                final_failure(state, error_type, message, fate, host=host)
                return
            metrics.retries += 1
            state.ready_at = time.monotonic() + policy.backoff_s(state.attempts)
            waiting.append(state)

        def requeue_free(state: _TaskState) -> None:
            """Requeue an innocent victim of a backend recycle (or of an
            unreachable host), uncharged."""
            state.attempts -= 1
            state.ready_at = 0.0
            waiting.append(state)

        def drain_finished(future: Future, state: _TaskState) -> bool:
            """Resolve one completed future; True when the backend broke."""
            try:
                outcome = future.result()
            except BrokenExecutor as exc:
                requeue(
                    state,
                    "WorkerCrash",
                    str(exc) or "worker process died",
                    FATE_CRASHED,
                )
                return True
            except CancelledError:
                requeue_free(state)
            except HostUnavailable:
                # The backend quarantined the host; the task never ran
                # there, so it resubmits uncharged (to a surviving host).
                requeue_free(state)
            except TaskCrash as exc:
                requeue(
                    state,
                    "WorkerCrash",
                    str(exc) or "worker process died",
                    FATE_CRASHED,
                    host=exc.host,
                )
            except RemoteTaskError as exc:
                requeue(
                    state, exc.error_type, exc.message, FATE_ALIVE, host=exc.host
                )
            except WireProtocolError as exc:
                requeue(
                    state, "WireProtocolError", str(exc), FATE_ALIVE, host=exc.host
                )
            except Exception as exc:
                requeue(
                    state,
                    type(exc).__name__,
                    str(exc) or repr(exc),
                    FATE_ALIVE,
                )
            else:
                if not complete(state, outcome):
                    requeue(
                        state,
                        "WireProtocolError",
                        "undecodable cache-entry bytes from worker",
                        FATE_ALIVE,
                        host=outcome.host,
                    )
            return False

        def salvage_and_recycle(charge_unfinished: bool) -> bool:
            """Drain finished in-flight futures, refund (or charge) the
            rest, and recycle the backend.  Returns False once the
            recycle budget is spent (the caller degrades to serial)."""
            nonlocal recycles
            recycles += 1
            for future, state in list(inflight.items()):
                if future.done():
                    drain_finished(future, state)
                elif charge_unfinished:
                    requeue(
                        state,
                        "WorkerCrash",
                        "worker process died (pool broken)",
                        FATE_CRASHED,
                        host=backend.host_of(future),
                    )
                else:
                    requeue_free(state)
            inflight.clear()
            if recycles > policy.max_pool_rebuilds:
                return False
            metrics.pool_rebuilds += 1
            backend.recycle()
            return True

        try:
            while ready or waiting or inflight:
                now = time.monotonic()
                if stop:
                    for state in ready + waiting:
                        final_failure(
                            state,
                            "Cancelled",
                            "sweep stopped early (fail-fast)",
                            FATE_CANCELLED,
                        )
                    ready, waiting = [], []
                    if not inflight:
                        break
                else:
                    still_waiting: List[_TaskState] = []
                    for state in waiting:
                        if state.ready_at <= now:
                            ready.append(state)
                        else:
                            still_waiting.append(state)
                    waiting = still_waiting

                # Keep in-flight == running: submitting at most ``workers``
                # tasks makes started_at the true start time (exact timeout
                # accounting) and leaves queued work supervisor-side where
                # fail-fast can actually cancel it.
                broken = False
                while ready and len(inflight) < workers and not stop:
                    state = ready.pop(0)
                    system = _system_for(
                        state.task.version, discrete, heterogeneous
                    )
                    state.attempts += 1
                    state.started_at = time.monotonic()
                    try:
                        future = backend.submit(worker_task(state, system))
                    except (BrokenExecutor, RuntimeError):
                        state.attempts -= 1  # this attempt never ran
                        ready.insert(0, state)
                        broken = True
                        break
                    inflight[future] = state

                if inflight and not broken:
                    now = time.monotonic()
                    timeout: Optional[float] = None
                    if policy.task_timeout_s is not None:
                        earliest = min(s.started_at for s in inflight.values())
                        timeout = (
                            max(0.0, earliest + policy.task_timeout_s - now)
                            + 0.05
                        )
                    if waiting:
                        wake = max(
                            0.0, min(s.ready_at for s in waiting) - now
                        ) + 0.01
                        timeout = wake if timeout is None else min(timeout, wake)
                    done, _ = wait(
                        set(inflight),
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    # Drain every finished future before reacting to any
                    # failure: results that are already computed must be
                    # recorded and cached no matter what their batch-mates
                    # did (the pre-supervisor code lost them).
                    for future in done:
                        state = inflight.pop(future)
                        if drain_finished(future, state):
                            broken = True
                elif not inflight and waiting and not stop and not broken:
                    delay = max(
                        0.0, min(s.ready_at for s in waiting) - time.monotonic()
                    )
                    if delay:
                        _sleep(delay)
                    continue

                if broken:
                    # The backend is gone: salvage any future that
                    # completed with a real result, charge the rest one
                    # attempt each (the crashing task cannot be identified,
                    # and charging everyone bounds a repeat-killer), then
                    # recycle — or degrade to in-parent serial after
                    # repeated breaks.
                    if not salvage_and_recycle(charge_unfinished=True):
                        return ready + waiting
                    continue

                if policy.task_timeout_s is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (future, state)
                        for future, state in inflight.items()
                        if now - state.started_at >= policy.task_timeout_s
                    ]
                    if expired:
                        surgical = True
                        for future, state in expired:
                            del inflight[future]
                            host = backend.host_of(future)
                            if not backend.kill_task(future):
                                surgical = False
                            requeue(
                                state,
                                "TaskTimeout",
                                f"exceeded task timeout "
                                f"({policy.task_timeout_s:g}s)",
                                FATE_TIMED_OUT,
                                host=host,
                            )
                        # Backends with per-task children kill just the
                        # hung worker; a shared pool cannot, so the whole
                        # backend recycles — in-flight tasks that had not
                        # expired are innocent and requeue uncharged.  The
                        # teardown draws on the same bounded budget as a
                        # break: a hang-every-attempt workload degrades to
                        # serial instead of recycling pools forever.
                        if not surgical:
                            if not salvage_and_recycle(charge_unfinished=False):
                                return ready + waiting
            return []
        finally:
            backend.shutdown()

    def run_serial(states: List[_TaskState]) -> None:
        for state in states:
            if stop:
                final_failure(
                    state,
                    "Cancelled",
                    "sweep stopped early (fail-fast)",
                    FATE_CANCELLED,
                )
                continue
            system = _system_for(state.task.version, discrete, heterogeneous)
            # A task that degraded out of the pool mid-retry still owes
            # its backoff (ready_at); honor it instead of hot-looping the
            # retry the pool had deliberately delayed.
            pending_backoff = state.ready_at - time.monotonic()
            if pending_backoff > 0:
                _sleep(pending_backoff)
            while True:
                state.attempts += 1
                try:
                    result, wall_s, memo_delta = _simulate_with_memo(
                        state.task.spec, state.task.version, system, options
                    )
                except Exception as exc:
                    if state.attempts > policy.max_retries:
                        final_failure(
                            state,
                            type(exc).__name__,
                            str(exc) or repr(exc),
                            FATE_IN_PARENT,
                        )
                        break
                    metrics.retries += 1
                    delay = policy.backoff_s(state.attempts)
                    if delay:
                        _sleep(delay)
                else:
                    finish(state.task, state.key, result, wall_s, memo_delta)
                    break

    serial_states = [_TaskState(task, key) for task, key in local]
    if remote and pool_backend is not None:
        remote_states = [
            _TaskState(task, key, blob) for task, key, blob in remote
        ]
        serial_states = run_pooled(remote_states, pool_backend) + serial_states
    run_serial(serial_states)

    metrics.wall_s = time.perf_counter() - start
    return results, metrics


#: Signature of the optional progress hook of :func:`run_tasks_async`:
#: ``(tasks_completed, tasks_total, metrics_so_far)`` awaited on the event
#: loop after every chunk, so servers can stream progress without polling.
ProgressHook = Callable[[int, int, SweepMetrics], Awaitable[None]]


async def run_tasks_async(
    tasks: Sequence[SweepTask],
    *,
    discrete: SystemConfig,
    heterogeneous: SystemConfig,
    options: SimOptions,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    metrics_registry: Optional[MetricsRegistry] = None,
    policy: Optional[FaultPolicy] = None,
    backend: Union[None, str, ExecutorBackend] = None,
    hosts: Sequence[str] = (),
    executor: Optional[Executor] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> Tuple[Dict[Tuple[str, str], SimResult], SweepMetrics]:
    """Asyncio-facing :func:`run_tasks`: the submission API ``repro serve``
    dispatches through.

    The batch runs in ``executor`` (default: the loop's default thread
    pool) so the event loop stays responsive while simulations fan out
    over the process pool; semantics — caching, retries, structured
    :class:`TaskFailure` reports — are exactly those of :func:`run_tasks`.

    With ``chunk_size`` the batch is split into sequential sub-batches
    and ``progress`` is awaited after each one, which is how a server
    streams per-job progress events; without it the whole batch is one
    call (one pool spin-up — cheapest, but no intermediate progress).
    Chunked metrics are merged, so counters (launched, cache hits,
    failures, retries) cover the whole batch either way.
    """
    loop = asyncio.get_running_loop()
    tasks = list(tasks)
    if chunk_size is None or chunk_size <= 0 or chunk_size >= len(tasks):
        chunks = [tasks] if tasks else []
    else:
        chunks = [
            tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)
        ]

    results: Dict[Tuple[str, str], SimResult] = {}
    combined: Optional[SweepMetrics] = None
    completed = 0
    for chunk in chunks:
        part, metrics = await loop.run_in_executor(
            executor,
            functools.partial(
                run_tasks,
                chunk,
                discrete=discrete,
                heterogeneous=heterogeneous,
                options=options,
                jobs=jobs,
                cache=cache,
                metrics_registry=metrics_registry,
                policy=policy,
                backend=backend,
                hosts=hosts,
            ),
        )
        results.update(part)
        if combined is None:
            combined = metrics
        else:
            combined.merge(metrics)
        completed += len(chunk)
        if progress is not None:
            await progress(completed, len(tasks), combined)
    if combined is None:
        combined = SweepMetrics(total=0, jobs=resolve_jobs(jobs))
    return results, combined
