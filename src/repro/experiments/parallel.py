"""Parallel, cache-backed execution of the 46x2 benchmark sweep.

The sweep is embarrassingly parallel: each (benchmark, version) simulation
is independent, so this module fans tasks out over a
``concurrent.futures.ProcessPoolExecutor`` and funnels finished results
through the persistent :class:`~repro.sim.resultcache.ResultCache`.  The
parent process owns the cache: it resolves hits before dispatch and stores
fresh results as workers complete, so workers never touch the filesystem.

Most benchmark specs hold closure-based pipeline builders that cannot be
pickled, so tasks cross the process boundary as ``suite/name`` strings and
are re-resolved from the registry inside the worker.  Unregistered specs
(e.g. user-defined benchmarks) are pickled directly when possible and fall
back to in-parent serial execution otherwise — the sweep always completes.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.system import SystemConfig
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.observe.metrics import MetricsRegistry
from repro.sim.resultcache import ResultCache, cache_key
from repro.sim.results import SimResult
from repro.workloads import registry
from repro.workloads.spec import BenchmarkSpec

COPY = "copy"
LIMITED = "limited-copy"
VERSIONS = (COPY, LIMITED)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None -> 1 (serial), <=0 -> all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SweepTask:
    """One (benchmark, version) simulation to perform."""

    spec: BenchmarkSpec
    version: str

    @property
    def full_name(self) -> str:
        return self.spec.full_name


@dataclass
class SweepMetrics:
    """What one sweep invocation did, for the per-sweep progress line."""

    total: int = 0
    launched: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    #: Sum of per-simulation wall times (fresh runs measured, cache hits
    #: restored from their stored time) — what a serial, uncached sweep of
    #: the same tasks would have cost.
    serial_estimate_s: float = 0.0

    @property
    def speedup_estimate(self) -> float:
        return self.serial_estimate_s / self.wall_s if self.wall_s > 0 else 0.0

    def merge(self, other: "SweepMetrics") -> None:
        self.total += other.total
        self.launched += other.launched
        self.cache_hits += other.cache_hits
        self.memo_hits += other.memo_hits
        self.wall_s += other.wall_s
        self.serial_estimate_s += other.serial_estimate_s

    def format_line(self) -> str:
        parts = [
            f"{self.total} runs",
            f"{self.launched} simulated",
            f"{self.cache_hits} cache hits",
        ]
        if self.memo_hits:
            parts.append(f"{self.memo_hits} memo hits")
        line = (
            f"sweep: {', '.join(parts)} in {self.wall_s:.1f}s "
            f"[jobs={self.jobs}]"
        )
        if self.serial_estimate_s > 0:
            line += (
                f"; serial estimate {self.serial_estimate_s:.1f}s"
                f" ({self.speedup_estimate:.1f}x)"
            )
        return line


def _system_for(
    version: str, discrete: SystemConfig, heterogeneous: SystemConfig
) -> SystemConfig:
    if version not in VERSIONS:
        raise ValueError(f"unknown version {version!r}; choose from {VERSIONS}")
    return discrete if version == COPY else heterogeneous


def _simulate_version(
    spec: BenchmarkSpec,
    version: str,
    system: SystemConfig,
    options: SimOptions,
) -> Tuple[SimResult, float]:
    start = time.perf_counter()
    pipeline = spec.pipeline()
    if version == LIMITED:
        pipeline = remove_copies(pipeline)
    result = simulate(pipeline, system, options)
    return result, time.perf_counter() - start


def _worker(
    payload: Tuple[str, Optional[bytes], str, SystemConfig, SimOptions],
) -> Tuple[str, str, SimResult, float]:
    """Top-level (picklable) task body executed in a pool worker."""
    full_name, spec_blob, version, system, options = payload
    if spec_blob is None:
        spec = registry.get(full_name)
    else:
        spec = pickle.loads(spec_blob)
    result, wall_s = _simulate_version(spec, version, system, options)
    return full_name, version, result, wall_s


def _dispatchable(task: SweepTask) -> Optional[bytes]:
    """How to ship a task's spec to a worker: None means "resolve by name
    from the registry"; bytes is a pickled unregistered spec.  Raises when
    the spec cannot be pickled at all (caller runs it in-parent)."""
    try:
        registered = registry.get(task.full_name) is task.spec
    except KeyError:
        registered = False
    if registered:
        return None
    return pickle.dumps(task.spec)


def run_tasks(
    tasks: Sequence[SweepTask],
    *,
    discrete: SystemConfig,
    heterogeneous: SystemConfig,
    options: SimOptions,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    metrics_registry: Optional[MetricsRegistry] = None,
) -> Tuple[Dict[Tuple[str, str], SimResult], SweepMetrics]:
    """Execute a batch of sweep tasks, parallel and cache-aware.

    Returns results keyed by ``(full_name, version)`` plus the metrics of
    this invocation.  With ``jobs`` resolving to 1 the whole batch runs
    serially in-process (bit-identical to the parallel path — simulations
    are deterministic and workers run the same code).  With a
    ``metrics_registry`` every result of the batch — fresh simulation and
    persistent-cache hit alike — is summarized into it, so sweeps can
    surface per-benchmark trace summaries without re-running anything.
    """
    jobs = resolve_jobs(jobs)
    metrics = SweepMetrics(total=len(tasks), jobs=jobs)
    results: Dict[Tuple[str, str], SimResult] = {}
    start = time.perf_counter()

    def record(task: SweepTask, result: SimResult) -> None:
        if metrics_registry is not None:
            metrics_registry.record(task.full_name, task.version, result)

    pending: List[Tuple[SweepTask, str]] = []
    for task in tasks:
        system = _system_for(task.version, discrete, heterogeneous)
        key = cache_key(task.spec, task.version, system, options)
        entry = cache.load(key) if cache is not None else None
        if entry is not None:
            results[(task.full_name, task.version)] = entry.result
            record(task, entry.result)
            metrics.cache_hits += 1
            metrics.serial_estimate_s += entry.sim_wall_s
        else:
            pending.append((task, key))

    def finish(task: SweepTask, key: str, result: SimResult, wall_s: float) -> None:
        results[(task.full_name, task.version)] = result
        record(task, result)
        metrics.launched += 1
        metrics.serial_estimate_s += wall_s
        if cache is not None:
            cache.store(key, result, sim_wall_s=wall_s)

    local: List[Tuple[SweepTask, str]] = []
    remote: List[Tuple[SweepTask, str, Optional[bytes]]] = []
    if jobs > 1 and len(pending) > 1:
        for task, key in pending:
            try:
                remote.append((task, key, _dispatchable(task)))
            except Exception:
                local.append((task, key))
    else:
        local = pending

    if remote:
        workers = min(jobs, len(remote))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for task, key, spec_blob in remote:
                system = _system_for(task.version, discrete, heterogeneous)
                future = pool.submit(
                    _worker, (task.full_name, spec_blob, task.version, system, options)
                )
                futures[future] = (task, key)
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    task, key = futures[future]
                    _, _, result, wall_s = future.result()
                    finish(task, key, result, wall_s)

    for task, key in local:
        system = _system_for(task.version, discrete, heterogeneous)
        result, wall_s = _simulate_version(task.spec, task.version, system, options)
        finish(task, key, result, wall_s)

    metrics.wall_s = time.perf_counter() - start
    return results, metrics
