"""Table II: producer-consumer relationships in benchmarks.

Counts benchmark pipeline characteristics per suite over all 58 benchmarks:
producer-consumer communication, pipeline parallelizability, regular and
irregular P-C constructs, and software-queue use.  The reproduction's
registry is constructed to match the published counts exactly, and
:data:`PAPER_TABLE2` records them for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_table
from repro.workloads.registry import SUITES, all_specs, suite_specs

#: Published Table II rows: (num, pc_comm, pipe_paral, regular, irregular, swq).
PAPER_TABLE2: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "lonestar": (14, 14, 13, 14, 13, 10),
    "pannotia": (10, 10, 10, 10, 10, 0),
    "parboil": (12, 8, 8, 8, 3, 1),
    "rodinia": (22, 19, 18, 19, 6, 0),
    "total": (58, 51, 49, 51, 32, 11),
}

HEADERS = (
    "Suite",
    "Num.",
    "P-C Comm.",
    "Pipe Paral.",
    "Regular",
    "Irregular",
    "SW Queue",
)


@dataclass(frozen=True)
class Table2Row:
    suite: str
    num: int
    pc_comm: int
    pipe_parallel: int
    regular: int
    irregular: int
    sw_queue: int

    def as_tuple(self) -> Tuple[int, int, int, int, int, int]:
        return (
            self.num,
            self.pc_comm,
            self.pipe_parallel,
            self.regular,
            self.irregular,
            self.sw_queue,
        )


def _count(specs) -> Table2Row:
    return Table2Row(
        suite="",
        num=len(specs),
        pc_comm=sum(s.pc_comm for s in specs),
        pipe_parallel=sum(s.pipe_parallel for s in specs),
        regular=sum(s.regular_pc for s in specs),
        irregular=sum(s.irregular for s in specs),
        sw_queue=sum(s.sw_queue for s in specs),
    )


def run() -> List[Table2Row]:
    """Compute Table II from the benchmark registry."""
    rows: List[Table2Row] = []
    for suite in SUITES:
        counted = _count(suite_specs(suite))
        rows.append(
            Table2Row(suite, *counted.as_tuple())
        )
    total = _count(all_specs())
    rows.append(Table2Row("total", *total.as_tuple()))
    return rows


def matches_paper(rows: List[Table2Row]) -> bool:
    return all(row.as_tuple() == PAPER_TABLE2[row.suite] for row in rows)


def render() -> str:
    rows = run()
    table = format_table(
        HEADERS,
        [(r.suite, *r.as_tuple()) for r in rows],
        title="Table II: Producer-consumer relationships in benchmarks",
    )
    status = "MATCH" if matches_paper(rows) else "MISMATCH"
    return f"{table}\n\nPaper comparison: {status}"
