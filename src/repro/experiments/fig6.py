"""Fig. 6: run-time component-activity breakdown.

For each benchmark version, the ROI is segmented by which components are
active (copy-only, CPU-only, GPU-only, overlapped, idle), normalized to the
copy version's run time.  The paper's aggregate findings: removing copies
yields a geomean 7% run-time improvement, and most execution time runs
exactly one component — the serialized bulk-synchronous structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.metrics import geomean
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.sim.hierarchy import Component
from repro.sim.results import SimResult
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class ActivityShares:
    """One stacked bar of Fig. 6 (seconds per exclusive activity class)."""

    runtime_s: float
    copy_only_s: float
    cpu_only_s: float
    gpu_only_s: float
    overlap_s: float
    idle_s: float

    @staticmethod
    def from_result(result: SimResult) -> "ActivityShares":
        activity = result.activity()
        copy_only = activity.get(frozenset({Component.COPY}), 0.0)
        cpu_only = activity.get(frozenset({Component.CPU}), 0.0)
        gpu_only = activity.get(frozenset({Component.GPU}), 0.0)
        idle = activity.get(frozenset(), 0.0)
        overlap = sum(t for mask, t in activity.items() if len(mask) >= 2)
        return ActivityShares(
            runtime_s=result.roi_s,
            copy_only_s=copy_only,
            cpu_only_s=cpu_only,
            gpu_only_s=gpu_only,
            overlap_s=overlap,
            idle_s=idle,
        )

    @property
    def serial_fraction(self) -> float:
        """Fraction of run time with exactly one component active."""
        if not self.runtime_s:
            return 0.0
        return (self.copy_only_s + self.cpu_only_s + self.gpu_only_s) / self.runtime_s


@dataclass(frozen=True)
class Fig6Row:
    benchmark: str
    copy: ActivityShares
    limited: ActivityShares

    @property
    def runtime_ratio(self) -> float:
        return (
            self.limited.runtime_s / self.copy.runtime_s if self.copy.runtime_s else 0.0
        )


def run(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> List[Fig6Row]:
    runner = runner or default_runner()
    return [
        Fig6Row(
            benchmark=name,
            copy=ActivityShares.from_result(pair.copy),
            limited=ActivityShares.from_result(pair.limited),
        )
        for name, pair in runner.sweep(specs).items()
    ]


def summary(rows: List[Fig6Row]) -> Dict[str, float]:
    ratios = [max(r.runtime_ratio, 1e-9) for r in rows]
    serial = [r.copy.serial_fraction for r in rows]
    return {
        "geomean_runtime_improvement": 1.0 - geomean(ratios),
        "mean_serial_fraction_copy": sum(serial) / len(serial),
        "slowdown_benchmarks": sum(1 for r in ratios if r > 1.0),
    }


def render(
    runner: Optional[SweepRunner] = None,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> str:
    rows = run(runner, specs)
    table_rows = []
    for r in rows:
        base = max(r.copy.runtime_s, 1e-30)
        for label, shares in (("copy", r.copy), ("limited", r.limited)):
            table_rows.append(
                (
                    r.benchmark,
                    label,
                    shares.runtime_s / base,
                    shares.copy_only_s / base,
                    shares.cpu_only_s / base,
                    shares.gpu_only_s / base,
                    shares.overlap_s / base,
                    shares.idle_s / base,
                )
            )
    table = format_table(
        (
            "Benchmark",
            "Version",
            "Runtime",
            "Copy",
            "CPU",
            "GPU",
            "Overlap",
            "Idle",
        ),
        table_rows,
        title="Fig. 6: Run-time component activity (normalized to copy run time)",
    )
    stats = summary(rows)
    return (
        f"{table}\n\n"
        f"Geomean run-time improvement from removing copies: "
        f"{stats['geomean_runtime_improvement']:.1%} (paper: 7%)\n"
        f"Mean serialized (single-component) fraction of copy run time: "
        f"{stats['mean_serial_fraction_copy']:.0%} (paper: most execution time)\n"
        f"Benchmarks slower after porting (page faults): "
        f"{stats['slowdown_benchmarks']:.0f}"
    )
