"""Optimization advisor: Section VI's implications, per benchmark.

Combines the simulation measurements and analytical models into ranked,
quantified recommendations — which of the paper's optimization targets
(copy removal, communication/computation overlap, compute migration,
coordinated caching, aligned allocation, GPU-side fault handling) applies
to a given benchmark, and roughly how much each is worth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.classify import classify_result
from repro.core.migrate import migrated_compute_runtime
from repro.core.overlap import ComponentTimes, component_overlap_runtime
from repro.experiments.report import format_table
from repro.experiments.runner import BenchmarkRun, SweepRunner, default_runner
from repro.sim.hierarchy import Component
from repro.workloads.registry import get
from repro.workloads.spec import BenchmarkSpec


class Optimization(enum.Enum):
    """The optimization targets the paper identifies."""

    REMOVE_COPIES = "remove memory copies"
    OVERLAP = "overlap communication and computation"
    MIGRATE_COMPUTE = "migrate compute between core types"
    COORDINATED_CACHING = "coordinate cache usage (chunk producers/consumers)"
    ALIGNED_ALLOCATION = "use a line-aligned allocator"
    FAULT_HANDLING = "reduce GPU page-fault serialization"


@dataclass(frozen=True)
class Recommendation:
    """One quantified optimization opportunity."""

    optimization: Optimization
    estimated_gain: float  # fraction of the relevant run time recoverable
    rationale: str

    def __post_init__(self) -> None:
        # Gains cannot exceed 100%; regressions (negative gains) can be
        # arbitrarily deep (srad's port loses multiples of its run time).
        if self.estimated_gain > 1.0:
            raise ValueError(f"gain out of range: {self.estimated_gain}")


@dataclass(frozen=True)
class AdvisorReport:
    benchmark: str
    recommendations: List[Recommendation]

    @property
    def top(self) -> Optional[Recommendation]:
        return self.recommendations[0] if self.recommendations else None

    def render(self) -> str:
        rows = [
            (r.optimization.value, f"{r.estimated_gain:+.0%}", r.rationale)
            for r in self.recommendations
        ]
        return format_table(
            ("Optimization", "Est. gain", "Rationale"),
            rows,
            title=f"Optimization advisor: {self.benchmark}",
        )


MIN_GAIN = 0.02


def advise(
    spec: BenchmarkSpec, runner: Optional[SweepRunner] = None
) -> AdvisorReport:
    """Produce ranked recommendations for one benchmark."""
    runner = runner or default_runner()
    pair = runner.pair(spec)
    recommendations: List[Recommendation] = []

    recommendations += _advise_copy_removal(pair)
    recommendations += _advise_overlap(pair)
    recommendations += _advise_migration(pair, runner)
    recommendations += _advise_caching(pair)
    recommendations += _advise_alignment(pair)
    recommendations += _advise_faults(pair)

    recommendations = [r for r in recommendations if abs(r.estimated_gain) >= MIN_GAIN]
    recommendations.sort(key=lambda r: r.estimated_gain, reverse=True)
    return AdvisorReport(benchmark=spec.full_name, recommendations=recommendations)


def advise_benchmark(
    name: str, runner: Optional[SweepRunner] = None
) -> AdvisorReport:
    """Convenience lookup-then-advise."""
    return advise(get(name), runner)


# --- individual analyses -----------------------------------------------------


def _advise_copy_removal(pair: BenchmarkRun) -> List[Recommendation]:
    gain = 1.0 - pair.limited.roi_s / pair.copy.roi_s
    copy_share = (
        pair.copy.busy_time(Component.COPY) / pair.copy.roi_s
        if pair.copy.roi_s
        else 0.0
    )
    if gain >= 0:
        rationale = (
            f"copies occupy {copy_share:.0%} of the baseline; porting to the "
            f"heterogeneous processor recovers {gain:.0%}"
        )
    else:
        rationale = (
            "porting currently loses time (see fault handling below); copy "
            f"share is {copy_share:.0%}"
        )
    return [Recommendation(Optimization.REMOVE_COPIES, gain, rationale)]


def _advise_overlap(pair: BenchmarkRun) -> List[Recommendation]:
    times = ComponentTimes.from_result(pair.limited)
    estimate = component_overlap_runtime(times)
    gain = 1.0 - estimate.runtime_s / pair.limited.roi_s if pair.limited.roi_s else 0.0
    return [
        Recommendation(
            Optimization.OVERLAP,
            gain,
            f"Eq. 1 bound with {estimate.bottleneck.value} as the bottleneck "
            f"({estimate.bottleneck_s:.2e}s of work to hide behind)",
        )
    ]


def _advise_migration(pair: BenchmarkRun, runner: SweepRunner) -> List[Recommendation]:
    times = ComponentTimes.from_result(pair.limited)
    estimate = migrated_compute_runtime(
        times, runner.heterogeneous, float(pair.limited.offchip_bytes())
    )
    gain = 1.0 - estimate.runtime_s / pair.limited.roi_s if pair.limited.roi_s else 0.0
    return [
        Recommendation(
            Optimization.MIGRATE_COMPUTE,
            gain,
            f"Eqs. 2-4 with the {estimate.bound.value} bound binding",
        )
    ]


def _advise_caching(pair: BenchmarkRun) -> List[Recommendation]:
    classification = classify_result(pair.limited)
    avoidable = (
        classification.avoidable / classification.total
        if classification.total
        else 0.0
    )
    # Removing avoidable accesses buys run time in proportion to how
    # memory-bound the benchmark is.
    memory_share = _memory_bound_share(pair)
    gain = avoidable * memory_share
    return [
        Recommendation(
            Optimization.COORDINATED_CACHING,
            gain,
            f"{avoidable:.0%} of off-chip accesses are spills/contention; "
            f"benchmark is ~{memory_share:.0%} memory-bound",
        )
    ]


def _memory_bound_share(pair: BenchmarkRun) -> float:
    total = 0.0
    memory = 0.0
    for record in pair.limited.stages:
        total += record.duration_s
        memory += min(record.timing.memory_s + record.timing.latency_s,
                      record.duration_s)
    return memory / total if total else 0.0


def _advise_alignment(pair: BenchmarkRun) -> List[Recommendation]:
    if not pair.spec.misaligned_limited_copy:
        return []
    copy_gpu = pair.copy.offchip_by_component()[Component.GPU]
    limited_gpu = pair.limited.offchip_by_component()[Component.GPU]
    if not copy_gpu:
        return []
    inflation = max(0.0, limited_gpu / copy_gpu - 1.0)
    gain = min(1.0, inflation / (1.0 + inflation)) * _memory_bound_share(pair)
    return [
        Recommendation(
            Optimization.ALIGNED_ALLOCATION,
            gain,
            f"misalignment inflates GPU off-chip accesses by {inflation:.0%}",
        )
    ]


def _advise_faults(pair: BenchmarkRun) -> List[Recommendation]:
    fault_time = sum(record.timing.fault_s for record in pair.limited.stages)
    if not pair.limited.roi_s or fault_time <= 0.0:
        return []
    gain = fault_time / pair.limited.roi_s
    return [
        Recommendation(
            Optimization.FAULT_HANDLING,
            gain,
            f"CPU-handled GPU page faults serialize {gain:.0%} of the run "
            "(GPU-side handling or pre-touching would remove it)",
        )
    ]
