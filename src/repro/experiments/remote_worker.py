"""One-task worker child of the subprocess/ssh executor backends.

``python -m repro.experiments.remote_worker`` reads a single
``repro.executor.task/v1`` JSON document from stdin, runs (or answers from
its local result cache) the one simulation it describes, and writes a
single ``repro.executor.result/v1`` document to stdout.  stderr is free
for diagnostics — the coordinator only shows it when the worker dies.

Exit status contract (see ``SubprocessBackend._run_child``):

* 0 — a reply was written, ``ok`` true or false; simulation errors travel
  *inside* the payload so the coordinator can report a typed failure.
* non-zero — the worker died (crash, injected kill, unreadable stdin);
  the coordinator charges a ``WorkerCrash``.  255 is reserved: over ssh
  it means "host unreachable", so the worker never exits with it.

With a cache directory in the task, the worker stores its fresh result
locally *and* ships the stored entry bytes back (``sync_cache``), which
is how a distributed sweep leaves every machine — coordinator included —
warm for the next run.
"""

from __future__ import annotations

import os
import pickle
import socket
import sys

from repro.experiments.executors.base import (
    AUTO_CACHE_DIR,
    WireProtocolError,
    WorkerOutcome,
    WorkerTask,
)
from repro.experiments.executors.wire import (
    decode_task,
    encode_error,
    encode_outcome,
)
from repro.testing.faults import EXECUTOR_WORKER_ENV

#: Exit status when the task document itself cannot be decoded — a
#: coordinator/worker version skew, not a task failure.
EXIT_BAD_TASK = 65  # EX_DATAERR


def run_task(task: WorkerTask, host: str) -> bytes:
    """Execute one decoded task; returns the encoded reply document."""
    from repro.experiments.parallel import _simulate_with_memo
    from repro.sim.resultcache import ResultCache
    from repro.workloads import registry

    try:
        if task.spec_blob is not None:
            spec = pickle.loads(task.spec_blob)
        else:
            spec = registry.get(task.benchmark)
        cache = None
        if task.cache_dir:
            cache = ResultCache(
                None if task.cache_dir == AUTO_CACHE_DIR else task.cache_dir
            )
        if cache is not None:
            entry = cache.load(task.cache_key)
            if entry is not None:
                sync_bytes = None
                if task.sync_cache:
                    try:
                        sync_bytes = cache.path_for(task.cache_key).read_bytes()
                    except OSError:
                        pass  # entry vanished underneath us; ship the result
                return encode_outcome(
                    WorkerOutcome(
                        benchmark=task.benchmark,
                        version=task.version,
                        wall_s=entry.sim_wall_s,
                        host=host,
                        cache_hit=True,
                        entry_bytes=sync_bytes,
                        result=None if sync_bytes is not None else entry.result,
                    )
                )
        result, wall_s, memo_delta = _simulate_with_memo(
            spec, task.version, task.system, task.options
        )
        entry_bytes = None
        if cache is not None:
            path = cache.store(task.cache_key, result, sim_wall_s=wall_s)
            if task.sync_cache:
                entry_bytes = path.read_bytes()
        return encode_outcome(
            WorkerOutcome(
                benchmark=task.benchmark,
                version=task.version,
                wall_s=wall_s,
                memo_hits=memo_delta[0],
                memo_misses=memo_delta[1],
                host=host,
                result=None if entry_bytes is not None else result,
                entry_bytes=entry_bytes,
            )
        )
    except Exception as exc:  # a typed failure reply, never a dead worker
        return encode_error(
            task.benchmark,
            task.version,
            type(exc).__name__,
            str(exc) or repr(exc),
            host=host,
        )


def main() -> int:
    # Mark this process as an executor worker so the kill fault mode
    # (repro.testing.faults) is allowed to actually kill it.
    os.environ[EXECUTOR_WORKER_ENV] = "1"
    host = socket.gethostname() or "worker"
    data = sys.stdin.buffer.read()
    try:
        task = decode_task(data)
    except WireProtocolError as exc:
        print(f"remote_worker: bad task document: {exc}", file=sys.stderr)
        return EXIT_BAD_TASK
    reply = run_task(task, host)
    sys.stdout.buffer.write(reply)
    sys.stdout.buffer.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
