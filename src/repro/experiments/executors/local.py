"""The in-process pool backend: the original ProcessPoolExecutor, boxed.

Behavior-identical to the supervisor owning the pool itself (PR 5): same
worker body, same hard-terminate teardown of hung workers, same
``BrokenExecutor`` surfacing.  The only change is shape — tasks go in as
:class:`WorkerTask` and come out as :class:`WorkerOutcome`.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Optional, Tuple

from repro.experiments.executors.base import (
    LOCAL_HOST,
    ExecutorBackend,
    WorkerOutcome,
    WorkerTask,
)


def _local_worker(
    payload: Tuple[str, Optional[bytes], str, object, object],
) -> WorkerOutcome:
    """Top-level (picklable) pool task: run `_worker`, box the outcome."""
    # Imported lazily so unpickling this function in a fresh worker does
    # not import the supervisor module before the executors package.
    from repro.experiments.parallel import _worker

    full_name, version, result, wall_s, memo_delta = _worker(payload)
    return WorkerOutcome(
        benchmark=full_name,
        version=version,
        wall_s=wall_s,
        memo_hits=memo_delta[0],
        memo_misses=memo_delta[1],
        host=LOCAL_HOST,
        result=result,
    )


class LocalPoolBackend(ExecutorBackend):
    """``--backend local``: a ProcessPoolExecutor on this machine."""

    name = "local"

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 1

    def start(self, workers: int) -> None:
        self._workers = max(1, workers)
        self._pool = ProcessPoolExecutor(max_workers=self._workers)

    def submit(self, task: WorkerTask) -> "Future[WorkerOutcome]":
        if self._pool is None:
            raise RuntimeError("backend not started")
        payload = (
            task.benchmark,
            task.spec_blob,
            task.version,
            task.system,
            task.options,
        )
        return self._pool.submit(_local_worker, payload)

    def host_of(self, future: "Future[WorkerOutcome]") -> Optional[str]:
        return LOCAL_HOST

    def _terminate(self) -> None:
        # Hung or crashed workers cannot be joined; kill what's left.
        if self._pool is None:
            return
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def recycle(self) -> None:
        self._terminate()
        self._pool = ProcessPoolExecutor(max_workers=self._workers)

    def shutdown(self) -> None:
        self._terminate()

    def healthy(self) -> bool:
        return self._pool is not None and not getattr(self._pool, "_broken", False)
