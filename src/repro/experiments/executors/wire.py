"""JSON wire format spoken between the coordinator and remote workers.

One task request flows to a worker's stdin, one result reply flows back on
its stdout — a single JSON document each way, so the protocol works over
any byte pipe (a local child process, ``ssh host python -m ...``).

Encoding reuses :func:`repro.sim.resultcache.canonical` (dataclasses →
field dicts, enums → values), which already covers every config object;
decoding rebuilds the typed dataclasses generically from their field
annotations, so new ``SystemConfig``/``SimOptions`` fields never need
hand-written codec updates.  Results travel either as raw content-addressed
cache-entry bytes (base64; the coordinator's cache absorbs them verbatim —
warm-cache synchronization) or, for cacheless workers, as a lossless
``repro.sim_result/v2-full`` dict.

Anything malformed — truncated stdout, non-JSON garbage, a foreign schema,
a field of the wrong shape — decodes to :class:`WireProtocolError`, which
the supervisor converts into a structured retryable ``TaskFailure`` rather
than crashing the coordinator (tests/test_executors.py pins this).
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import json
import typing
from typing import Any, Dict, Optional, Type, TypeVar, Union

from repro.config.system import SystemConfig
from repro.sim.engine import SimOptions
from repro.sim.resultcache import canonical
from repro.sim.results import SimResult
from repro.sim.serialize import result_from_dict, result_to_full_dict

from repro.experiments.executors.base import (
    WireProtocolError,
    WorkerOutcome,
    WorkerTask,
)

#: Schema tags of the two wire documents.
TASK_SCHEMA = "repro.executor.task/v1"
RESULT_SCHEMA = "repro.executor.result/v1"

T = TypeVar("T")


def _from_wire(cls: Any, value: Any) -> Any:
    """Rebuild a typed value from its :func:`canonical` wire form.

    Handles the closed type universe of the config/options dataclasses:
    nested (frozen) dataclasses, enums, ``Optional[...]``, tuples/lists,
    and JSON scalars.  Raises ``WireProtocolError`` on shape mismatches.
    """
    origin = typing.get_origin(cls)
    if origin is Union:  # Optional[X] is Union[X, None]
        args = [a for a in typing.get_args(cls) if a is not type(None)]
        if value is None:
            if type(None) in typing.get_args(cls):
                return None
            raise WireProtocolError(f"unexpected null for {cls}")
        if len(args) != 1:
            raise WireProtocolError(f"cannot decode union {cls}")
        return _from_wire(args[0], value)
    if origin in (list, tuple):
        if not isinstance(value, list):
            raise WireProtocolError(f"expected list for {cls}, got {type(value).__name__}")
        args = typing.get_args(cls)
        if origin is tuple:
            item_type = args[0] if args and args[-1] is Ellipsis else None
            return tuple(_from_wire(item_type, item) if item_type else item for item in value)
        item_type = args[0] if args else None
        return [_from_wire(item_type, item) if item_type else item for item in value]
    if isinstance(cls, type) and issubclass(cls, enum.Enum):
        try:
            return cls(value)
        except ValueError as exc:
            raise WireProtocolError(str(exc)) from exc
    if dataclasses.is_dataclass(cls) and isinstance(cls, type):
        if not isinstance(value, dict):
            raise WireProtocolError(
                f"expected object for {cls.__name__}, got {type(value).__name__}"
            )
        hints = typing.get_type_hints(cls)
        kwargs: Dict[str, Any] = {}
        for fld in dataclasses.fields(cls):
            if fld.name not in value:
                continue  # let dataclass defaults cover absent fields
            kwargs[fld.name] = _from_wire(hints[fld.name], value[fld.name])
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise WireProtocolError(f"cannot rebuild {cls.__name__}: {exc}") from exc
    return value  # JSON scalar (or untyped passthrough)


def decode_typed(cls: Type[T], value: Any) -> T:
    """Public typed entry point of :func:`_from_wire`."""
    return _from_wire(cls, value)


def _b64(data: Optional[bytes]) -> Optional[str]:
    return base64.b64encode(data).decode("ascii") if data is not None else None


def _unb64(text: Any, what: str) -> bytes:
    if not isinstance(text, str):
        raise WireProtocolError(f"{what} must be a base64 string")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise WireProtocolError(f"bad base64 in {what}: {exc}") from exc


# -- task ------------------------------------------------------------------


def encode_task(task: WorkerTask) -> bytes:
    payload = {
        "schema": TASK_SCHEMA,
        "benchmark": task.benchmark,
        "version": task.version,
        "spec_blob_b64": _b64(task.spec_blob),
        "system": canonical(task.system),
        "options": canonical(task.options),
        "cache_key": task.cache_key,
        "cache_dir": task.cache_dir,
        "sync_cache": task.sync_cache,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _parse_document(data: bytes, schema: str) -> Dict[str, Any]:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireProtocolError(f"undecodable wire payload: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != schema:
        raise WireProtocolError(
            f"expected a {schema} document, got "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload).__name__!s}"
        )
    return payload


def decode_task(data: bytes) -> WorkerTask:
    payload = _parse_document(data, TASK_SCHEMA)
    try:
        benchmark = payload["benchmark"]
        version = payload["version"]
        cache_key = payload["cache_key"]
    except KeyError as exc:
        raise WireProtocolError(f"task payload missing {exc}") from exc
    blob_b64 = payload.get("spec_blob_b64")
    return WorkerTask(
        benchmark=str(benchmark),
        version=str(version),
        spec_blob=_unb64(blob_b64, "spec_blob_b64") if blob_b64 is not None else None,
        system=decode_typed(SystemConfig, payload.get("system")),
        options=decode_typed(SimOptions, payload.get("options")),
        cache_key=str(cache_key),
        cache_dir=payload.get("cache_dir"),
        sync_cache=bool(payload.get("sync_cache", True)),
    )


# -- result ----------------------------------------------------------------


def encode_outcome(outcome: WorkerOutcome) -> bytes:
    """Serialize a successful task's reply."""
    payload: Dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "ok": True,
        "benchmark": outcome.benchmark,
        "version": outcome.version,
        "wall_s": outcome.wall_s,
        "memo_hits": outcome.memo_hits,
        "memo_misses": outcome.memo_misses,
        "host": outcome.host,
        "cache_hit": outcome.cache_hit,
    }
    if outcome.entry_bytes is not None:
        # The cache-entry bytes *are* the result (content-addressed under
        # the task's cache key); no second encoding of the SimResult.
        payload["entry_b64"] = _b64(outcome.entry_bytes)
    elif outcome.result is not None:
        payload["result"] = result_to_full_dict(outcome.result)
    else:
        raise ValueError("outcome carries neither a result nor entry bytes")
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_error(
    benchmark: str,
    version: str,
    error_type: str,
    message: str,
    host: Optional[str] = None,
) -> bytes:
    """Serialize a task that ran (or failed to decode) and raised."""
    payload = {
        "schema": RESULT_SCHEMA,
        "ok": False,
        "benchmark": benchmark,
        "version": version,
        "error_type": error_type,
        "message": message,
        "host": host,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_result(data: bytes) -> WorkerOutcome:
    """Parse a worker reply.

    Raises :class:`~.base.RemoteTaskError` for a well-formed error reply
    and :class:`~.base.WireProtocolError` for anything undecodable.
    """
    from repro.experiments.executors.base import RemoteTaskError

    payload = _parse_document(data, RESULT_SCHEMA)
    host = payload.get("host")
    if not payload.get("ok"):
        raise RemoteTaskError(
            error_type=str(payload.get("error_type", "RemoteError")),
            message=str(payload.get("message", "")),
            host=host if isinstance(host, str) else None,
        )
    result: Optional[SimResult] = None
    entry_bytes: Optional[bytes] = None
    if "entry_b64" in payload:
        entry_bytes = _unb64(payload["entry_b64"], "entry_b64")
    elif "result" in payload:
        try:
            result = result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise WireProtocolError(f"undecodable result payload: {exc}") from exc
    else:
        raise WireProtocolError("result payload carries neither result nor entry bytes")
    try:
        return WorkerOutcome(
            benchmark=str(payload["benchmark"]),
            version=str(payload["version"]),
            wall_s=float(payload["wall_s"]),
            memo_hits=int(payload.get("memo_hits", 0)),
            memo_misses=int(payload.get("memo_misses", 0)),
            host=host if isinstance(host, str) else None,
            cache_hit=bool(payload.get("cache_hit", False)),
            result=result,
            entry_bytes=entry_bytes,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed result payload: {exc}") from exc
