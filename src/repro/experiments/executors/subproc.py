"""Per-task child-process backend speaking the JSON wire format.

Each submitted task launches one ``python -m repro.experiments.remote_worker``
child, writes the encoded :class:`WorkerTask` to its stdin, and parses the
single JSON reply from its stdout.  Children are fully isolated: a crash
(or a supervisor task-timeout kill) takes down exactly one task, so —
unlike the shared process pool — no backend recycle is needed and other
in-flight tasks keep running.

This is the distributed execution model, testable on one host with no SSH;
:class:`~repro.experiments.executors.ssh.SshBackend` subclasses it and
merely changes the launch command.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.executors.base import (
    ExecutorBackend,
    HostUnavailable,
    RemoteTaskError,
    TaskCrash,
    WireProtocolError,
    WorkerOutcome,
    WorkerTask,
)
from repro.experiments.executors.wire import decode_result, encode_task

#: The worker module each child runs (`python -m ...`).
WORKER_MODULE = "repro.experiments.remote_worker"


def _stderr_tail(err: bytes, limit: int = 400) -> str:
    text = err.decode("utf-8", errors="replace").strip()
    return text[-limit:] if text else "(no stderr)"


class _ChildHandle:
    """Mutable rendezvous between submit/kill (supervisor thread) and the
    launcher thread: which Popen backs a future, and whether the
    supervisor asked for its death before/after launch."""

    __slots__ = ("host", "proc", "killed")

    def __init__(self, host: Optional[str]) -> None:
        self.host = host
        self.proc: Optional[subprocess.Popen] = None
        self.killed = False


class SubprocessBackend(ExecutorBackend):
    """``--backend subprocess``: one local worker child per task."""

    name = "subprocess"

    #: Exit code treated as "the host is unreachable" (ssh's convention;
    #: meaningless for plain local children, so off here, on in SshBackend).
    _host_down_rc: Optional[int] = None

    def __init__(
        self,
        worker_cmd: Optional[Sequence[str]] = None,
        worker_cache_dir: Optional[str] = None,
    ) -> None:
        self._worker_cmd = list(worker_cmd) if worker_cmd else [
            sys.executable, "-m", WORKER_MODULE
        ]
        #: Overrides the cache directory workers use (default: whatever
        #: the coordinator put in the task — its own cache root).
        self._worker_cache_dir = worker_cache_dir
        self._threads: Optional[ThreadPoolExecutor] = None
        self._workers = 1
        self._guard = threading.Lock()
        self._handles: Dict["Future[WorkerOutcome]", _ChildHandle] = {}

    # -- launch plumbing (the ssh backend overrides these) -----------------

    def _host_for_task(self) -> Optional[str]:
        """Host label the next task is routed to.

        Local children all run here, so the label is this machine's name
        — which gives even a *crashed* child (no reply to report a host
        in) per-host failure attribution.
        """
        return socket.gethostname() or "localhost"

    def _command(self, handle: _ChildHandle) -> List[str]:
        return list(self._worker_cmd)

    def _shape_task(self, task: WorkerTask, handle: _ChildHandle) -> WorkerTask:
        """Last-minute task adjustments (the ssh backend rewrites paths)."""
        if self._worker_cache_dir is not None:
            return replace(task, cache_dir=self._worker_cache_dir)
        return task

    def _child_env(self) -> Dict[str, str]:
        # A source checkout run with PYTHONPATH=src must spawn workers that
        # can import repro too, wherever the coordinator found it.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        return env

    # -- ExecutorBackend ----------------------------------------------------

    def start(self, workers: int) -> None:
        self._workers = max(1, workers)
        self._threads = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix=f"repro-{self.name}"
        )

    def submit(self, task: WorkerTask) -> "Future[WorkerOutcome]":
        if self._threads is None:
            raise RuntimeError("backend not started")
        handle = _ChildHandle(self._host_for_task())
        future = self._threads.submit(self._run_child, task, handle)
        with self._guard:
            # The supervisor keeps in-flight <= workers, so pruning done
            # futures on each submit bounds the table at pool width.
            for done in [f for f in self._handles if f.done()]:
                del self._handles[done]
            self._handles[future] = handle
        return future

    def kill_task(self, future: "Future[WorkerOutcome]") -> bool:
        with self._guard:
            handle = self._handles.get(future)
        if handle is None:
            return False
        handle.killed = True
        if handle.proc is not None:
            try:
                handle.proc.kill()
            except OSError:
                pass
        return True  # surgical: only this task's child dies

    def host_of(self, future: "Future[WorkerOutcome]") -> Optional[str]:
        with self._guard:
            handle = self._handles.get(future)
        return handle.host if handle is not None else None

    def recycle(self) -> None:
        self.shutdown()
        self._threads = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix=f"repro-{self.name}"
        )

    def shutdown(self) -> None:
        with self._guard:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.killed = True
            if handle.proc is not None:
                try:
                    handle.proc.kill()
                except OSError:
                    pass
        if self._threads is not None:
            self._threads.shutdown(wait=True, cancel_futures=True)
            self._threads = None

    def healthy(self) -> bool:
        return True  # children are provisioned per task; nothing to probe

    # -- the launcher thread body -------------------------------------------

    def _run_child(self, task: WorkerTask, handle: _ChildHandle) -> WorkerOutcome:
        host = handle.host
        if handle.killed:
            raise TaskCrash("killed before launch", host=host)
        payload = encode_task(self._shape_task(task, handle))
        try:
            proc = subprocess.Popen(
                self._command(handle),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=self._child_env(),
            )
        except OSError as exc:
            raise TaskCrash(f"cannot launch worker: {exc}", host=host) from exc
        handle.proc = proc
        if handle.killed:  # kill raced the launch
            proc.kill()
        try:
            out, err = proc.communicate(payload)
        except (OSError, ValueError) as exc:
            proc.kill()
            proc.wait()
            raise TaskCrash(f"worker pipe failed: {exc}", host=host) from exc
        if handle.killed:
            raise TaskCrash("worker killed by supervisor", host=host)
        rc = proc.returncode
        if self._host_down_rc is not None and rc == self._host_down_rc:
            raise HostUnavailable(
                f"host unreachable (rc {rc}): {_stderr_tail(err)}", host=host
            )
        if rc != 0:
            raise TaskCrash(
                f"worker exited {rc}: {_stderr_tail(err)}", host=host
            )
        try:
            outcome = decode_result(out)
        except WireProtocolError as exc:
            if exc.host is None:
                exc.host = host
            raise
        except RemoteTaskError as exc:
            if host is not None:
                exc.host = host
            raise
        if host is not None:
            # Attribute to the host the *coordinator* routed to (the label
            # retries and quarantine decisions are keyed by), not whatever
            # name the worker resolved for itself.
            outcome = replace(outcome, host=host)
        return outcome
