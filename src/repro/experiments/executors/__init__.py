"""Pluggable executor backends for the sweep supervisor.

See :mod:`repro.experiments.executors.base` for the protocol and
docs/SWEEPS.md for the user-facing story (``--backend`` / ``--hosts``).
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.experiments.executors.base import (
    AUTO_CACHE_DIR,
    LOCAL_HOST,
    ExecutorBackend,
    ExecutorError,
    HostUnavailable,
    RemoteTaskError,
    TaskCrash,
    WireProtocolError,
    WorkerOutcome,
    WorkerTask,
)
from repro.experiments.executors.local import LocalPoolBackend
from repro.experiments.executors.ssh import SshBackend
from repro.experiments.executors.subproc import SubprocessBackend

#: ``--backend`` choices, in documentation order.
BACKENDS = ("local", "subprocess", "ssh")


def create_backend(
    backend: Union[None, str, ExecutorBackend],
    *,
    hosts: Sequence[str] = (),
) -> ExecutorBackend:
    """Resolve a ``--backend`` selection (or pass a live instance through)."""
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend is None or backend == "local":
        return LocalPoolBackend()
    if backend == "subprocess":
        return SubprocessBackend()
    if backend == "ssh":
        if not hosts:
            raise ValueError("the ssh backend requires --hosts HOST1,HOST2,...")
        return SshBackend(hosts)
    raise ValueError(f"unknown executor backend {backend!r}; choose from {BACKENDS}")


__all__ = [
    "AUTO_CACHE_DIR",
    "BACKENDS",
    "ExecutorBackend",
    "ExecutorError",
    "HostUnavailable",
    "LOCAL_HOST",
    "LocalPoolBackend",
    "RemoteTaskError",
    "SshBackend",
    "SubprocessBackend",
    "TaskCrash",
    "WireProtocolError",
    "WorkerOutcome",
    "WorkerTask",
    "create_backend",
]
