"""Executor backend protocol for the sweep supervisor.

The fault supervisor in :mod:`repro.experiments.parallel` used to own a
``ProcessPoolExecutor`` outright.  This package splits "how a task gets
executed" from "how failures are retried": the supervisor speaks only to
an :class:`ExecutorBackend`, and a backend turns one :class:`WorkerTask`
into a :class:`concurrent.futures.Future` resolving to a
:class:`WorkerOutcome` — or raising one of the structured executor
exceptions below, which the supervisor maps onto its existing retry /
recycle / degrade ladder:

* :class:`TaskCrash` — the worker process died.  The task is requeued and
  charged an attempt (``worker_fate`` *crashed*), but because the crash
  was isolated to one child, no pool recycle happens.
* :class:`HostUnavailable` — the task never ran (the host could not be
  reached); it is requeued *uncharged* while the backend quarantines the
  host, so a dead machine does not burn a task's retries.
* :class:`RemoteTaskError` — the task ran remotely and raised; carries
  the remote exception's type/message so the failure report looks the
  same as a local one (``worker_fate`` *alive*).
* :class:`WireProtocolError` — the worker's reply could not be decoded;
  surfaces as a structured retryable failure, never a coordinator crash.

``BrokenExecutor`` keeps its existing meaning — the backend as a whole is
unusable — and still drives the bounded recycle → degrade-to-serial path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config.system import SystemConfig
from repro.sim.engine import SimOptions
from repro.sim.results import SimResult

#: ``WorkerOutcome.host`` of tasks run by the in-process pool backend.
LOCAL_HOST = "local"

#: ``WorkerTask.cache_dir`` sentinel: the worker should use its *own*
#: default cache directory (``$REPRO_CACHE_DIR`` / ``~/.cache`` on the
#: worker's machine) rather than a path the coordinator chose.  Used by
#: the ssh backend, where coordinator paths are meaningless remotely.
AUTO_CACHE_DIR = "auto"


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker anywhere needs to run one simulation.

    ``spec_blob`` is ``None`` for registry benchmarks (the worker
    re-resolves ``benchmark`` by name) or a pickled spec otherwise.
    ``cache_dir`` names the result cache the *worker* should consult and
    fill (``None`` = no worker-side cache, :data:`AUTO_CACHE_DIR` = the
    worker's default location); with ``sync_cache`` the worker ships its
    stored cache-entry bytes back so the coordinator's cache can absorb
    them (warm-cache synchronization).
    """

    benchmark: str
    version: str
    spec_blob: Optional[bytes]
    system: SystemConfig
    options: SimOptions
    cache_key: str
    cache_dir: Optional[str] = None
    sync_cache: bool = True


@dataclass(frozen=True)
class WorkerOutcome:
    """One finished task, as every backend reports it.

    Exactly one of ``result`` / ``entry_bytes`` may be ``None``: local
    backends return the live :class:`SimResult`; remote workers with a
    cache return the content-addressed cache-entry bytes instead (the
    coordinator absorbs them — one decode, zero re-encodes), and remote
    workers without a cache return the decoded result.  ``cache_hit``
    marks outcomes the *worker's* cache answered without simulating.
    """

    benchmark: str
    version: str
    wall_s: float
    memo_hits: int = 0
    memo_misses: int = 0
    host: Optional[str] = None
    cache_hit: bool = False
    result: Optional[SimResult] = None
    entry_bytes: Optional[bytes] = None


class ExecutorError(RuntimeError):
    """Base of the structured executor failures; carries host attribution."""

    def __init__(self, message: str, host: Optional[str] = None):
        super().__init__(message)
        self.host = host


class TaskCrash(ExecutorError):
    """The worker process running one task died (isolated to that task)."""


class HostUnavailable(ExecutorError):
    """The task never started: its host could not be reached.

    The backend quarantines the host; the supervisor requeues the task
    uncharged — an unreachable machine must not consume task retries.
    """


class WireProtocolError(ExecutorError):
    """A worker's reply (or a task payload) could not be decoded."""


class RemoteTaskError(ExecutorError):
    """The task ran on a worker and raised; the remote post-mortem."""

    def __init__(self, error_type: str, message: str, host: Optional[str] = None):
        super().__init__(message, host=host)
        self.error_type = error_type
        self.message = message


class ExecutorBackend(ABC):
    """What the sweep supervisor needs from an execution substrate.

    Lifecycle: ``start(workers)`` once, then any number of ``submit`` /
    ``kill_task`` / ``recycle`` rounds, then ``shutdown()`` (idempotent,
    always called).  ``submit`` may raise ``BrokenExecutor`` when the
    backend as a whole is unusable — the supervisor then salvages
    finished futures and calls :meth:`recycle`, bounded by
    ``FaultPolicy.max_pool_rebuilds``.
    """

    #: Short identifier (``local`` / ``subprocess`` / ``ssh``).
    name = "abstract"

    @abstractmethod
    def start(self, workers: int) -> None:
        """Provision capacity for ``workers`` concurrent tasks."""

    @abstractmethod
    def submit(self, task: WorkerTask) -> "Future[WorkerOutcome]":
        """Dispatch one task; the future resolves to a WorkerOutcome or
        raises one of the executor exceptions above."""

    def kill_task(self, future: "Future[WorkerOutcome]") -> bool:
        """Kill just the worker behind ``future`` (task timeout).

        Returns True when the kill was surgical — other in-flight tasks
        were untouched, so the supervisor need not recycle the backend.
        The base implementation cannot kill anything and returns False,
        which makes the supervisor fall back to a full recycle.
        """
        return False

    def host_of(self, future: "Future[WorkerOutcome]") -> Optional[str]:
        """Host the task behind ``future`` was routed to, if known."""
        return None

    @abstractmethod
    def recycle(self) -> None:
        """Tear down and re-provision after a break (keeps ``workers``)."""

    @abstractmethod
    def shutdown(self) -> None:
        """Release everything; safe to call twice."""

    def healthy(self) -> bool:
        """Cheap liveness probe: can this backend accept a submit now?"""
        return True


def make_worker_task(
    *,
    benchmark: str,
    version: str,
    spec_blob: Optional[bytes],
    system: SystemConfig,
    options: SimOptions,
    cache_key: str,
    cache_dir: Optional[str],
    sync_cache: bool = True,
) -> WorkerTask:
    """Keyword-only constructor, so supervisor call sites stay readable."""
    return WorkerTask(
        benchmark=benchmark,
        version=version,
        spec_blob=spec_blob,
        system=system,
        options=options,
        cache_key=cache_key,
        cache_dir=cache_dir,
        sync_cache=sync_cache,
    )


def memo_delta(outcome: WorkerOutcome) -> Tuple[int, int]:
    """The outcome's stage-memo (hits, misses) pair, supervisor-shaped."""
    return (outcome.memo_hits, outcome.memo_misses)
