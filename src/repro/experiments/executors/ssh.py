"""Multi-host backend: the subprocess worker, launched over ``ssh HOST``.

Tasks round-robin over the configured hosts.  A host whose *launch* fails
(ssh exits 255 — connection refused, DNS failure, auth trouble) is charged
a host failure and, after ``host_failure_limit`` consecutive ones,
quarantined: the task that hit it is requeued uncharged onto a surviving
host, so a dead machine burns zero task retries.  A successful launch
resets the host's failure count.  When every host is quarantined,
``submit`` raises ``BrokenExecutor`` — the supervisor's bounded recycle
(which resets the quarantine, giving hosts a fresh chance) then applies,
degrading to in-parent serial execution if the fleet stays dark.

Remote workers run against their *own* result cache (by default the
worker machine's standard location — coordinator paths mean nothing
remotely) and ship the stored entry bytes back for the coordinator's
cache to absorb, so a re-run of a distributed sweep is warm everywhere.

The remote environment must be provisioned out of band: ``ssh HOST
<remote-python> -m repro.experiments.remote_worker`` has to work, i.e.
the package importable and ssh non-interactive (see docs/SWEEPS.md).
Fault-injection env vars do not cross real ssh.
"""

from __future__ import annotations

import os
import shlex
import threading
from concurrent.futures import BrokenExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set

from repro.experiments.executors.base import (
    AUTO_CACHE_DIR,
    HostUnavailable,
    WorkerOutcome,
    WorkerTask,
)
from repro.experiments.executors.subproc import (
    WORKER_MODULE,
    SubprocessBackend,
    _ChildHandle,
)

#: Environment override of the ssh command (split with shlex) — the CI
#: smoke test points it at a local stand-in; operators can add options.
SSH_CMD_ENV = "REPRO_SSH"

#: ssh(1) reserves exit status 255 for its own failures (the remote
#: command's status is passed through otherwise).
SSH_FAILURE_RC = 255


def _default_ssh_cmd() -> List[str]:
    override = os.environ.get(SSH_CMD_ENV)
    if override:
        return shlex.split(override)
    # BatchMode: never hang on a password prompt inside a sweep.
    return ["ssh", "-o", "BatchMode=yes"]


class SshBackend(SubprocessBackend):
    """``--backend ssh --hosts H1,H2,...``."""

    name = "ssh"
    _host_down_rc = SSH_FAILURE_RC

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        ssh_cmd: Optional[Sequence[str]] = None,
        remote_python: str = "python3",
        remote_cache_dir: Optional[str] = AUTO_CACHE_DIR,
        host_failure_limit: int = 2,
    ) -> None:
        super().__init__()
        self.hosts = tuple(dict.fromkeys(hosts))  # de-dup, keep order
        if not self.hosts:
            raise ValueError("ssh backend requires at least one host")
        self._ssh_cmd = list(ssh_cmd) if ssh_cmd else _default_ssh_cmd()
        self._remote_python = remote_python
        self._remote_cache_dir = remote_cache_dir
        self._host_failure_limit = max(1, host_failure_limit)
        self._host_guard = threading.Lock()
        self._rr = 0
        self._failures: Dict[str, int] = {host: 0 for host in self.hosts}
        self._quarantined: Set[str] = set()

    # -- routing -------------------------------------------------------------

    def _host_for_task(self) -> str:
        with self._host_guard:
            live = [h for h in self.hosts if h not in self._quarantined]
            if not live:
                raise BrokenExecutor(
                    f"all ssh hosts quarantined: {', '.join(self.hosts)}"
                )
            host = live[self._rr % len(live)]
            self._rr += 1
            return host

    def quarantined_hosts(self) -> Set[str]:
        with self._host_guard:
            return set(self._quarantined)

    def _note_launch_failure(self, host: str) -> None:
        with self._host_guard:
            self._failures[host] = self._failures.get(host, 0) + 1
            if self._failures[host] >= self._host_failure_limit:
                self._quarantined.add(host)

    def _note_launch_success(self, host: str) -> None:
        with self._host_guard:
            self._failures[host] = 0

    # -- launch plumbing -----------------------------------------------------

    def _command(self, handle: _ChildHandle) -> List[str]:
        return [
            *self._ssh_cmd,
            str(handle.host),
            self._remote_python,
            "-m",
            WORKER_MODULE,
        ]

    def _shape_task(self, task: WorkerTask, handle: _ChildHandle) -> WorkerTask:
        # Coordinator cache paths are meaningless on a remote filesystem.
        return replace(task, cache_dir=self._remote_cache_dir)

    def _run_child(self, task: WorkerTask, handle: _ChildHandle) -> WorkerOutcome:
        try:
            outcome = super()._run_child(task, handle)
        except HostUnavailable:
            if handle.host is not None:
                self._note_launch_failure(handle.host)
            raise
        if handle.host is not None:
            self._note_launch_success(handle.host)
        return outcome

    # -- lifecycle -----------------------------------------------------------

    def recycle(self) -> None:
        super().recycle()
        # A recycle is the supervisor's "try again" signal: hosts get a
        # fresh chance, and if the fleet is still dark the next submit
        # re-breaks until the bounded rebuild budget degrades to serial.
        with self._host_guard:
            self._quarantined.clear()
            for host in self._failures:
                self._failures[host] = 0

    def healthy(self) -> bool:
        with self._host_guard:
            return any(h not in self._quarantined for h in self.hosts)
