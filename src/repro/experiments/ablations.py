"""Ablation studies over the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary one model parameter at a
time to show which mechanism produces each effect.

* :func:`cache_size_sweep` — contention classes vs shared-cache capacity
  (the Fig. 9 mechanism).
* :func:`pagefault_sweep` — limited-copy slowdown vs fault service latency
  (the srad/heartwall mechanism).
* :func:`alignment_ablation` — limited-copy GPU accesses with and without
  the misalignment model (the Fig. 5 ``*`` mechanism).
* :func:`pcie_sweep` — baseline copy share vs PCIe bandwidth (the Section
  II bandwidth-asymmetry argument).
* :func:`dynamic_parallelism_sweep` — host-checked loop vs device-side
  launches across device launch latencies (the Section VI caveat that
  launch overheads can outweigh benefits).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.config.components import PcieConfig
from repro.config.system import (
    PageFaultConfig,
    discrete_gpu_system,
    heterogeneous_processor,
)
from repro.core.classify import AccessClass, classify_result
from repro.experiments.report import format_table
from repro.experiments.runner import DEFAULT_BENCH_SCALE
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.units import GB_PER_S, MICROSECONDS
from repro.workloads.registry import get


@dataclass(frozen=True)
class CacheSweepRow:
    gpu_l2_scale: float
    contention_fraction: float
    spill_fraction: float
    offchip_accesses: int


def cache_size_sweep(
    benchmark: str = "rodinia/kmeans",
    l2_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    options: Optional[SimOptions] = None,
) -> List[CacheSweepRow]:
    """Grow the GPU L2 and watch contention accesses disappear."""
    options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
    pipeline = remove_copies(get(benchmark).pipeline())
    rows: List[CacheSweepRow] = []
    for factor in l2_scales:
        system = heterogeneous_processor()
        system = replace(
            system, gpu=replace(system.gpu, l2=system.gpu.l2.scaled(factor))
        )
        result = simulate(pipeline, system, options)
        cls = classify_result(result)
        rows.append(
            CacheSweepRow(
                gpu_l2_scale=factor,
                contention_fraction=cls.contention_fraction,
                spill_fraction=cls.spill_fraction,
                offchip_accesses=result.offchip_accesses(),
            )
        )
    return rows


@dataclass(frozen=True)
class PageFaultRow:
    service_latency_us: float
    runtime_s: float
    slowdown_vs_no_faults: float


def pagefault_sweep(
    benchmark: str = "rodinia/srad",
    latencies_us: Sequence[float] = (0.0, 1.0, 2.5, 5.0, 10.0),
    options: Optional[SimOptions] = None,
) -> List[PageFaultRow]:
    """Vary the CPU fault-service latency for a fault-heavy benchmark."""
    options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
    pipeline = remove_copies(get(benchmark).pipeline())
    baseline: Optional[float] = None
    rows: List[PageFaultRow] = []
    for latency in latencies_us:
        config = PageFaultConfig(
            enabled=latency > 0.0,
            service_latency_s=max(latency, 0.001) * MICROSECONDS,
        )
        system = heterogeneous_processor(page_faults=config)
        result = simulate(pipeline, system, options)
        if baseline is None:
            baseline = result.roi_s
        rows.append(
            PageFaultRow(
                service_latency_us=latency,
                runtime_s=result.roi_s,
                slowdown_vs_no_faults=result.roi_s / baseline,
            )
        )
    return rows


@dataclass(frozen=True)
class AlignmentRow:
    benchmark: str
    aligned_gpu_accesses: int
    misaligned_gpu_accesses: int

    @property
    def inflation(self) -> float:
        if not self.aligned_gpu_accesses:
            return 0.0
        return self.misaligned_gpu_accesses / self.aligned_gpu_accesses - 1.0


def alignment_ablation(
    benchmark: str = "parboil/sgemm",
    options: Optional[SimOptions] = None,
) -> AlignmentRow:
    """Compare limited-copy GPU accesses with aligned vs unaligned buffers."""
    options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
    pipeline = remove_copies(get(benchmark).pipeline())
    system = heterogeneous_processor()

    misaligned = simulate(pipeline, system, options)

    aligned_buffers = {
        name: replace(buf, cpu_line_aligned=True)
        for name, buf in pipeline.buffers.items()
    }
    aligned_pipeline = pipeline.with_stages(pipeline.stages, buffers=aligned_buffers)
    aligned = simulate(aligned_pipeline, system, options)

    return AlignmentRow(
        benchmark=benchmark,
        aligned_gpu_accesses=aligned.offchip_by_component()[Component.GPU],
        misaligned_gpu_accesses=misaligned.offchip_by_component()[Component.GPU],
    )


@dataclass(frozen=True)
class PcieRow:
    pcie_gbps: float
    runtime_s: float
    copy_share: float


def pcie_sweep(
    benchmark: str = "rodinia/kmeans",
    bandwidths_gbps: Sequence[float] = (4.0, 8.0, 16.0, 32.0, 64.0),
    options: Optional[SimOptions] = None,
) -> List[PcieRow]:
    """Vary PCIe bandwidth and watch the baseline copy share collapse."""
    options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
    pipeline = get(benchmark).pipeline()
    rows: List[PcieRow] = []
    for gbps in bandwidths_gbps:
        system = discrete_gpu_system(
            pcie=PcieConfig(peak_bandwidth=gbps * GB_PER_S)
        )
        result = simulate(pipeline, system, options)
        rows.append(
            PcieRow(
                pcie_gbps=gbps,
                runtime_s=result.roi_s,
                copy_share=result.busy_time(Component.COPY) / result.roi_s,
            )
        )
    return rows


@dataclass(frozen=True)
class DynParRow:
    device_launch_latency_us: float
    host_loop_runtime_s: float
    dynpar_runtime_s: float

    @property
    def speedup(self) -> float:
        return (
            self.host_loop_runtime_s / self.dynpar_runtime_s
            if self.dynpar_runtime_s
            else 0.0
        )


def dynamic_parallelism_sweep(
    benchmark: str = "lonestar/bfs",
    latencies_us: Sequence[float] = (1.0, 5.0, 20.0, 80.0, 320.0),
    options: Optional[SimOptions] = None,
) -> List[DynParRow]:
    """Host-checked loop vs device-side launches, across launch latencies.

    At low latency dynamic parallelism wins (no flag copy, no CPU check);
    past the crossover the device launch overhead dominates — the Wang &
    Yalamanchili result the paper cites.
    """
    from repro.pipeline.dynpar import dynamic_parallelism

    options = options or SimOptions(scale=DEFAULT_BENCH_SCALE)
    limited = remove_copies(get(benchmark).pipeline())
    transformed = dynamic_parallelism(limited)
    rows: List[DynParRow] = []
    for latency in latencies_us:
        system = replace(
            heterogeneous_processor(),
            device_launch_latency_s=latency * MICROSECONDS,
        )
        host = simulate(limited, system, options)
        device = simulate(transformed, system, options)
        rows.append(
            DynParRow(
                device_launch_latency_us=latency,
                host_loop_runtime_s=host.roi_s,
                dynpar_runtime_s=device.roi_s,
            )
        )
    return rows


def render(options: Optional[SimOptions] = None) -> str:
    cache_rows = cache_size_sweep(options=options)
    cache_table = format_table(
        ("GPU L2 scale", "Contention", "Spills", "Off-chip accesses"),
        [
            (r.gpu_l2_scale, r.contention_fraction, r.spill_fraction, r.offchip_accesses)
            for r in cache_rows
        ],
        title="Ablation: contention vs GPU L2 capacity (kmeans, limited-copy)",
    )
    fault_rows = pagefault_sweep(options=options)
    fault_table = format_table(
        ("Service latency (us)", "Runtime (s)", "Slowdown"),
        [
            (r.service_latency_us, f"{r.runtime_s:.6f}", r.slowdown_vs_no_faults)
            for r in fault_rows
        ],
        title="Ablation: srad slowdown vs page-fault service latency",
    )
    align = alignment_ablation(options=options)
    pcie_rows = pcie_sweep(options=options)
    pcie_table = format_table(
        ("PCIe GB/s", "Runtime (s)", "Copy share"),
        [(r.pcie_gbps, f"{r.runtime_s:.6f}", r.copy_share) for r in pcie_rows],
        title="Ablation: kmeans baseline copy share vs PCIe bandwidth",
    )
    dynpar_rows = dynamic_parallelism_sweep(options=options)
    dynpar_table = format_table(
        ("Device launch (us)", "Host loop (s)", "Dynamic par. (s)", "Speedup"),
        [
            (
                r.device_launch_latency_us,
                f"{r.host_loop_runtime_s:.6f}",
                f"{r.dynpar_runtime_s:.6f}",
                f"{r.speedup:.2f}x",
            )
            for r in dynpar_rows
        ],
        title="Ablation: dynamic parallelism vs host-checked loop (bfs)",
    )
    return (
        f"{cache_table}\n\n{fault_table}\n\n"
        f"Ablation: sgemm misalignment inflates limited-copy GPU accesses by "
        f"{align.inflation:.1%}\n\n{pcie_table}\n\n{dynpar_table}"
    )
