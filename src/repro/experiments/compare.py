"""Sweep comparison and stability analysis.

Reproduction results should not hinge on the trace seed or the simulation
scale.  This module quantifies that: it runs the same sweep under two
configurations and reports, per benchmark, how much the figures' headline
quantities move.  Used by the test suite as a regression guard and
available to users who change model constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.classify import classify_result
from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner
from repro.sim.engine import SimOptions
from repro.workloads.registry import simulatable_specs
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class BenchmarkDelta:
    """Relative movement of one benchmark's headline quantities."""

    benchmark: str
    runtime_ratio_a: float  # limited/copy under configuration A
    runtime_ratio_b: float
    contention_a: float
    contention_b: float

    @property
    def runtime_ratio_drift(self) -> float:
        if not self.runtime_ratio_a:
            return 0.0
        return abs(self.runtime_ratio_b - self.runtime_ratio_a) / self.runtime_ratio_a

    @property
    def contention_drift(self) -> float:
        return abs(self.contention_b - self.contention_a)


@dataclass(frozen=True)
class ComparisonReport:
    label_a: str
    label_b: str
    deltas: List[BenchmarkDelta]

    @property
    def max_runtime_drift(self) -> float:
        return max((d.runtime_ratio_drift for d in self.deltas), default=0.0)

    @property
    def mean_runtime_drift(self) -> float:
        if not self.deltas:
            return 0.0
        return sum(d.runtime_ratio_drift for d in self.deltas) / len(self.deltas)

    @property
    def max_contention_drift(self) -> float:
        return max((d.contention_drift for d in self.deltas), default=0.0)

    def render(self) -> str:
        table = format_table(
            (
                "Benchmark",
                f"lc/copy [{self.label_a}]",
                f"lc/copy [{self.label_b}]",
                "drift",
                f"contention [{self.label_a}]",
                f"contention [{self.label_b}]",
            ),
            [
                (
                    d.benchmark,
                    d.runtime_ratio_a,
                    d.runtime_ratio_b,
                    f"{d.runtime_ratio_drift:.1%}",
                    d.contention_a,
                    d.contention_b,
                )
                for d in self.deltas
            ],
            title=f"Sweep comparison: {self.label_a} vs {self.label_b}",
        )
        return (
            f"{table}\n\nmean runtime-ratio drift: {self.mean_runtime_drift:.1%}; "
            f"max: {self.max_runtime_drift:.1%}; "
            f"max contention drift: {self.max_contention_drift:.2f}"
        )


def _measure(runner: SweepRunner, spec: BenchmarkSpec) -> Dict[str, float]:
    pair = runner.pair(spec)
    classification = classify_result(pair.limited)
    return {
        "runtime_ratio": (
            pair.limited.roi_s / pair.copy.roi_s if pair.copy.roi_s else 0.0
        ),
        "contention": classification.contention_fraction,
    }


def compare_sweeps(
    options_a: SimOptions,
    options_b: SimOptions,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
    label_a: str = "A",
    label_b: str = "B",
) -> ComparisonReport:
    """Run the sweep twice and report per-benchmark drift."""
    specs = list(specs) if specs is not None else list(simulatable_specs())
    runner_a = SweepRunner(options=options_a)
    runner_b = SweepRunner(options=options_b)
    deltas: List[BenchmarkDelta] = []
    for spec in specs:
        a = _measure(runner_a, spec)
        b = _measure(runner_b, spec)
        deltas.append(
            BenchmarkDelta(
                benchmark=spec.full_name,
                runtime_ratio_a=a["runtime_ratio"],
                runtime_ratio_b=b["runtime_ratio"],
                contention_a=a["contention"],
                contention_b=b["contention"],
            )
        )
    return ComparisonReport(label_a=label_a, label_b=label_b, deltas=deltas)


def seed_stability(
    seeds: Iterable[int] = (0, 1),
    scale: float = 1 / 64,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> ComparisonReport:
    """Drift between two trace seeds: should be small (random patterns only)."""
    seeds = list(seeds)
    if len(seeds) != 2:
        raise ValueError("seed_stability compares exactly two seeds")
    return compare_sweeps(
        SimOptions(scale=scale, seed=seeds[0]),
        SimOptions(scale=scale, seed=seeds[1]),
        specs=specs,
        label_a=f"seed {seeds[0]}",
        label_b=f"seed {seeds[1]}",
    )


def scale_stability(
    scales: Iterable[float] = (1 / 32, 1 / 64),
    seed: int = 0,
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> ComparisonReport:
    """Drift between two scales: ratios should be scale-invariant."""
    scales = list(scales)
    if len(scales) != 2:
        raise ValueError("scale_stability compares exactly two scales")
    return compare_sweeps(
        SimOptions(scale=scales[0], seed=seed),
        SimOptions(scale=scales[1], seed=seed),
        specs=specs,
        label_a=f"scale {scales[0]:g}",
        label_b=f"scale {scales[1]:g}",
    )
