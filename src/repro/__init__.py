"""repro: reproduction of "GPU Computing Pipeline Inefficiencies and
Optimization Opportunities in Heterogeneous CPU-GPU Processors"
(Hestness, Keckler, Wood — IISWC 2015).

The library models discrete CPU-GPU systems and heterogeneous processors,
executes benchmark pipelines on them with a trace-driven cache/memory
simulator, and applies the paper's analytical models to quantify pipeline
inefficiencies.  Quick start::

    from repro import (
        discrete_gpu_system, heterogeneous_processor,
        simulate, SimOptions, remove_copies, workloads,
    )

    spec = workloads.get("rodinia/kmeans")
    pipeline = spec.pipeline()
    baseline = simulate(pipeline, discrete_gpu_system(), SimOptions(scale=1 / 16))
    ported = simulate(remove_copies(pipeline), heterogeneous_processor(),
                      SimOptions(scale=1 / 16))
    print(baseline.roi_s, ported.roi_s)
"""

from repro import workloads
from repro.config import (
    SystemConfig,
    SystemKind,
    discrete_gpu_system,
    heterogeneous_processor,
)
from repro.core import (
    AccessClass,
    Classification,
    ComponentTimes,
    classify_result,
    component_overlap_runtime,
    footprint_breakdown,
    kmeans_case_study,
    migrated_compute_runtime,
    opportunity_report,
)
from repro.pipeline import (
    AccessPattern,
    Buffer,
    BufferAccess,
    KernelResources,
    Pipeline,
    PipelineBuilder,
    Stage,
    StageKind,
    fission_async_streams,
    fuse_kernels,
    migrate_compute,
    migrate_kernels_to_cpu,
    parallel_producer_consumer,
    remove_copies,
)
from repro.sim import Component, SimOptions, SimResult, simulate

__version__ = "1.0.0"

__all__ = [
    "AccessClass",
    "AccessPattern",
    "Buffer",
    "BufferAccess",
    "Classification",
    "Component",
    "KernelResources",
    "ComponentTimes",
    "Pipeline",
    "PipelineBuilder",
    "SimOptions",
    "SimResult",
    "Stage",
    "StageKind",
    "SystemConfig",
    "SystemKind",
    "__version__",
    "classify_result",
    "component_overlap_runtime",
    "discrete_gpu_system",
    "fission_async_streams",
    "fuse_kernels",
    "footprint_breakdown",
    "heterogeneous_processor",
    "kmeans_case_study",
    "migrate_compute",
    "migrate_kernels_to_cpu",
    "migrated_compute_runtime",
    "opportunity_report",
    "parallel_producer_consumer",
    "remove_copies",
    "simulate",
    "workloads",
]
