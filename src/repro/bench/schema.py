"""Schema and comparison logic for ``repro bench`` reports.

A bench report is a plain JSON document (committed as ``BENCH_engine.json``
at the repo root) with a top-level ``schema`` tag so future layout changes
can be detected instead of mis-read.  Layout::

    {
      "schema": "repro.bench/v1",
      "git_sha": "abc123..." | null,
      "machine": {"platform": ..., "python": ..., "numpy": ..., "cpus": N},
      "config": {"scale": ..., "reps": ..., "quick": ..., ...},
      "metrics": {
        "<metric key>": {
          "unit": "s",
          "reps": N,
          "p50": ..., "p95": ..., "min": ..., "mean": ...,
          "samples": [...]
        },
        ...
      },
      "derived": {"single_run_speedup": ..., "memo.hit_rate": ..., ...},
      "meta": {"created_unix": 1754630000.0}
    }

``meta`` holds run provenance that two otherwise-identical runs are
*expected* to disagree on (currently the timestamp); it never enters a
comparison, and :func:`comparable_view` strips it so reports produced
under a deterministic clock are byte-stable.  Reports written before the
``meta`` sub-object existed carried ``created_unix`` at the top level;
:func:`validate_report` accepts either spelling.

Every metric is wall-clock seconds and *lower is better*; regression
comparison is on ``p50`` with a multiplicative tolerance.  Metric keys are
compared by exact name, and only keys present in **both** reports
participate — a ``--quick`` run therefore checks the subset of metrics it
measured against a full committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

#: Version tag of the report layout.  Bump when the layout changes
#: incompatibly; ``repro bench --compare`` refuses mismatched tags.
BENCH_SCHEMA = "repro.bench/v1"

#: Required top-level keys of a report.
_TOP_KEYS = ("schema", "git_sha", "machine", "config", "metrics")

#: Required keys of one metric record.
_METRIC_KEYS = ("unit", "reps", "p50", "p95", "min", "mean", "samples")


def validate_report(report: Any) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be a JSON object, got {type(report).__name__}"]
    for key in _TOP_KEYS:
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    schema = report.get("schema")
    if "schema" in report and schema != BENCH_SCHEMA:
        errors.append(f"schema mismatch: expected {BENCH_SCHEMA!r}, got {schema!r}")
    meta = report.get("meta")
    if meta is not None and not isinstance(meta, dict):
        errors.append("meta must be an object")
    created = (meta or {}).get("created_unix", report.get("created_unix"))
    if created is None:
        errors.append("missing created_unix (in meta or, legacy, top-level)")
    elif not isinstance(created, (int, float)):
        errors.append("created_unix must be numeric")
    metrics = report.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict) or not metrics:
            errors.append("metrics must be a non-empty object")
        else:
            for name, record in metrics.items():
                errors.extend(_validate_metric(name, record))
    return errors


def _validate_metric(name: str, record: Any) -> List[str]:
    if not isinstance(record, dict):
        return [f"metric {name!r} must be an object"]
    errors = []
    for key in _METRIC_KEYS:
        if key not in record:
            errors.append(f"metric {name!r} missing {key!r}")
    samples = record.get("samples")
    if isinstance(samples, list):
        if not samples:
            errors.append(f"metric {name!r} has no samples")
        elif not all(isinstance(s, (int, float)) for s in samples):
            errors.append(f"metric {name!r} has non-numeric samples")
        reps = record.get("reps")
        if isinstance(reps, int) and reps != len(samples):
            errors.append(
                f"metric {name!r} reps={reps} disagrees with "
                f"{len(samples)} samples"
            )
    for stat in ("p50", "p95", "min", "mean"):
        value = record.get(stat)
        if stat in record and not isinstance(value, (int, float)):
            errors.append(f"metric {name!r} {stat} must be numeric")
    return errors


def comparable_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus run provenance: what comparisons (and byte-level
    determinism checks) may look at.  Strips ``meta`` and the legacy
    top-level ``created_unix``."""
    return {
        key: value
        for key, value in report.items()
        if key not in ("meta", "created_unix")
    }


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current comparison."""

    metric: str
    baseline_p50: float
    current_p50: float

    @property
    def ratio(self) -> float:
        if self.baseline_p50 <= 0:
            return float("inf") if self.current_p50 > 0 else 1.0
        return self.current_p50 / self.baseline_p50

    def describe(self) -> str:
        return (
            f"{self.metric}: baseline p50 {self.baseline_p50:.6f}s -> "
            f"current p50 {self.current_p50:.6f}s ({self.ratio:.2f}x)"
        )


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing a current report against a baseline."""

    compared: List[MetricDelta]
    regressions: List[MetricDelta]
    only_baseline: List[str]
    only_current: List[str]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float,
) -> Comparison:
    """Compare shared metrics on p50; lower is better.

    A metric regresses when ``current_p50 > baseline_p50 * tolerance``.
    Metrics present in only one report are listed but never fail the
    comparison (a ``--quick`` run measures a subset of the full baseline).
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    base_metrics: Dict[str, Any] = baseline.get("metrics", {})
    cur_metrics: Dict[str, Any] = current.get("metrics", {})
    shared = sorted(set(base_metrics) & set(cur_metrics))
    compared: List[MetricDelta] = []
    regressions: List[MetricDelta] = []
    for name in shared:
        delta = MetricDelta(
            metric=name,
            baseline_p50=float(base_metrics[name]["p50"]),
            current_p50=float(cur_metrics[name]["p50"]),
        )
        compared.append(delta)
        if delta.current_p50 > delta.baseline_p50 * tolerance:
            regressions.append(delta)
    return Comparison(
        compared=compared,
        regressions=regressions,
        only_baseline=sorted(set(base_metrics) - set(cur_metrics)),
        only_current=sorted(set(cur_metrics) - set(base_metrics)),
    )
