"""Measurement harness behind ``repro bench`` (see docs/BENCHMARKING.md).

Three metric families, all wall-clock seconds (lower is better):

* **Single-run engine throughput** — run the fixed :data:`BENCH_BENCHMARKS`
  set (both pipeline versions, both engine implementations) end to end
  ``reps`` times; one sample is the wall time of the whole set.  The
  reference/fast p50 ratio is the headline speedup of the vectorized
  engine.
* **Sweep wall time** — the registry sweep through
  :class:`~repro.experiments.runner.SweepRunner` against a throwaway
  result cache: a *cold* pass (every task simulated) then a *warm* pass
  (every task served from the persistent cache), at ``--jobs 1`` and
  ``--jobs 4``.  Quick mode measures a fixed 8-benchmark subset at
  ``--jobs 1`` only (distinct metric keys, so full baselines remain
  comparable).
* **Paired sweep** (``sweep.paired.wall_s``) — the quick subset's
  copy/limited-copy pairs simulated back to back in-process with no
  result cache: isolates the cross-version stage-memo win
  (:mod:`repro.sim.memo`) from cache and scheduling overheads.  The
  shared memo is cleared inside the measured function, so every rep sees
  the same deterministic hit pattern; the observed hit fraction is
  reported as ``derived["memo.hit_rate"]``.
* **Cache hit-path latency** — p50/p95 of loading one stored sweep-cache
  entry back from disk.

Every timed quantity flows through :func:`measure`, which takes the clock
as a parameter — the CLI tests inject a deterministic fake clock and get
byte-identical reports without real timing.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.schema import BENCH_SCHEMA
from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments.parallel import COPY, LIMITED, _simulate_version, _system_for
from repro.experiments.runner import DEFAULT_BENCH_SCALE, SweepRunner
from repro.sim.engine import SimOptions
from repro.sim.memo import clear_shared_stage_memo, stage_memo_snapshot
from repro.sim.resultcache import ResultCache, cache_key
from repro.workloads import registry

#: The fixed benchmark set of the single-run throughput metric: the
#: paper's kmeans case study plus one representative each of the graph
#: (bfs), stencil (srad), and histogram (histo) classes.
BENCH_BENCHMARKS: Tuple[str, ...] = (
    "rodinia/kmeans",
    "lonestar/bfs",
    "rodinia/srad",
    "parboil/histo",
)

#: Deterministic sweep subset measured in ``--quick`` mode (and alongside
#: the full sweep in full mode, so quick runs can compare against a full
#: baseline).
QUICK_SWEEP_BENCHMARKS: Tuple[str, ...] = (
    "lonestar/bfs",
    "lonestar/mst",
    "pannotia/bc",
    "pannotia/pr",
    "parboil/histo",
    "parboil/spmv",
    "rodinia/kmeans",
    "rodinia/srad",
)

#: Engine implementations the single-run metric times.
ENGINE_IMPLS: Tuple[str, ...] = ("reference", "fast")

Clock = Callable[[], float]


@dataclass(frozen=True)
class BenchConfig:
    """What one ``repro bench`` invocation measures."""

    scale: float = DEFAULT_BENCH_SCALE
    seed: int = 0
    reps: int = 5
    quick: bool = False
    #: Stage-memoization mode of the measured runs ("auto"/"on"/"off").
    stage_memo: str = "auto"
    #: Benchmarks of the single-run throughput metric.
    benchmarks: Tuple[str, ...] = BENCH_BENCHMARKS
    #: Benchmarks of the quick-subset sweep metric.
    quick_sweep: Tuple[str, ...] = QUICK_SWEEP_BENCHMARKS
    #: Jobs levels of the full sweep metric.
    jobs: Tuple[int, ...] = (1, 4)
    #: Loads of the cache hit-path metric.
    hit_reps: int = 100

    def effective_reps(self) -> int:
        return max(1, min(self.reps, 2) if self.quick else self.reps)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "reps": self.effective_reps(),
            "quick": self.quick,
            "stage_memo": self.stage_memo,
            "benchmarks": list(self.benchmarks),
            "quick_sweep": list(self.quick_sweep),
            "jobs": list(self.jobs),
            "hit_reps": self.hit_reps,
        }


def measure(fn: Callable[[], Any], reps: int, clock: Clock) -> Dict[str, Any]:
    """Time ``fn`` ``reps`` times; return a schema metric record."""
    samples: List[float] = []
    for _ in range(reps):
        start = clock()
        fn()
        samples.append(clock() - start)
    arr = np.asarray(samples, dtype=float)
    return {
        "unit": "s",
        "reps": reps,
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "samples": [float(s) for s in samples],
    }


def machine_fingerprint() -> Dict[str, Any]:
    import os

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
    }


def git_sha(repo_dir: Optional[Path] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir or Path(__file__).resolve().parents[3],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _options(config: BenchConfig, impl: str) -> SimOptions:
    return SimOptions(
        scale=config.scale,
        seed=config.seed,
        engine_impl=impl,
        stage_memo=config.stage_memo,
    )


def _run_set(config: BenchConfig, impl: str) -> None:
    """Simulate the fixed benchmark set once (both versions).

    The shared stage memo is cleared first, so every timed rep starts
    cold and sees only the deterministic *intra-set* hits a real cold run
    would — not leftovers from a previous rep or metric.
    """
    clear_shared_stage_memo()
    discrete = discrete_gpu_system()
    heterogeneous = heterogeneous_processor()
    options = _options(config, impl)
    for name in config.benchmarks:
        spec = registry.get(name)
        for version in (COPY, LIMITED):
            system = _system_for(version, discrete, heterogeneous)
            _simulate_version(spec, version, system, options)


def single_run_metrics(config: BenchConfig, clock: Clock) -> Dict[str, Any]:
    metrics: Dict[str, Any] = {}
    reps = config.effective_reps()
    for impl in ENGINE_IMPLS:
        _run_set(config, impl)  # warm numpy/module state out of the timing
        metrics[f"single_run.{impl}.wall_s"] = measure(
            lambda impl=impl: _run_set(config, impl), reps, clock
        )
    return metrics


def _sweep_once(
    config: BenchConfig,
    names: Optional[Sequence[str]],
    jobs: int,
    cache_dir: Path,
) -> None:
    clear_shared_stage_memo()  # cold phases start memo-cold, deterministically
    runner = SweepRunner(
        options=_options(config, "fast"),
        parallel=jobs,
        cache_dir=cache_dir,
    )
    specs = [registry.get(name) for name in names] if names is not None else None
    runner.sweep(specs)


def sweep_metrics(config: BenchConfig, clock: Clock) -> Dict[str, Any]:
    """Cold+warm sweep wall times against a throwaway persistent cache."""
    metrics: Dict[str, Any] = {}
    plans: List[Tuple[str, Optional[Tuple[str, ...]], int]] = [
        ("sweep_quick", config.quick_sweep, 1)
    ]
    if not config.quick:
        plans.extend(("sweep", None, jobs) for jobs in config.jobs)
    for prefix, names, jobs in plans:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            cache_dir = Path(tmp)
            for phase in ("cold", "warm"):
                metrics[f"{prefix}.{phase}.jobs{jobs}.wall_s"] = measure(
                    lambda: _sweep_once(config, names, jobs, cache_dir),
                    1,
                    clock,
                )
    return metrics


def paired_sweep_metrics(
    config: BenchConfig, clock: Clock
) -> Tuple[Dict[str, Any], float]:
    """Back-to-back copy/limited pairs in-process, no result cache.

    This is the tentpole metric of the stage memo: the limited-copy run of
    each pair replays every stage whose access stream and incoming state
    it shares with the copy run, so the pair costs less than two
    independent simulations.  Returns the metric dict plus the observed
    memo hit fraction (0.0 when memoization is off), which
    :func:`collect_report` surfaces as ``derived["memo.hit_rate"]``.
    """
    discrete = discrete_gpu_system()
    heterogeneous = heterogeneous_processor()
    options = _options(config, "fast")
    specs = [registry.get(name) for name in config.quick_sweep]

    def run_pairs() -> None:
        clear_shared_stage_memo()
        for spec in specs:
            for version in (COPY, LIMITED):
                system = _system_for(version, discrete, heterogeneous)
                _simulate_version(spec, version, system, options)

    run_pairs()  # warm module state out of the timing
    before = stage_memo_snapshot()
    metrics = {
        "sweep.paired.wall_s": measure(
            run_pairs, config.effective_reps(), clock
        )
    }
    hits = stage_memo_snapshot()[0] - before[0]
    misses = stage_memo_snapshot()[1] - before[1]
    lookups = hits + misses
    return metrics, (hits / lookups if lookups else 0.0)


def hit_path_metrics(config: BenchConfig, clock: Clock) -> Dict[str, Any]:
    """Latency of loading one stored result-cache entry back from disk."""
    name = config.benchmarks[0]
    spec = registry.get(name)
    system = discrete_gpu_system()
    options = _options(config, "fast")
    result, sim_wall = _simulate_version(spec, COPY, system, options)
    key = cache_key(spec, COPY, system, options)
    with tempfile.TemporaryDirectory(prefix="repro-bench-hit-") as tmp:
        cache = ResultCache(tmp)
        cache.store(key, result, sim_wall_s=sim_wall)
        cache.load(key)  # warm the page cache; misses are not the metric
        return {
            "cache.hit_load.wall_s": measure(
                lambda: cache.load(key), config.hit_reps, clock
            )
        }


def _derived(metrics: Dict[str, Any], config: BenchConfig) -> Dict[str, Any]:
    derived: Dict[str, Any] = {}
    ref = metrics.get("single_run.reference.wall_s")
    fast = metrics.get("single_run.fast.wall_s")
    runs = len(config.benchmarks) * 2
    if ref and fast:
        if fast["p50"] > 0:
            derived["single_run_speedup"] = ref["p50"] / fast["p50"]
        if fast["min"] > 0:
            derived["single_run_speedup_best"] = ref["min"] / fast["min"]
    for impl, record in (("reference", ref), ("fast", fast)):
        if record and record["p50"] > 0:
            derived[f"runs_per_sec.{impl}"] = runs / record["p50"]
    return derived


def collect_report(
    config: BenchConfig,
    clock: Clock = time.perf_counter,
    now: Callable[[], float] = time.time,
) -> Dict[str, Any]:
    """Run every measurement; return the schema-versioned report dict.

    The timestamp lives under ``meta`` — the one sub-object excluded from
    comparison — so two runs of identical timings produce byte-identical
    comparable payloads (the CLI tests exploit this with a fake clock).
    """
    metrics: Dict[str, Any] = {}
    metrics.update(single_run_metrics(config, clock))
    metrics.update(hit_path_metrics(config, clock))
    paired, hit_rate = paired_sweep_metrics(config, clock)
    metrics.update(paired)
    metrics.update(sweep_metrics(config, clock))
    derived = _derived(metrics, config)
    derived["memo.hit_rate"] = hit_rate
    return {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha(),
        "machine": machine_fingerprint(),
        "config": config.to_dict(),
        "metrics": metrics,
        "derived": derived,
        "meta": {"created_unix": float(now())},
    }


def write_report(report: Dict[str, Any], path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def summarize(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a report."""
    lines = [f"bench report ({report.get('schema')})"]
    sha = report.get("git_sha")
    if sha:
        lines[0] += f" @ {sha[:12]}"
    for name in sorted(report.get("metrics", {})):
        record = report["metrics"][name]
        lines.append(
            f"  {name:32s} p50={record['p50']:.4f}s "
            f"p95={record['p95']:.4f}s (n={record['reps']})"
        )
    for name in sorted(report.get("derived", {})):
        value = report["derived"][name]
        lines.append(f"  {name:32s} {value:.3f}")
    return "\n".join(lines)
