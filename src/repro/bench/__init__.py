"""Performance benchmarking of the simulation engine itself.

``repro bench`` measures the harness's own wall-clock performance —
single-run engine throughput (reference vs. fast implementation), cold and
warm registry-sweep times, and result-cache hit latency — and writes a
schema-versioned report that later runs compare against for regressions
(``repro bench --compare BENCH_engine.json``).  See docs/BENCHMARKING.md.
"""

from repro.bench.harness import (
    BENCH_BENCHMARKS,
    BenchConfig,
    collect_report,
    machine_fingerprint,
    summarize,
    write_report,
)
from repro.bench.schema import (
    BENCH_SCHEMA,
    Comparison,
    MetricDelta,
    comparable_view,
    compare_reports,
    validate_report,
)

__all__ = [
    "BENCH_BENCHMARKS",
    "BENCH_SCHEMA",
    "BenchConfig",
    "Comparison",
    "MetricDelta",
    "collect_report",
    "comparable_view",
    "compare_reports",
    "machine_fingerprint",
    "summarize",
    "validate_report",
    "write_report",
]
