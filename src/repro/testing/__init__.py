"""Test harnesses shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault injector behind the
sweep-robustness suite and the CI fault-injection job: it makes chosen
sweep tasks raise, hang, or kill their worker process, and plants damaged
entries in the persistent result cache, so every degradation path of
:mod:`repro.experiments.parallel` is exercised rather than trusted.
"""

from repro.testing.faults import (
    FAULT_DIR_ENV,
    FAULT_SPEC_ENV,
    FaultInjected,
    FaultRule,
    injected_faults,
    maybe_inject,
    plant_corrupt_entry,
    plant_foreign_schema_entry,
    plant_truncated_entry,
)

__all__ = [
    "FAULT_DIR_ENV",
    "FAULT_SPEC_ENV",
    "FaultInjected",
    "FaultRule",
    "injected_faults",
    "maybe_inject",
    "plant_corrupt_entry",
    "plant_foreign_schema_entry",
    "plant_truncated_entry",
]
