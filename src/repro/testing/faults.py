"""Deterministic fault injection for sweep robustness testing.

The fault supervisor of :mod:`repro.experiments.parallel` promises that
worker exceptions, hangs, hard crashes, and cache damage degrade the sweep
gracefully instead of aborting it.  This module makes those promises
testable: a rule table says which (benchmark, version) tasks misbehave and
how, and :func:`maybe_inject` — called from the simulation hook inside
every sweep task — fires the matching fault.

Rules travel through the environment (``$REPRO_FAULTS``) so they cross the
``ProcessPoolExecutor`` boundary into workers regardless of start method;
attempt counters live in files under ``$REPRO_FAULT_DIR`` so "fail the
first N attempts, then succeed" stays deterministic across worker
processes (a task's attempts are sequential, so append-then-size needs no
locking).  With no fault spec in the environment the injector is a single
dictionary lookup — effectively free in production.

Fault modes:

* ``raise`` — raise :class:`FaultInjected` inside the task.
* ``hang`` — sleep ``hang_s`` seconds before proceeding (drives the
  per-task timeout path; with a small ``hang_s`` it models a slow task).
* ``kill`` — terminate the worker process with ``os._exit`` (drives the
  ``BrokenProcessPool`` recovery path).  In the parent process — serial or
  degraded execution — dying would take the whole sweep down, so it
  degrades to a ``raise``.

The module also plants damaged persistent-cache entries (corrupt bytes,
truncated gzip, foreign schema) to exercise the
:class:`~repro.sim.resultcache.ResultCache` recovery paths.
"""

from __future__ import annotations

import gzip
import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

if TYPE_CHECKING:  # the cache helpers take a live ResultCache
    from repro.sim.resultcache import ResultCache

#: JSON rule table mapping targets to fault rules.  A target is
#: ``suite/name:version`` (one task), ``suite/name`` (both versions), or
#: ``*`` (every task).
FAULT_SPEC_ENV = "REPRO_FAULTS"

#: Directory holding cross-process attempt counters (one file per target).
FAULT_DIR_ENV = "REPRO_FAULT_DIR"

#: Exit status of a worker killed by the ``kill`` fault mode.
KILL_EXIT_CODE = 86

#: Set (to any non-empty value) in executor worker children
#: (repro.experiments.remote_worker), which are not multiprocessing
#: children but are still safe to hard-kill — the coordinator survives.
EXECUTOR_WORKER_ENV = "REPRO_EXECUTOR_WORKER"

RAISE = "raise"
HANG = "hang"
KILL = "kill"
MODES = (RAISE, HANG, KILL)


class FaultInjected(RuntimeError):
    """The error every injected ``raise`` (and parent-side ``kill``) throws."""


@dataclass(frozen=True)
class FaultRule:
    """How one target misbehaves.

    Args:
        mode: ``raise`` | ``hang`` | ``kill``.
        times: inject only on the first N attempts of the target, then
            behave normally (``None`` = every attempt).  Counted through
            ``$REPRO_FAULT_DIR`` when set, else in-process.
        hang_s: sleep duration for ``hang`` rules.
    """

    mode: str
    times: Optional[int] = None
    hang_s: float = 60.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; choose from {MODES}"
            )


def encode_rules(rules: Dict[str, FaultRule]) -> str:
    """Serialize a rule table for ``$REPRO_FAULTS``."""
    return json.dumps(
        {
            target: {
                "mode": rule.mode,
                "times": rule.times,
                "hang_s": rule.hang_s,
            }
            for target, rule in rules.items()
        },
        sort_keys=True,
    )


def decode_rules(text: str) -> Dict[str, FaultRule]:
    """Parse a ``$REPRO_FAULTS`` rule table (inverse of :func:`encode_rules`)."""
    raw = json.loads(text)
    rules: Dict[str, FaultRule] = {}
    for target, fields in raw.items():
        rules[target] = FaultRule(
            mode=fields["mode"],
            times=fields.get("times"),
            hang_s=float(fields.get("hang_s", 60.0)),
        )
    return rules


#: Memoized parse of the env spec: (spec text, parsed rules).
_parsed: Optional[Tuple[str, Dict[str, FaultRule]]] = None

#: Fallback attempt counters when no $REPRO_FAULT_DIR is set (single
#: process only: pool workers each see their own copy).
_local_attempts: Dict[str, int] = {}


def _rules_from(spec_text: str) -> Dict[str, FaultRule]:
    global _parsed
    if _parsed is None or _parsed[0] != spec_text:
        _parsed = (spec_text, decode_rules(spec_text))
    return _parsed[1]


def _counter_path(target: str) -> Optional[str]:
    root = os.environ.get(FAULT_DIR_ENV)
    if not root:
        return None
    slug = target.replace("/", "_").replace(":", "_")
    return os.path.join(root, f"{slug}.attempts")


def _bump_attempt(target: str) -> int:
    """Record one attempt of ``target``; returns its 1-based number."""
    path = _counter_path(target)
    if path is None:
        _local_attempts[target] = _local_attempts.get(target, 0) + 1
        return _local_attempts[target]
    with open(path, "ab") as handle:
        handle.write(b".")
    return os.path.getsize(path)


def attempts_recorded(target: str) -> int:
    """How many attempts of ``target`` the injector has seen (0 if none)."""
    path = _counter_path(target)
    if path is None:
        return _local_attempts.get(target, 0)
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


@contextmanager
def injected_faults(
    rules: Dict[str, FaultRule],
    counter_dir: Union[None, str, Path] = None,
) -> Iterator[None]:
    """Activate ``rules`` for the enclosed block, parent and pool workers.

    Pass ``counter_dir`` (created if missing) whenever a rule uses
    ``times`` and the sweep runs in a process pool — workers cannot share
    in-memory counters.
    """
    previous_spec = os.environ.get(FAULT_SPEC_ENV)
    previous_dir = os.environ.get(FAULT_DIR_ENV)
    os.environ[FAULT_SPEC_ENV] = encode_rules(rules)
    if counter_dir is not None:
        os.makedirs(str(counter_dir), exist_ok=True)
        os.environ[FAULT_DIR_ENV] = str(counter_dir)
    _local_attempts.clear()
    try:
        yield
    finally:
        if previous_spec is None:
            os.environ.pop(FAULT_SPEC_ENV, None)
        else:
            os.environ[FAULT_SPEC_ENV] = previous_spec
        if counter_dir is not None:
            if previous_dir is None:
                os.environ.pop(FAULT_DIR_ENV, None)
            else:
                os.environ[FAULT_DIR_ENV] = previous_dir
        _local_attempts.clear()


def maybe_inject(benchmark: str, version: str) -> None:
    """Fire the configured fault for (benchmark, version), if any.

    Called from the sweep's simulation hook; a no-op unless
    ``$REPRO_FAULTS`` is set.
    """
    spec_text = os.environ.get(FAULT_SPEC_ENV)
    if not spec_text:
        return
    rules = _rules_from(spec_text)
    target = f"{benchmark}:{version}"
    rule = rules.get(target) or rules.get(benchmark) or rules.get("*")
    if rule is None:
        return
    if rule.times is not None and _bump_attempt(target) > rule.times:
        return
    if rule.mode == RAISE:
        raise FaultInjected(f"injected fault: {target}")
    if rule.mode == HANG:
        time.sleep(rule.hang_s)
        return
    # KILL: a hard worker death.  Pool workers and executor worker
    # children may die for real; in the parent process (serial or
    # degraded execution) dying would take down the whole sweep and the
    # test runner with it, so degrade to a raise there.
    if multiprocessing.parent_process() is not None or os.environ.get(
        EXECUTOR_WORKER_ENV
    ):
        os._exit(KILL_EXIT_CODE)
    raise FaultInjected(f"injected kill refused in parent process: {target}")


# -- persistent-cache damage ----------------------------------------------


def plant_corrupt_entry(cache: "ResultCache", key: str) -> Path:
    """Overwrite (or create) the entry for ``key`` with non-gzip garbage."""
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"this is not a gzip stream at all")
    return path


def plant_truncated_entry(cache: "ResultCache", key: str) -> Path:
    """Truncate the stored entry for ``key`` mid-stream (torn write)."""
    path = cache.path_for(key)
    if path.is_file():
        data = path.read_bytes()
        path.write_bytes(data[: max(4, len(data) // 2)])
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
        from repro.sim.resultcache import CACHE_SCHEMA

        payload = gzip.compress(
            json.dumps({"schema": CACHE_SCHEMA, "key": key}).encode("utf-8")
        )
        path.write_bytes(payload[: len(payload) // 2])
    return path


def plant_foreign_schema_entry(cache: "ResultCache", key: str) -> Path:
    """Write a well-formed gzip-JSON entry with somebody else's schema."""
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(
            {"schema": "somebody.else/v9", "key": key, "result": {}}, handle
        )
    return path
