"""Reuse analysis: miss-ratio curves and concurrent-footprint estimation.

Section V-C argues that "further producer-consumer analysis techniques
should improve identification of a task's live data and estimation of
concurrent memory footprint to aid the programmer in placing data in
available cache".  This module provides those techniques:

* :func:`reuse_time_histogram` — distribution of distances (in accesses)
  between touches of the same block;
* :func:`miss_ratio_curve` — hit ratio as a function of cache capacity,
  obtained by replaying a stream through progressively larger caches;
* :func:`stage_footprints` / :func:`concurrent_footprint_report` — the
  per-stage live-data sizes a programmer must fit in cache to avoid the
  Fig. 9 contention classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config.components import CacheConfig
from repro.pipeline.graph import Pipeline
from repro.sim.cache import SetAssocCache
from repro.trace.generator import TraceGenerator
from repro.trace.stream import AccessStream


def reuse_time_histogram(
    stream: AccessStream,
    bin_edges: Sequence[int] = (1, 16, 256, 4096, 65536),
) -> Dict[str, int]:
    """Histogram of reuse times (accesses between touches of one block).

    Returns counts per bin plus a ``"cold"`` bin for first touches.  Reuse
    *time* is an upper bound on stack reuse *distance*, so a spike beyond
    the cache's line count predicts the contention classes of Fig. 9.
    """
    edges = list(bin_edges)
    if edges != sorted(edges) or len(set(edges)) != len(edges):
        raise ValueError("bin_edges must be strictly increasing")
    labels = [f"<={edge}" for edge in edges] + [f">{edges[-1]}"]
    counts = {label: 0 for label in labels}
    counts["cold"] = 0
    n = len(stream)
    if not n:
        return counts

    order = np.lexsort((np.arange(n), stream.blocks))
    sorted_blocks = stream.blocks[order]
    positions = np.arange(n)[order]
    same = np.zeros(n, dtype=bool)
    same[1:] = sorted_blocks[1:] == sorted_blocks[:-1]
    gaps = np.empty(n, dtype=np.int64)
    gaps[1:] = positions[1:] - positions[:-1]
    gaps[0] = 0

    counts["cold"] = int((~same).sum())
    reuse_gaps = gaps[same]
    previous_edge = 0
    for edge, label in zip(edges, labels):
        in_bin = ((reuse_gaps > previous_edge) & (reuse_gaps <= edge)).sum()
        counts[label] = int(in_bin)
        previous_edge = edge
    counts[labels[-1]] = int((reuse_gaps > edges[-1]).sum())
    return counts


@dataclass(frozen=True)
class MissRatioPoint:
    capacity_bytes: int
    accesses: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio


def miss_ratio_curve(
    stream: AccessStream,
    capacities: Sequence[int],
    line_bytes: int = 128,
    associativity: int = 16,
) -> List[MissRatioPoint]:
    """Replay a stream through caches of increasing capacity.

    The knee of the curve is the stream's working-set size: the capacity a
    coordinated cache-management policy must reserve to keep the stage's
    live data on chip.
    """
    points: List[MissRatioPoint] = []
    for capacity in capacities:
        granule = line_bytes * associativity
        usable = max(granule, (capacity // granule) * granule)
        cache = SetAssocCache(
            CacheConfig(usable, line_bytes=line_bytes, associativity=associativity)
        )
        cache.access_stream(stream)
        points.append(
            MissRatioPoint(
                capacity_bytes=usable,
                accesses=cache.stats.accesses,
                misses=cache.stats.misses,
            )
        )
    return points


@dataclass(frozen=True)
class StageFootprint:
    """Live-data summary for one pipeline stage."""

    stage: str
    unique_bytes: int
    accesses: int

    @property
    def reuse_factor(self) -> float:
        """Accesses per unique line: >1 means in-stage temporal reuse that a
        sufficiently large cache could capture."""
        lines = self.unique_bytes // 128
        return self.accesses / lines if lines else 0.0


def stage_footprints(
    pipeline: Pipeline, seed: int = 0, line_bytes: int = 128
) -> List[StageFootprint]:
    """Unique bytes touched per stage, in topological order."""
    generator = TraceGenerator(pipeline, line_bytes=line_bytes, seed=seed)
    out: List[StageFootprint] = []
    for stage in pipeline.topological_order():
        trace = generator.stage_trace(stage)
        out.append(
            StageFootprint(
                stage=stage.name,
                unique_bytes=trace.bytes_touched,
                accesses=len(trace.stream),
            )
        )
    return out


@dataclass(frozen=True)
class ConcurrentFootprintReport:
    """What the programmer must fit in cache, stage by stage."""

    footprints: Tuple[StageFootprint, ...]
    cache_bytes: int

    @property
    def max_stage_bytes(self) -> int:
        return max((f.unique_bytes for f in self.footprints), default=0)

    @property
    def overcommitted_stages(self) -> Tuple[StageFootprint, ...]:
        """Stages whose live data exceeds the cache — the contention
        candidates of Fig. 9."""
        return tuple(
            f for f in self.footprints if f.unique_bytes > self.cache_bytes
        )

    def recommended_chunks(self, stage: str) -> int:
        """Chunk count that fits the stage's live data in half the cache
        (leaving room for the consumer), as in the kmeans case study."""
        footprint = next(f for f in self.footprints if f.stage == stage)
        target = max(1, self.cache_bytes // 2)
        return max(1, -(-footprint.unique_bytes // target))


def concurrent_footprint_report(
    pipeline: Pipeline,
    cache_bytes: int,
    seed: int = 0,
) -> ConcurrentFootprintReport:
    """Build the Section V-C programmer-aid report for a pipeline."""
    return ConcurrentFootprintReport(
        footprints=tuple(stage_footprints(pipeline, seed=seed)),
        cache_bytes=cache_bytes,
    )
