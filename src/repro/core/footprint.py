"""Memory footprint breakdown by component set (Section IV-A, Fig. 4).

The footprint is measured from the addresses of *all* memory requests made
by CPU cores, GPU cores, and the PCIe copy engine, partitioned into the
mutually exclusive subsets touched by each combination of components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

import numpy as np

from repro.sim.hierarchy import Component
from repro.sim.results import SimResult

ComponentSet = FrozenSet[Component]

#: Display order for the seven non-empty component combinations.
SUBSET_ORDER: Tuple[ComponentSet, ...] = (
    frozenset({Component.COPY}),
    frozenset({Component.COPY, Component.CPU}),
    frozenset({Component.COPY, Component.GPU}),
    frozenset({Component.COPY, Component.CPU, Component.GPU}),
    frozenset({Component.CPU}),
    frozenset({Component.GPU}),
    frozenset({Component.CPU, Component.GPU}),
)


def subset_label(subset: ComponentSet) -> str:
    names = sorted(comp.value for comp in subset)
    return "+".join(names) if names else "untouched"


@dataclass(frozen=True)
class FootprintBreakdown:
    """Bytes touched by each exclusive combination of components."""

    bytes_by_subset: Dict[ComponentSet, int]
    line_bytes: int

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_subset.values())

    def bytes_touched_by(self, component: Component) -> int:
        """Total bytes the component touched (across all subsets)."""
        return sum(
            size for subset, size in self.bytes_by_subset.items() if component in subset
        )

    def fraction(self, subset: ComponentSet) -> float:
        total = self.total_bytes
        return self.bytes_by_subset.get(subset, 0) / total if total else 0.0

    def normalized_to(self, baseline_total: int) -> Dict[ComponentSet, float]:
        """Per-subset fractions of a (different run's) total footprint —
        the left/right paired bars of Fig. 4."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        return {
            subset: size / baseline_total
            for subset, size in self.bytes_by_subset.items()
        }


def footprint_breakdown(result: SimResult) -> FootprintBreakdown:
    """Partition the touched footprint of one run by component combination."""
    touched = {
        comp: result.touched_blocks.get(comp, np.empty(0, dtype=np.int64))
        for comp in Component
    }
    union = (
        np.unique(np.concatenate([arr for arr in touched.values()]))
        if any(len(arr) for arr in touched.values())
        else np.empty(0, dtype=np.int64)
    )
    membership = {
        comp: np.isin(union, arr, assume_unique=True)
        for comp, arr in touched.items()
    }
    bytes_by_subset: Dict[ComponentSet, int] = {}
    for subset in SUBSET_ORDER:
        mask = np.ones(len(union), dtype=bool)
        for comp in Component:
            if comp in subset:
                mask &= membership[comp]
            else:
                mask &= ~membership[comp]
        count = int(mask.sum())
        if count:
            bytes_by_subset[subset] = count * result.line_bytes
    return FootprintBreakdown(bytes_by_subset=bytes_by_subset, line_bytes=result.line_bytes)
