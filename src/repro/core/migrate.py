"""The migrated-compute analytical model (Section V-B, Eqs. 2-4).

Optimistically assumes every compute phase can be distributed across CPU and
GPU cores in proportion to their peak FLOP rates, bounded by copy time and
by off-chip memory bandwidth:

    Rmc_core = (C * Fcpu + G * Fgpu) / (Fcpu + Fgpu)      (2)
    Rmc_BW   = M / BWmem                                  (3)
    Rmc      = max(P, Rmc_core, Rmc_BW)                   (4)

where C, P, G are component busy times, Fcpu/Fgpu the peak FLOP rates, M
the total off-chip traffic in bytes, and BWmem the peak *achieved* memory
bandwidth (~82% of pin bandwidth).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.system import SystemConfig, SystemKind
from repro.core.overlap import ComponentTimes
from repro.sim.results import SimResult


class MigrateBound(enum.Enum):
    """Which term of Eq. 4 limits the migrated-compute run time."""

    COPY = "copy"
    CORE = "core"
    BANDWIDTH = "bandwidth"


@dataclass(frozen=True)
class MigrateEstimate:
    runtime_s: float
    core_bound_s: float
    bandwidth_bound_s: float
    copy_bound_s: float
    bound: MigrateBound


def achieved_bandwidth(system: SystemConfig) -> float:
    """BWmem of Eq. 3: all off-chip bandwidth migrated work could use.

    On the heterogeneous processor this is the shared GDDR5 pool; on the
    discrete system the migrated work is spread across both chips, so both
    pools contribute.
    """
    if system.kind is SystemKind.HETEROGENEOUS:
        return system.gpu_memory.achievable_bandwidth
    return (
        system.cpu_memory.achievable_bandwidth
        + system.gpu_memory.achievable_bandwidth
    )


def migrated_compute_runtime(
    times: ComponentTimes,
    system: SystemConfig,
    offchip_bytes: float,
) -> MigrateEstimate:
    """Apply Eqs. 2-4 to measured component times and memory traffic."""
    if offchip_bytes < 0:
        raise ValueError("offchip_bytes must be non-negative")
    f_cpu = system.cpu.peak_flops
    f_gpu = system.gpu.peak_flops
    core = (times.cpu_s * f_cpu + times.gpu_s * f_gpu) / (f_cpu + f_gpu)
    bandwidth = offchip_bytes / achieved_bandwidth(system)
    bounds = {
        MigrateBound.COPY: times.copy_s,
        MigrateBound.CORE: core,
        MigrateBound.BANDWIDTH: bandwidth,
    }
    bound = max(bounds, key=lambda b: bounds[b])
    return MigrateEstimate(
        runtime_s=bounds[bound],
        core_bound_s=core,
        bandwidth_bound_s=bandwidth,
        copy_bound_s=times.copy_s,
        bound=bound,
    )


def estimate_from_result(result: SimResult, system: SystemConfig) -> MigrateEstimate:
    """Convenience: Eqs. 2-4 directly from a simulation result."""
    return migrated_compute_runtime(
        ComponentTimes.from_result(result),
        system,
        offchip_bytes=float(result.offchip_bytes()),
    )
