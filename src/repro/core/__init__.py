"""The paper's analytical models: overlap, migration, classification."""

from repro.core.casestudy import (
    ORGANIZATIONS,
    OrganizationResult,
    as_table,
    case_study,
    kmeans_case_study,
)
from repro.core.classify import (
    AccessClass,
    Classification,
    classify_log,
    classify_result,
)
from repro.core.footprint import (
    SUBSET_ORDER,
    FootprintBreakdown,
    footprint_breakdown,
    subset_label,
)
from repro.core.metrics import geomean, improvement, normalize, safe_ratio
from repro.core.migrate import (
    MigrateBound,
    MigrateEstimate,
    achieved_bandwidth,
    migrated_compute_runtime,
)
from repro.core.opportunity import OpportunityReport, opportunity_report
from repro.core.roofline import (
    RooflineBound,
    RooflinePoint,
    memory_bound_fraction,
    roofline_report,
)
from repro.core.reuse import (
    ConcurrentFootprintReport,
    MissRatioPoint,
    StageFootprint,
    concurrent_footprint_report,
    miss_ratio_curve,
    reuse_time_histogram,
    stage_footprints,
)
from repro.core.overlap import (
    ComponentTimes,
    OverlapEstimate,
    component_overlap_runtime,
    estimate_from_result,
)

__all__ = [
    "AccessClass",
    "Classification",
    "ComponentTimes",
    "ConcurrentFootprintReport",
    "FootprintBreakdown",
    "MigrateBound",
    "MissRatioPoint",
    "MigrateEstimate",
    "ORGANIZATIONS",
    "OpportunityReport",
    "OrganizationResult",
    "OverlapEstimate",
    "RooflineBound",
    "RooflinePoint",
    "StageFootprint",
    "SUBSET_ORDER",
    "achieved_bandwidth",
    "as_table",
    "case_study",
    "classify_log",
    "classify_result",
    "concurrent_footprint_report",
    "component_overlap_runtime",
    "estimate_from_result",
    "footprint_breakdown",
    "geomean",
    "improvement",
    "kmeans_case_study",
    "miss_ratio_curve",
    "memory_bound_fraction",
    "migrated_compute_runtime",
    "normalize",
    "opportunity_report",
    "reuse_time_histogram",
    "roofline_report",
    "safe_ratio",
    "stage_footprints",
    "subset_label",
]
