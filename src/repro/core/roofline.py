"""Roofline analysis of simulated runs.

Places every stage on the classic roofline: operational intensity
(FLOPs per off-chip byte) against attained FLOP rate, bounded by the
component's peak compute rate and the memory system's achievable bandwidth.
Useful for seeing at a glance which stages the paper's bandwidth-limited
(``*``) annotation applies to and how far each sits from either roof.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.config.system import SystemConfig, SystemKind
from repro.sim.hierarchy import Component
from repro.sim.results import SimResult, StageRecord


class RooflineBound(enum.Enum):
    COMPUTE = "compute"
    MEMORY = "memory"
    LATENCY = "latency"


@dataclass(frozen=True)
class RooflinePoint:
    """One stage's position on the roofline."""

    stage: str
    component: Component
    flops: float
    offchip_bytes: int
    duration_s: float
    peak_flops: float
    peak_bandwidth: float

    @property
    def operational_intensity(self) -> float:
        """FLOPs per off-chip byte (inf for traffic-free stages)."""
        if not self.offchip_bytes:
            return float("inf") if self.flops else 0.0
        return self.flops / self.offchip_bytes

    @property
    def attained_flops(self) -> float:
        return self.flops / self.duration_s if self.duration_s else 0.0

    @property
    def ridge_intensity(self) -> float:
        """Intensity at which the compute and memory roofs meet."""
        return self.peak_flops / self.peak_bandwidth

    @property
    def roof_flops(self) -> float:
        """The roofline bound at this stage's intensity."""
        intensity = self.operational_intensity
        if intensity == float("inf"):
            return self.peak_flops
        return min(self.peak_flops, intensity * self.peak_bandwidth)

    @property
    def bound(self) -> RooflineBound:
        if self.operational_intensity >= self.ridge_intensity:
            return RooflineBound.COMPUTE
        return RooflineBound.MEMORY

    @property
    def efficiency(self) -> float:
        """Attained rate as a fraction of the roof (<=1 up to model noise)."""
        roof = self.roof_flops
        return self.attained_flops / roof if roof else 0.0


def _peak_for(record: StageRecord, system: SystemConfig) -> float:
    if record.component is Component.CPU:
        return system.cpu.peak_flops
    return system.gpu.peak_flops


def _bandwidth_for(record: StageRecord, system: SystemConfig) -> float:
    if system.kind is SystemKind.HETEROGENEOUS:
        return system.gpu_memory.achievable_bandwidth
    if record.component is Component.CPU:
        return system.cpu_memory.achievable_bandwidth
    return system.gpu_memory.achievable_bandwidth


def roofline_report(
    result: SimResult, system: SystemConfig, min_flops: float = 1.0
) -> List[RooflinePoint]:
    """Roofline points for every compute stage of a run.

    Copy stages and zero-FLOP barriers are skipped (they have no place on a
    compute roofline).
    """
    points: List[RooflinePoint] = []
    for record in result.stages:
        if record.component is Component.COPY or record.flops < min_flops:
            continue
        points.append(
            RooflinePoint(
                stage=record.name,
                component=record.component,
                flops=record.flops,
                offchip_bytes=record.offchip_accesses * result.line_bytes,
                duration_s=record.duration_s,
                peak_flops=_peak_for(record, system),
                peak_bandwidth=_bandwidth_for(record, system),
            )
        )
    return points


def memory_bound_fraction(points: List[RooflinePoint]) -> float:
    """Fraction of stage time spent under the memory roof."""
    total = sum(p.duration_s for p in points)
    if not total:
        return 0.0
    memory = sum(
        p.duration_s for p in points if p.bound is RooflineBound.MEMORY
    )
    return memory / total
