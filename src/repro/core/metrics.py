"""Small statistical helpers shared by the experiment harnesses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, TypeVar

K = TypeVar("K")


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports suite-level results this way.

    Zero or negative values are invalid (ratios are strictly positive).
    """
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[K, float], baseline: float) -> Dict[K, float]:
    """Divide every value by ``baseline`` (Figs. 4-9 normalize to the
    copy-version baseline)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return {key: value / baseline for key, value in values.items()}


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    return numerator / denominator if denominator else default


def improvement(baseline: float, optimized: float) -> float:
    """Fractional run-time improvement: 0.37 == '37% faster than baseline'."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 1.0 - optimized / baseline
