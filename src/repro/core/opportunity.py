"""FLOP opportunity cost and core-utilization metrics (Section II).

The paper defines FLOP opportunity cost as "the portion of compute FLOPs
that go unused due to a core being inactive": integrating each component's
peak FLOP rate over its idle time, as a fraction of the FLOPs the whole
chip could have delivered over the ROI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.system import SystemConfig
from repro.sim.hierarchy import Component
from repro.sim.results import SimResult


@dataclass(frozen=True)
class OpportunityReport:
    """Core-utilization summary for one run."""

    roi_s: float
    cpu_busy_s: float
    gpu_busy_s: float
    cpu_peak_flops: float
    gpu_peak_flops: float
    cpu_flops_done: float
    gpu_flops_done: float

    @property
    def cpu_utilization(self) -> float:
        return self.cpu_busy_s / self.roi_s if self.roi_s else 0.0

    @property
    def gpu_utilization(self) -> float:
        return self.gpu_busy_s / self.roi_s if self.roi_s else 0.0

    @property
    def available_flops(self) -> float:
        """FLOPs the chip could deliver over the ROI at peak."""
        return self.roi_s * (self.cpu_peak_flops + self.gpu_peak_flops)

    @property
    def unused_flops(self) -> float:
        """FLOPs forgone while cores sat idle."""
        cpu_idle = max(0.0, self.roi_s - self.cpu_busy_s)
        gpu_idle = max(0.0, self.roi_s - self.gpu_busy_s)
        return cpu_idle * self.cpu_peak_flops + gpu_idle * self.gpu_peak_flops

    @property
    def flop_opportunity_cost(self) -> float:
        """Fraction of available FLOPs lost to idle cores."""
        available = self.available_flops
        return self.unused_flops / available if available else 0.0

    @property
    def gpu_compute_share(self) -> float:
        """Fraction of executed FLOPs the GPU performed (kmeans: 95%)."""
        done = self.cpu_flops_done + self.gpu_flops_done
        return self.gpu_flops_done / done if done else 0.0


def opportunity_report(result: SimResult, system: SystemConfig) -> OpportunityReport:
    flops = result.flops_by_component
    return OpportunityReport(
        roi_s=result.roi_s,
        cpu_busy_s=result.busy_time(Component.CPU),
        gpu_busy_s=result.busy_time(Component.GPU),
        cpu_peak_flops=system.cpu.peak_flops,
        gpu_peak_flops=system.gpu.peak_flops,
        cpu_flops_done=flops.get(Component.CPU, 0.0),
        gpu_flops_done=flops.get(Component.GPU, 0.0),
    )
