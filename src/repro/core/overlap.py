"""The component-overlap analytical model (Section V-A, Eq. 1).

Estimates the run time achievable by overlapping CPU, copy, and GPU
activity — via kernel fission + asynchronous streams on a discrete GPU, or
in-memory producer-consumer signalling on a heterogeneous processor —
without changing the amount of work each component performs:

    Rco = Cserial + max(C - Cserial, P, G)

C, P and G are the CPU, copy and GPU busy times; Cserial is the portion of
CPU launch activity that cannot be overlapped (launches issued while no
kernel or copy is running to mask them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.hierarchy import Component
from repro.sim.results import SimResult


@dataclass(frozen=True)
class ComponentTimes:
    """The per-component busy times Eq. 1 consumes."""

    cpu_s: float
    copy_s: float
    gpu_s: float
    cserial_s: float
    roi_s: float

    def __post_init__(self) -> None:
        for label, value in (
            ("cpu_s", self.cpu_s),
            ("copy_s", self.copy_s),
            ("gpu_s", self.gpu_s),
            ("cserial_s", self.cserial_s),
            ("roi_s", self.roi_s),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if self.cserial_s > self.cpu_s + 1e-12:
            raise ValueError("Cserial cannot exceed total CPU time")

    @staticmethod
    def from_result(result: SimResult) -> "ComponentTimes":
        cpu = result.busy_time(Component.CPU)
        return ComponentTimes(
            cpu_s=cpu,
            copy_s=result.busy_time(Component.COPY),
            gpu_s=result.busy_time(Component.GPU),
            cserial_s=min(result.serial_launch_time(), cpu),
            roi_s=result.roi_s,
        )


@dataclass(frozen=True)
class OverlapEstimate:
    """Eq. 1 output: the estimated overlapped run time and its breakdown."""

    runtime_s: float
    cserial_s: float
    bottleneck: Component
    bottleneck_s: float

    @property
    def copy_s(self) -> float:
        """Copy time exposed in the estimate (for stacked-bar rendering)."""
        return self.bottleneck_s if self.bottleneck is Component.COPY else 0.0


def component_overlap_runtime(times: ComponentTimes) -> OverlapEstimate:
    """Apply Eq. 1 to measured component times."""
    cpu_overlappable = times.cpu_s - times.cserial_s
    candidates = {
        Component.CPU: cpu_overlappable,
        Component.COPY: times.copy_s,
        Component.GPU: times.gpu_s,
    }
    bottleneck = max(candidates, key=lambda c: candidates[c])
    longest = candidates[bottleneck]
    return OverlapEstimate(
        runtime_s=times.cserial_s + longest,
        cserial_s=times.cserial_s,
        bottleneck=bottleneck,
        bottleneck_s=longest,
    )


def estimate_from_result(result: SimResult) -> OverlapEstimate:
    """Convenience: Eq. 1 directly from a simulation result."""
    return component_overlap_runtime(ComponentTimes.from_result(result))
