"""The Section II / Fig. 3 case study: one benchmark, five organizations.

Runs a benchmark through the sequence of organizations the paper walks
kmeans through:

1. **Baseline** — unmodified copy version on the discrete GPU system.
2. **Asynchronous Copy** — kernel fission + N-wide async streams, discrete.
3. **No Memory Copy** — limited-copy port on the heterogeneous processor.
4. **Parallel*** — analytical estimate (Eq. 1) of producer-consumer overlap
   applied to the no-copy organization (starred: estimated, not simulated).
5. **Parallel + Cache** — chunked producer-consumer version *simulated* on
   the heterogeneous processor, where in-cache data handoff improves on the
   estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config.system import SystemConfig, discrete_gpu_system, heterogeneous_processor
from repro.core.overlap import ComponentTimes, component_overlap_runtime
from repro.pipeline.graph import Pipeline
from repro.pipeline.transforms import (
    fission_async_streams,
    parallel_producer_consumer,
    remove_copies,
)
from repro.sim.engine import SimOptions, simulate
from repro.sim.hierarchy import Component
from repro.sim.results import SimResult

#: Organization labels, in presentation order (Fig. 3 x-axis).
BASELINE = "Baseline"
ASYNC_COPY = "Asynchronous Copy"
NO_COPY = "No Memory Copy"
PARALLEL = "Parallel*"
PARALLEL_CACHE = "Parallel + Cache"

ORGANIZATIONS = (BASELINE, ASYNC_COPY, NO_COPY, PARALLEL, PARALLEL_CACHE)


@dataclass(frozen=True)
class OrganizationResult:
    """Run time and utilization of one benchmark organization."""

    label: str
    runtime_s: float
    cpu_busy_s: float
    copy_busy_s: float
    gpu_busy_s: float
    gpu_utilization: float
    estimated: bool
    result: Optional[SimResult] = None

    def normalized(self, baseline_runtime_s: float) -> float:
        return self.runtime_s / baseline_runtime_s


def _from_sim(label: str, result: SimResult) -> OrganizationResult:
    return OrganizationResult(
        label=label,
        runtime_s=result.roi_s,
        cpu_busy_s=result.busy_time(Component.CPU),
        copy_busy_s=result.busy_time(Component.COPY),
        gpu_busy_s=result.busy_time(Component.GPU),
        gpu_utilization=result.utilization(Component.GPU),
        estimated=False,
        result=result,
    )


def case_study(
    pipeline: Pipeline,
    *,
    options: Optional[SimOptions] = None,
    streams: int = 3,
    chunks: int = 8,
    discrete: Optional[SystemConfig] = None,
    heterogeneous: Optional[SystemConfig] = None,
) -> List[OrganizationResult]:
    """Run the five-organization Fig. 3 sequence for one benchmark.

    ``streams`` matches the paper's "3-wide asynchronous stream
    organization"; ``chunks`` controls the parallel producer-consumer data
    granularity (small enough chunks let consumers hit in cache).
    """
    options = options or SimOptions()
    discrete = discrete or discrete_gpu_system()
    heterogeneous = heterogeneous or heterogeneous_processor()
    if pipeline.limited_copy:
        raise ValueError("case_study expects the copy (discrete) pipeline version")

    out: List[OrganizationResult] = []

    baseline = simulate(pipeline, discrete, options)
    out.append(_from_sim(BASELINE, baseline))

    fissioned = fission_async_streams(pipeline, streams)
    out.append(_from_sim(ASYNC_COPY, simulate(fissioned, discrete, options)))

    limited = remove_copies(pipeline)
    no_copy = simulate(limited, heterogeneous, options)
    out.append(_from_sim(NO_COPY, no_copy))

    # Parallel*: Eq. 1 estimate over the no-copy component times, assuming
    # consumers start as soon as producers generate output.
    times = ComponentTimes.from_result(no_copy)
    estimate = component_overlap_runtime(times)
    out.append(
        OrganizationResult(
            label=PARALLEL,
            runtime_s=estimate.runtime_s,
            cpu_busy_s=times.cpu_s,
            copy_busy_s=times.copy_s,
            gpu_busy_s=times.gpu_s,
            gpu_utilization=(
                times.gpu_s / estimate.runtime_s if estimate.runtime_s else 0.0
            ),
            estimated=True,
        )
    )

    chunked = parallel_producer_consumer(limited, chunks)
    out.append(_from_sim(PARALLEL_CACHE, simulate(chunked, heterogeneous, options)))
    return out


def kmeans_case_study(
    options: Optional[SimOptions] = None,
    streams: int = 3,
    chunks: int = 64,
) -> List[OrganizationResult]:
    """Fig. 3: the kmeans case study.

    ``chunks`` defaults to 64 so each chunk's intermediate data (assignments
    plus partial sums) fits comfortably in the GPU L2 and the CPU consumer
    hits in cache — the "small enough intermediate data" condition of
    Section II-B.
    """
    from repro.workloads.suites.rodinia import kmeans_pipeline

    return case_study(
        kmeans_pipeline(), options=options, streams=streams, chunks=chunks
    )


def as_table(results: List[OrganizationResult]) -> Dict[str, Dict[str, float]]:
    """Normalized run times and utilizations keyed by organization label."""
    baseline = results[0].runtime_s
    return {
        r.label: {
            "runtime_s": r.runtime_s,
            "normalized_runtime": r.normalized(baseline),
            "gpu_utilization": r.gpu_utilization,
            "cpu_busy_s": r.cpu_busy_s,
            "copy_busy_s": r.copy_busy_s,
            "gpu_busy_s": r.gpu_busy_s,
        }
        for r in results
    }
