"""Off-chip memory access classification (Section V-C, Fig. 9).

Every access at the off-chip interface is labelled from its relationship to
the previous (for reads) or next (for writebacks) off-chip access to the
same cache block, measured in pipeline-stage distance:

* **REQUIRED** — compulsory accesses (first read of / last write to a block)
  and long-range reuse spanning multiple pipeline stages.
* **WR_SPILL** — producer-consumer data written back in one stage and read
  in the next: the producing writeback and the consuming read.
* **RR_SPILL** — data read in consecutive stages (shared stage inputs).
* **RR_CONTENTION** — a block re-read within the same stage after capacity
  contention evicted it.
* **WR_CONTENTION** — a block written back and re-read within the same
  stage (the writeback happened before all uses completed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.sim.results import SimResult


class AccessClass(enum.Enum):
    REQUIRED = "required"
    WR_SPILL = "w-r spill"
    RR_SPILL = "r-r spill"
    RR_CONTENTION = "r-r contention"
    WR_CONTENTION = "w-r contention"


_CODE = {
    AccessClass.REQUIRED: 0,
    AccessClass.WR_SPILL: 1,
    AccessClass.RR_SPILL: 2,
    AccessClass.RR_CONTENTION: 3,
    AccessClass.WR_CONTENTION: 4,
}
_CLASS_OF_CODE = {code: cls for cls, code in _CODE.items()}


@dataclass(frozen=True)
class Classification:
    """Fig. 9 output for one simulation run."""

    counts: Dict[AccessClass, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, cls: AccessClass) -> float:
        return self.counts[cls] / self.total if self.total else 0.0

    @property
    def spill_fraction(self) -> float:
        return self.fraction(AccessClass.WR_SPILL) + self.fraction(AccessClass.RR_SPILL)

    @property
    def contention_fraction(self) -> float:
        return self.fraction(AccessClass.RR_CONTENTION) + self.fraction(
            AccessClass.WR_CONTENTION
        )

    @property
    def avoidable(self) -> int:
        """Accesses that better pipeline organization or caching could remove."""
        return self.total - self.counts[AccessClass.REQUIRED]


def classify_log(
    blocks: np.ndarray,
    is_write: np.ndarray,
    logical_stage: np.ndarray,
) -> np.ndarray:
    """Label every off-chip access; returns an int8 array of class codes.

    ``logical_stage`` gives, per access, the pipeline-stage index at which
    it occurred; accesses are in program order.
    """
    n = len(blocks)
    labels = np.full(n, _CODE[AccessClass.REQUIRED], dtype=np.int8)
    if not n:
        return labels

    # Stable sort by block keeps program order within each block's group.
    order = np.lexsort((np.arange(n), blocks))
    b = blocks[order]
    w = is_write[order]
    stage = logical_stage[order].astype(np.int64)

    same_prev = np.zeros(n, dtype=bool)
    same_prev[1:] = b[1:] == b[:-1]
    same_next = np.zeros(n, dtype=bool)
    same_next[:-1] = b[:-1] == b[1:]

    prev_w = np.zeros(n, dtype=bool)
    prev_w[1:] = w[:-1]
    prev_stage = np.zeros(n, dtype=np.int64)
    prev_stage[1:] = stage[:-1]
    next_w = np.zeros(n, dtype=bool)
    next_w[:-1] = w[1:]
    next_stage = np.zeros(n, dtype=np.int64)
    next_stage[:-1] = stage[1:]

    sorted_labels = np.full(n, _CODE[AccessClass.REQUIRED], dtype=np.int8)

    # Reads: classified against the previous access to the block.
    reads = ~w & same_prev
    dist = stage - prev_stage
    mask = reads & (dist == 0) & prev_w
    sorted_labels[mask] = _CODE[AccessClass.WR_CONTENTION]
    mask = reads & (dist == 0) & ~prev_w
    sorted_labels[mask] = _CODE[AccessClass.RR_CONTENTION]
    mask = reads & (dist == 1) & prev_w
    sorted_labels[mask] = _CODE[AccessClass.WR_SPILL]
    mask = reads & (dist == 1) & ~prev_w
    sorted_labels[mask] = _CODE[AccessClass.RR_SPILL]
    # dist > 1 and first-touches stay REQUIRED.

    # Writebacks: classified against the next access when it is a read;
    # final writes (or writes overwritten later) are REQUIRED.
    writes = w & same_next & ~next_w
    ndist = next_stage - stage
    mask = writes & (ndist == 0)
    sorted_labels[mask] = _CODE[AccessClass.WR_CONTENTION]
    mask = writes & (ndist == 1)
    sorted_labels[mask] = _CODE[AccessClass.WR_SPILL]
    # ndist > 1 stays REQUIRED (long-range).

    labels[order] = sorted_labels
    return labels


def classify_result(result: SimResult) -> Classification:
    """Fig. 9 classification for one simulation run."""
    logical = result.logical_of_ordinal[result.log_stage]
    labels = classify_log(result.log_blocks, result.log_is_write, logical)
    counts = {cls: 0 for cls in AccessClass}
    if len(labels):
        codes, tallies = np.unique(labels, return_counts=True)
        for code, tally in zip(codes, tallies):
            counts[_CLASS_OF_CODE[int(code)]] = int(tally)
    return Classification(counts=counts)
