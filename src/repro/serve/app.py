"""The asyncio HTTP/JSON server behind ``repro serve`` (docs/SERVING.md).

Stdlib only: requests are parsed straight off asyncio streams, responses
are JSON with ``Connection: close`` (one request per connection — load
tests open hundreds of short-lived connections, which is exactly the
FaaS-launcher shape SHARP measures), and progress streams are
server-sent events over the same socket.

Endpoints::

    GET  /health                 liveness + job/queue counts
    POST /v1/jobs                submit a job (202 new, 200 coalesced)
    GET  /v1/jobs                list jobs (newest last)
    GET  /v1/jobs/<id>           status + result when terminal
    GET  /v1/jobs/<id>/events    SSE progress stream until terminal
    GET  /v1/cache               ResultCache stats + dedup counters
    GET  /v1/metrics             per-route outer_time percentiles, queue
                                 depth, sweep-wide trace totals
    POST /v1/shutdown            graceful shutdown (drains running jobs)

Jobs are validated on submit (``repro lint`` preflight included),
deduplicated by content hash against in-flight work, and executed on a
bounded worker pool that dispatches through
:func:`repro.experiments.parallel.run_tasks_async` — the PR 5 fault
supervisor, so a crashed pool worker surfaces as a structured per-run
failure and a ``partial`` job status, never a hung request.  Warm
requests are answered from the shared content-addressed
:class:`~repro.sim.resultcache.ResultCache` without re-simulation.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.config.system import discrete_gpu_system, heterogeneous_processor
from repro.experiments.parallel import (
    FaultPolicy,
    SweepMetrics,
    SweepTask,
    resolve_jobs,
    run_tasks_async,
)
from repro.sim.engine import ENGINE_VERSION, SimOptions
from repro.sim.observe.metrics import MetricsRegistry, ServiceMetrics
from repro.sim.resultcache import ResultCache, default_cache_dir
from repro.serve.jobs import DONE, FAILED, PARTIAL, Job, JobStore
from repro.serve.schemas import (
    CACHE_SCHEMA,
    HEALTH_SCHEMA,
    KIND_ADVISE,
    KIND_SIMULATE,
    METRICS_SCHEMA,
    JobValidationError,
    error_payload,
    validate_job,
)
from repro.workloads import registry

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}

#: Default footprint scale for jobs that do not specify one: the same
#: 1/32 the CLI harness uses (see repro.experiments.runner).
DEFAULT_SERVE_SCALE = 1 / 32


class _HttpError(Exception):
    """An error response decided during request parsing/dispatch."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one server process (all surfaced on ``repro serve``)."""

    host: str = "127.0.0.1"
    port: int = 8372  # 0 = ephemeral (the in-process test harness)
    #: Process-pool width each job's sweep fans out over (0 = all cores).
    jobs: int = 0
    #: How many jobs execute concurrently (each with its own sweep pool).
    concurrency: int = 2
    cache_dir: Union[None, str, Path] = None  # None = default location
    no_cache: bool = False
    default_scale: float = DEFAULT_SERVE_SCALE
    #: Tasks per run_tasks_async chunk (progress-event granularity);
    #: 0 = auto: two pool-widths per chunk.
    chunk_size: int = 0
    max_retries: int = 2
    task_timeout_s: Optional[float] = None
    #: Run the lint preflight on every submission.
    lint: bool = True
    max_body_bytes: int = 1 << 20
    #: SSE keep-alive interval while a job produces no events.
    sse_keepalive_s: float = 15.0
    #: Executor backend job sweeps fan out through ("local", "subprocess",
    #: or "ssh" — see docs/SWEEPS.md); results are identical across them.
    backend: str = "local"
    #: Remote hosts for the "ssh" backend.
    hosts: Tuple[str, ...] = ()


class ServeApp:
    """One server instance: job store, runners, and the HTTP front-end."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache: Optional[ResultCache] = (
            None
            if self.config.no_cache
            else ResultCache(self.config.cache_dir or default_cache_dir())
        )
        self.store = JobStore()
        self.metrics_registry = MetricsRegistry()
        self.service_metrics = ServiceMetrics()
        self.discrete = discrete_gpu_system()
        self.heterogeneous = heterogeneous_processor()
        #: Dedup / work counters (the load test's acceptance numbers).
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "jobs_created": 0,
            "computed_runs": 0,
            "warm_runs": 0,
            "failed_runs": 0,
        }
        self._started_monotonic = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shutdown = asyncio.Event()
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (differs from config when it asked for 0)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.concurrency),
            thread_name_prefix="repro-serve",
        )
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(max(1, self.config.concurrency))
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_monotonic = time.monotonic()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain running jobs, release
        every worker (no orphaned pool processes — run_tasks terminates
        its own pools, and the executor is joined)."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            for _ in self._workers:
                await self._queue.put(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def run_until_shutdown(self, on_ready: Optional[Any] = None) -> None:
        """``repro serve`` main: start, block on shutdown, stop cleanly.

        ``on_ready`` (a plain callable taking the app) fires once the
        socket is bound — the CLI uses it to announce the real port.
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # -- job execution -------------------------------------------------------

    def _chunk_size(self, total: int) -> int:
        if self.config.chunk_size > 0:
            return self.config.chunk_size
        return max(4, 2 * resolve_jobs(self.config.jobs))

    def _options(self, job: Job) -> SimOptions:
        return SimOptions(
            scale=job.spec.scale,
            seed=job.spec.seed,
            engine_impl=job.spec.engine,
            stage_memo=job.spec.stage_memo,
        )

    def _policy(self) -> FaultPolicy:
        return FaultPolicy(
            max_retries=self.config.max_retries,
            task_timeout_s=self.config.task_timeout_s,
        )

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                self._queue.task_done()
                return
            self.service_metrics.record_queue_depth(self._queue.qsize())
            job = self.store.get(job_id)
            try:
                if job is not None:
                    await self._execute(job)
            except Exception as exc:  # a bug, not a task failure: the PR 5
                # supervisor already converts those into TaskFailures
                if job is not None and not job.terminal:
                    await self.store.finish(
                        job, FAILED, error=f"{type(exc).__name__}: {exc}"
                    )
            finally:
                self._queue.task_done()

    async def _execute(self, job: Job) -> None:
        await self.store.mark_running(job)
        options = self._options(job)
        policy = self._policy()
        specs = [registry.get(name) for name in job.spec.benchmarks]
        tasks = [
            SweepTask(spec, version)
            for spec in specs
            for version in job.spec.versions
        ]

        async def progress(done: int, total: int, metrics: SweepMetrics) -> None:
            await job.publish(
                "progress",
                completed=done,
                total=total,
                launched=metrics.launched,
                cache_hits=metrics.cache_hits,
                failures=metrics.failed,
                retries=metrics.retries,
            )

        results, metrics = await run_tasks_async(
            tasks,
            discrete=self.discrete,
            heterogeneous=self.heterogeneous,
            options=options,
            jobs=self.config.jobs,
            cache=self.cache,
            metrics_registry=self.metrics_registry,
            policy=policy,
            executor=self._executor,
            chunk_size=self._chunk_size(len(tasks)),
            progress=progress,
            backend=self.config.backend,
            hosts=self.config.hosts,
        )
        self.stats["computed_runs"] += metrics.launched
        self.stats["warm_runs"] += metrics.cache_hits
        self.stats["failed_runs"] += metrics.failed

        runs: Dict[str, Dict[str, Any]] = {}
        for (name, version), result in sorted(results.items()):
            entry: Dict[str, Any] = {
                "roi_s": result.roi_s,
                "system": result.system_kind,
                "violations": len(result.violations),
            }
            if job.spec.kind == KIND_SIMULATE:
                entry["summary"] = dict(result.summary())
            runs[f"{name}:{version}"] = entry
        failures = [
            {
                "benchmark": failure.benchmark,
                "version": failure.version,
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
                "worker_fate": failure.worker_fate,
                "host": failure.host,
            }
            for failure in metrics.failures
        ]
        payload: Dict[str, Any] = {
            "runs": runs,
            "failures": failures,
            "metrics": {
                "launched": metrics.launched,
                "cache_hits": metrics.cache_hits,
                "retries": metrics.retries,
                "pool_rebuilds": metrics.pool_rebuilds,
                "stage_memo_hits": metrics.stage_memo_hits,
                "wall_s": metrics.wall_s,
            },
        }

        if job.spec.kind == KIND_ADVISE and results:
            advice = await self._render_advice(job, options, policy)
            if advice is not None:
                payload["advice"] = advice

        if failures and not results:
            status = FAILED
        elif failures:
            status = PARTIAL  # the PR 5 partial-sweep contract, HTTP-shaped
        else:
            status = DONE
        await self.store.finish(job, status, result=payload)

    async def _render_advice(
        self, job: Job, options: SimOptions, policy: FaultPolicy
    ) -> Optional[str]:
        """Advisor text for an advise job; the pair it ranks was computed
        (and cached) by the sweep dispatch just above, so the runner the
        advisor drives replays warm results instead of re-simulating."""
        from repro.experiments import advisor
        from repro.experiments.runner import SweepError, SweepRunner

        name = job.spec.benchmarks[0]
        cache_root = self.cache.root if self.cache is not None else None

        def render() -> Optional[str]:
            runner = SweepRunner(
                options=options,
                parallel=1,
                cache_dir=cache_root,
                fault_policy=policy,
            )
            try:
                return advisor.advise_benchmark(name, runner).render()
            except SweepError:
                return None  # failures already reported on the job

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, render)

    # -- HTTP front-end ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = time.perf_counter()
        route = "<parse-error>"
        status = 500
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            route = self._route_label(method, path)
            if method == "GET" and path.startswith("/v1/jobs/") and path.endswith(
                "/events"
            ):
                job_id = path[len("/v1/jobs/") : -len("/events")]
                status = await self._stream_events(writer, job_id)
            else:
                status, payload = await self._dispatch(method, path, body)
                self._write_json(writer, status, payload)
        except _HttpError as exc:
            status = exc.status
            try:
                self._write_json(writer, exc.status, exc.payload)
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            status = 499  # client went away mid-request
        except Exception as exc:  # never leak a traceback to the socket
            status = 500
            try:
                self._write_json(
                    writer,
                    500,
                    error_payload(
                        "internal-error", f"{type(exc).__name__}: {exc}"
                    ),
                )
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.service_metrics.record_request(
                route, status, time.perf_counter() - start
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(
                400, error_payload("bad-request", "malformed request line")
            )
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(
                400, error_payload("bad-request", "bad Content-Length")
            ) from None
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                error_payload(
                    "body-too-large",
                    f"body of {length} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                ),
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    @staticmethod
    def _route_label(method: str, path: str) -> str:
        """Collapse per-job paths so metrics aggregate per route."""
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            suffix = "/events" if rest.endswith("/events") else ""
            return f"{method} /v1/jobs/{{id}}{suffix}"
        return f"{method} {path}"

    def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/health":
            return self._require(method, "GET", path), self._health()
        if path == "/v1/cache":
            return self._require(method, "GET", path), self._cache_stats()
        if path == "/v1/metrics":
            return self._require(method, "GET", path), self._metrics()
        if path == "/v1/jobs":
            if method == "POST":
                return await self._submit(body)
            self._require(method, "GET", path)
            return 200, {
                "jobs": [
                    job.describe(include_result=False)
                    for job in self.store.jobs()
                ]
            }
        if path == "/v1/shutdown":
            self._require(method, "POST", path)
            self.request_shutdown()
            return 200, {"status": "shutting-down"}
        if path.startswith("/v1/jobs/"):
            self._require(method, "GET", path)
            job = self.store.get(path[len("/v1/jobs/") :])
            if job is None:
                raise _HttpError(
                    404,
                    error_payload(
                        "unknown-job", f"no job {path[len('/v1/jobs/'):]!r}"
                    ),
                )
            return 200, job.describe()
        raise _HttpError(
            404, error_payload("unknown-route", f"no route {path!r}")
        )

    @staticmethod
    def _require(method: str, expected: str, path: str) -> int:
        if method != expected:
            raise _HttpError(
                405,
                error_payload(
                    "method-not-allowed",
                    f"{path} only accepts {expected}",
                    {"allowed": [expected]},
                ),
            )
        return 200

    async def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(
                400, error_payload("bad-json", f"unparseable body: {exc}")
            ) from None
        try:
            spec = validate_job(
                parsed,
                lint=self.config.lint,
                default_scale=self.config.default_scale,
            )
        except JobValidationError as exc:
            raise _HttpError(exc.status, exc.payload()) from None
        job, coalesced = self.store.submit(spec)
        self.stats["submitted"] += 1
        if coalesced:
            self.stats["coalesced"] += 1
        else:
            self.stats["jobs_created"] += 1
            assert self._queue is not None
            await self._queue.put(job.id)
            self.service_metrics.record_queue_depth(self._queue.qsize())
        response = job.describe(include_result=False)
        response["coalesced"] = coalesced
        return (200 if coalesced else 202), response

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> int:
        job = self.store.get(job_id)
        if job is None:
            self._write_json(
                writer,
                404,
                error_payload("unknown-job", f"no job {job_id!r}"),
            )
            return 404
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        seq = 0
        while True:
            events, terminal = await job.wait_events(
                seq, timeout=self.config.sse_keepalive_s
            )
            for event in events:
                data = json.dumps(event, sort_keys=True)
                writer.write(f"data: {data}\n\n".encode("utf-8"))
            seq += len(events)
            if not events and not terminal:
                writer.write(b": keepalive\n\n")
            await writer.drain()
            if terminal and seq >= len(job.events):
                return 200

    # -- introspection payloads ----------------------------------------------

    def _health(self) -> Dict[str, Any]:
        return {
            "schema": HEALTH_SCHEMA,
            "status": "ok",
            "engine_version": ENGINE_VERSION,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "jobs": self.store.counts(),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "workers": max(1, self.config.concurrency),
            "pool_jobs": resolve_jobs(self.config.jobs),
        }

    def _cache_stats(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": CACHE_SCHEMA,
            "enabled": self.cache is not None,
            "dedup": dict(self.stats),
        }
        if self.cache is not None:
            payload["directory"] = str(self.cache.root)
            payload["entries"] = len(self.cache)
            payload["size_bytes"] = self.cache.size_bytes()
        return payload

    def _metrics(self) -> Dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA,
            "service": self.service_metrics.snapshot(),
            "dedup": dict(self.stats),
            "sweep_totals": self.metrics_registry.totals(),
        }
