"""Load/soak harness for the serve API: ``repro loadtest``.

Hammers a server with a mix of duplicate and distinct sweep jobs —
mirroring SHARP's launcher, every request's *outer time* (submit to
terminal status, HTTP overhead included) is measured client-side — then
pulls the server's dedup counters and asserts the service actually
collapsed the duplicates:

* duplicate submissions of one content hash coalesce into a single
  computation (``computed_runs`` ≪ request count),
* warm repeats are answered from the ``ResultCache`` without
  re-simulating (phase 2 computes nothing), and
* warm-hit latency stays under a generous bound.

The harness runs against any live server (``--url``) or boots its own
in-process :class:`~repro.serve.client.ServerThread` (the default, and
what the CI serve-smoke job uses).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient, ServerThread
from repro.sim.observe.metrics import percentile

#: Schema tag of the report dict.
LOADTEST_SCHEMA = "repro.serve.loadtest/v1"


@dataclass(frozen=True)
class LoadTestConfig:
    """Shape of one load-test run.

    ``duplicate_ratio`` is the fraction of requests that re-submit the
    first (hot) job body; the rest are made distinct by varying the seed.
    The default profile is the CI smoke: 200 requests, 80% duplicates,
    32 in flight, one cheap benchmark at a small scale.
    """

    requests: int = 200
    duplicate_ratio: float = 0.8
    concurrency: int = 32
    benchmarks: Tuple[str, ...] = ("rodinia/kmeans",)
    scale: float = 1 / 64
    #: Warm phase: after the main storm, re-submit the hot job this many
    #: times against the now-warm cache and record its latency separately.
    warm_requests: int = 20
    seed: int = 0
    job_timeout_s: float = 120.0

    def bodies(self) -> List[Dict[str, Any]]:
        """The randomized request mix (deterministic under ``seed``)."""
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0.0 <= self.duplicate_ratio <= 1.0:
            raise ValueError("duplicate_ratio must be in [0, 1]")
        distinct = max(1, round(self.requests * (1.0 - self.duplicate_ratio)))
        bodies: List[Dict[str, Any]] = []
        for index in range(self.requests):
            # Request i of the distinct set gets its own seed; everything
            # else replays seed 0 — the hot job duplicates coalesce onto.
            seed = (index % distinct) if index < distinct else 0
            bodies.append(self._body(seed))
        rng = random.Random(self.seed)
        rng.shuffle(bodies)
        return bodies

    def _body(self, seed: int) -> Dict[str, Any]:
        return {
            "kind": "sweep",
            "benchmarks": sorted(self.benchmarks),
            "scale": self.scale,
            "seed": seed,
        }

    def distinct_jobs(self) -> int:
        return max(1, round(self.requests * (1.0 - self.duplicate_ratio)))


@dataclass
class _Phase:
    """Client-side latency samples of one load phase."""

    outer_s: List[float] = field(default_factory=list)
    errors: int = 0

    def summary(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "requests": len(self.outer_s) + self.errors,
            "errors": self.errors,
        }
        if self.outer_s:
            body["outer_s"] = {
                "p50": percentile(self.outer_s, 50),
                "p95": percentile(self.outer_s, 95),
                "max": max(self.outer_s),
            }
        return body


async def _fire(
    client: ServeClient,
    bodies: List[Dict[str, Any]],
    concurrency: int,
    timeout_s: float,
) -> Tuple[_Phase, List[str]]:
    """Submit every body (bounded concurrency) and wait each to terminal."""
    phase = _Phase()
    statuses: List[str] = []
    gate = asyncio.Semaphore(max(1, concurrency))

    async def one(body: Dict[str, Any]) -> None:
        async with gate:
            start = time.perf_counter()
            try:
                final = await client.run(body, timeout_s=timeout_s)
            except Exception:
                phase.errors += 1
                return
            phase.outer_s.append(time.perf_counter() - start)
            statuses.append(final["status"])

    await asyncio.gather(*(one(body) for body in bodies))
    return phase, statuses


async def run_loadtest(
    client: ServeClient, config: Optional[LoadTestConfig] = None
) -> Dict[str, Any]:
    """Run the storm + warm phases against ``client``; returns the report."""
    config = config or LoadTestConfig()
    before = (await client.cache_stats())["dedup"]

    storm_bodies = config.bodies()
    storm_start = time.perf_counter()
    storm, storm_statuses = await _fire(
        client, storm_bodies, config.concurrency, config.job_timeout_s
    )
    storm_wall = time.perf_counter() - storm_start
    after_storm = (await client.cache_stats())["dedup"]

    # Warm phase: the hot job again, now terminal, so every submission
    # creates a fresh job answered entirely from the ResultCache.
    warm = _Phase()
    if config.warm_requests > 0:
        warm_bodies = [config._body(0) for _ in range(config.warm_requests)]
        warm, _ = await _fire(
            client, warm_bodies, config.concurrency, config.job_timeout_s
        )
    after_warm = (await client.cache_stats())["dedup"]

    def delta(field_name: str, since: Dict[str, Any]) -> int:
        return int(after_warm[field_name]) - int(since[field_name])

    report: Dict[str, Any] = {
        "schema": LOADTEST_SCHEMA,
        "config": {
            "requests": config.requests,
            "duplicate_ratio": config.duplicate_ratio,
            "concurrency": config.concurrency,
            "benchmarks": list(config.benchmarks),
            "scale": config.scale,
            "warm_requests": config.warm_requests,
            "distinct_jobs": config.distinct_jobs(),
        },
        "storm": {**storm.summary(), "wall_s": storm_wall},
        "storm_statuses": {
            status: storm_statuses.count(status)
            for status in sorted(set(storm_statuses))
        },
        "warm": warm.summary(),
        "server": {
            "submitted": delta("submitted", before),
            "coalesced": delta("coalesced", before),
            "jobs_created": delta("jobs_created", before),
            "computed_runs": delta("computed_runs", before),
            "warm_runs": delta("warm_runs", before),
            "failed_runs": delta("failed_runs", before),
            "warm_phase_computed_runs": int(after_warm["computed_runs"])
            - int(after_storm["computed_runs"]),
        },
    }
    return report


def check_report(
    report: Dict[str, Any],
    *,
    max_computed_fraction: float = 0.5,
    warm_p50_bound_s: float = 2.0,
) -> List[str]:
    """The load test's acceptance gate; returns the violated claims.

    * dedup collapsed duplicates: runs actually computed stay under
      ``max_computed_fraction`` of the runs requested,
    * the warm phase re-simulated nothing, and
    * warm-hit p50 outer time is under ``warm_p50_bound_s`` (generous —
      CI machines are slow; this catches hangs, not microseconds).
    """
    problems: List[str] = []
    server = report["server"]
    storm = report["storm"]
    if storm["errors"]:
        problems.append(f"{storm['errors']} storm request(s) errored")
    warm = report["warm"]
    if warm.get("errors"):
        problems.append(f"{warm['errors']} warm request(s) errored")
    requested = report["config"]["requests"]
    computed = server["computed_runs"]
    # Each distinct job is a pair of runs, so compare against 2x requests.
    budget = max_computed_fraction * 2 * requested
    if computed > budget:
        problems.append(
            f"dedup failed: {computed} runs computed for {requested} "
            f"requests (budget {budget:.0f})"
        )
    if server["warm_phase_computed_runs"] > 0:
        problems.append(
            f"warm phase re-simulated {server['warm_phase_computed_runs']} "
            f"run(s); expected pure cache hits"
        )
    warm_stats = warm.get("outer_s")
    if warm_stats is not None and warm_stats["p50"] > warm_p50_bound_s:
        problems.append(
            f"warm-hit p50 {warm_stats['p50']:.3f}s exceeds the "
            f"{warm_p50_bound_s:.1f}s bound"
        )
    return problems


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_loadtest`'s report."""
    config = report["config"]
    server = report["server"]
    storm = report["storm"]
    lines = [
        f"loadtest: {config['requests']} requests "
        f"({config['distinct_jobs']} distinct jobs, "
        f"{config['duplicate_ratio']:.0%} duplicates) "
        f"x{config['concurrency']} in flight",
        f"  storm:  {storm['requests'] - storm['errors']} ok, "
        f"{storm['errors']} errors in {storm['wall_s']:.1f}s",
    ]
    if "outer_s" in storm:
        lines.append(
            f"          outer_time p50 {storm['outer_s']['p50'] * 1e3:.0f}ms "
            f"p95 {storm['outer_s']['p95'] * 1e3:.0f}ms"
        )
    lines.append(
        f"  dedup:  {server['submitted']} submitted -> "
        f"{server['jobs_created']} jobs ({server['coalesced']} coalesced), "
        f"{server['computed_runs']} runs computed, "
        f"{server['warm_runs']} warm"
    )
    warm = report["warm"]
    if "outer_s" in warm:
        lines.append(
            f"  warm:   {warm['requests']} requests, "
            f"p50 {warm['outer_s']['p50'] * 1e3:.0f}ms, "
            f"{server['warm_phase_computed_runs']} re-simulated"
        )
    return "\n".join(lines)


def loadtest_in_process(
    config: Optional[LoadTestConfig] = None,
    serve_config: Optional[ServeConfig] = None,
) -> Dict[str, Any]:
    """Boot an in-process server, run the load test against it, tear down.

    The default server profile keeps the smoke cheap and deterministic:
    serial in-parent sweeps (``jobs=1`` — the pool adds nothing for
    single-benchmark jobs), four concurrent job executors, and an
    isolated temporary cache directory unless the caller provides one.
    """
    import tempfile

    config = config or LoadTestConfig()
    owned_dir: Optional[tempfile.TemporaryDirectory] = None
    if serve_config is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
        serve_config = ServeConfig(
            port=0, jobs=1, concurrency=4, cache_dir=owned_dir.name
        )
    try:
        with ServerThread(serve_config) as server:
            client = server.client(timeout_s=config.job_timeout_s)
            return asyncio.run(run_loadtest(client, config))
    finally:
        if owned_dir is not None:
            owned_dir.cleanup()
