"""Asyncio client for the serve API plus the in-process test harness.

:class:`ServeClient` speaks the server's minimal HTTP/1.1 dialect (one
request per connection) straight over asyncio streams — no third-party
HTTP stack, so the tests and the load-test harness run anywhere the
server does.

:class:`ServerThread` boots a :class:`~repro.serve.app.ServeApp` on its
own event loop in a daemon thread (port 0 = pick a free port), which is
how the tests, ``repro loadtest``'s self-contained mode, and the CI
serve-smoke job get a real server — real sockets, real concurrency —
without a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.app import ServeApp, ServeConfig


class ServeHttpError(RuntimeError):
    """A non-2xx response, carrying the decoded error payload."""

    def __init__(self, status: int, payload: Any) -> None:
        code = payload.get("code") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status} ({code})")
        self.status = status
        self.payload = payload


class ServeClient:
    """Minimal asyncio client: one connection per request, JSON bodies."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- raw request ---------------------------------------------------------

    async def request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Tuple[int, Any]:
        """One round-trip; returns ``(status, decoded JSON payload)``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            ).encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
            status, _, body_bytes = await asyncio.wait_for(
                _read_response(reader), self.timeout_s
            )
            decoded = json.loads(body_bytes) if body_bytes else None
            return status, decoded
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _checked(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Any:
        status, payload = await self.request(method, path, body)
        if status >= 400:
            raise ServeHttpError(status, payload)
        return payload

    # -- conveniences --------------------------------------------------------

    async def health(self) -> Dict[str, Any]:
        return await self._checked("GET", "/health")

    async def cache_stats(self) -> Dict[str, Any]:
        return await self._checked("GET", "/v1/cache")

    async def metrics(self) -> Dict[str, Any]:
        return await self._checked("GET", "/v1/metrics")

    async def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        return await self._checked("POST", "/v1/jobs", job)

    async def job(self, job_id: str) -> Dict[str, Any]:
        return await self._checked("GET", f"/v1/jobs/{job_id}")

    async def shutdown(self) -> Dict[str, Any]:
        return await self._checked("POST", "/v1/shutdown")

    async def wait_job(
        self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.02
    ) -> Dict[str, Any]:
        """Poll a job until it reaches a terminal state; returns its body."""
        deadline = time.monotonic() + timeout_s
        while True:
            body = await self.job(job_id)
            if body["status"] in ("done", "partial", "failed"):
                return body
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {body['status']} after {timeout_s}s"
                )
            await asyncio.sleep(poll_s)

    async def run(
        self, job: Dict[str, Any], timeout_s: float = 60.0
    ) -> Dict[str, Any]:
        """Submit and wait: the one-call path most load-test requests use."""
        accepted = await self.submit(job)
        return await self.wait_job(accepted["id"], timeout_s=timeout_s)

    async def events(
        self, job_id: str, timeout_s: float = 60.0
    ) -> List[Dict[str, Any]]:
        """Consume the SSE stream of a job until the server closes it."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Accept: text/event-stream\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            ).encode("latin-1")
            writer.write(head)
            await writer.drain()

            async def _consume() -> List[Dict[str, Any]]:
                status_line = await reader.readline()
                status = int(status_line.split()[1])
                while True:  # headers
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                if status >= 400:
                    body = await reader.read()
                    raise ServeHttpError(
                        status, json.loads(body) if body else None
                    )
                events: List[Dict[str, Any]] = []
                while True:
                    line = await reader.readline()
                    if not line:
                        return events
                    text = line.decode("utf-8").rstrip("\r\n")
                    if text.startswith("data: "):
                        events.append(json.loads(text[len("data: ") :]))

            return await asyncio.wait_for(_consume(), timeout_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before replying")
    status = int(status_line.split()[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    else:
        body = await reader.read()
    return status, headers, body


class ServerThread:
    """A live server on a background thread; the in-process test harness.

    ::

        with ServerThread(ServeConfig(port=0, jobs=1)) as server:
            report = asyncio.run(server.client().health())

    ``stop()`` (or leaving the ``with`` block) performs the same graceful
    shutdown as ``POST /v1/shutdown``: running jobs drain, the executor
    joins, and no pool workers are left behind.
    """

    def __init__(
        self, config: Optional[ServeConfig] = None, startup_timeout_s: float = 10.0
    ) -> None:
        self.app = ServeApp(config or ServeConfig(port=0))
        self._startup_timeout_s = startup_timeout_s
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self.host = self.app.config.host
        self.port: Optional[int] = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-main", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._startup_timeout_s):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.app.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self.port = self.app.port
            self._ready.set()
            try:
                await self.app._shutdown.wait()
            finally:
                await self.app.stop()

        asyncio.run(main())

    def stop(self, join_timeout_s: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.app.request_shutdown)
        self._thread.join(join_timeout_s)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not shut down in time")
        self._thread = None

    def client(self, timeout_s: float = 60.0) -> ServeClient:
        if self.port is None:
            raise RuntimeError("server not started")
        return ServeClient(self.host, self.port, timeout_s=timeout_s)
