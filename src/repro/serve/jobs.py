"""In-memory job store with content-hash single-flight dedup.

Every submitted job is keyed by its :meth:`JobSpec.content_hash`; while a
job for a hash is still queued or running, further submissions of the
same hash *coalesce* onto it — one computation, many waiters — mirroring
how CrystalGPU transparently shares identical in-flight GPU work.  Once a
job reaches a terminal state its hash is released: a later identical
submission creates a fresh job, which the content-addressed
:class:`~repro.sim.resultcache.ResultCache` then answers warm without
re-simulating.

All mutation happens on the server's event loop thread, so the store
needs no locking; progress consumers (status polls, SSE streams) wait on
a per-job *rotating* :class:`asyncio.Event`: ``publish`` swaps in a fresh
event and sets the old one, waking every waiter of the previous epoch.
An earlier design used :class:`asyncio.Condition`, but before Python 3.12
``Condition.wait`` could be cancelled *while reacquiring its lock*
(cpython gh-90467), losing the cancellation or corrupting the lock state
— and every SSE disconnect cancels a waiter, so the hazard was routine
here.  Plain events have no lock to reacquire, so cancellation is safe on
every interpreter this project supports.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.schemas import JOB_SCHEMA, JobSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"  # every run completed
PARTIAL = "partial"  # some runs completed, some failed (PR 5 contract)
FAILED = "failed"  # nothing completed
TERMINAL_STATES = frozenset({DONE, PARTIAL, FAILED})


@dataclass
class Job:
    """One accepted job and everything observable about it."""

    id: str
    spec: JobSpec
    content_hash: str
    status: str = QUEUED
    #: How many submissions this job absorbed (1 = no duplicates).
    submissions: int = 1
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Monotonic progress events ({"seq": n, "event": ..., ...}).
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Terminal payload: per-run results plus structured failures.
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Live waiters (SSE streams, wait=1 polls) — a nonzero count shields
    #: the job from store eviction so their terminal replay cannot 404.
    waiters: int = 0
    #: Current-epoch change signal; see the module docstring.
    _changed: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def describe(self, *, include_result: bool = True) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "content_hash": self.content_hash,
            "status": self.status,
            "submissions": self.submissions,
            "job": self.spec.describe(),
            "runs": self.spec.runs,
            "events": len(self.events),
            "created_unix": self.created_s,
        }
        if self.started_s is not None:
            body["started_unix"] = self.started_s
        if self.finished_s is not None:
            body["finished_unix"] = self.finished_s
            body["wall_s"] = self.finished_s - (self.started_s or self.created_s)
        if self.error is not None:
            body["error"] = self.error
        if include_result and self.result is not None:
            body["result"] = self.result
        return body

    async def publish(self, event: str, **data: Any) -> None:
        """Append one progress event and wake every waiter."""
        payload = {"seq": len(self.events), "event": event, **data}
        self.events.append(payload)
        # Rotate: waiters of the old epoch wake and re-check their
        # predicate; new waiters park on the fresh event.
        stale, self._changed = self._changed, asyncio.Event()
        stale.set()

    async def _wait_until(self, predicate, timeout: Optional[float]) -> None:
        """Park until ``predicate()`` holds or ``timeout`` elapses.

        Cancellation-safe on every supported Python: there is no lock to
        reacquire, so a cancel during the wait just propagates.  The
        epoch event is captured *before* re-checking the predicate and
        nothing awaits in between, so a publish can never slip through
        the gap (all mutation happens on this event loop thread).
        """
        deadline = (
            None if timeout is None else asyncio.get_event_loop().time() + timeout
        )
        self.waiters += 1
        try:
            while not predicate():
                changed = self._changed
                if deadline is None:
                    await changed.wait()
                    continue
                remaining = deadline - asyncio.get_event_loop().time()
                if remaining <= 0:
                    return
                try:
                    await asyncio.wait_for(changed.wait(), remaining)
                except asyncio.TimeoutError:
                    return
        finally:
            self.waiters -= 1

    async def wait_events(
        self, after_seq: int, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events past ``after_seq``; blocks until there are any or the job
        is terminal.  Returns ``(events, terminal)``."""
        await self._wait_until(
            lambda: len(self.events) > after_seq or self.terminal, timeout
        )
        return list(self.events[after_seq:]), self.terminal

    async def wait_terminal(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state; True on success."""
        await self._wait_until(lambda: self.terminal, timeout)
        return self.terminal


class JobStore:
    """All jobs of one server process, with in-flight dedup by hash."""

    def __init__(
        self, max_jobs: int = 10_000, evict_grace_s: float = 60.0
    ) -> None:
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # content hash -> job id
        self._ids = itertools.count(1)
        self._max_jobs = max_jobs
        #: Terminal jobs younger than this are never evicted — a client
        #: that just watched a job finish gets a window to fetch the
        #: terminal payload without racing eviction into a 404.
        self._evict_grace_s = evict_grace_s

    def __len__(self) -> int:
        return len(self._jobs)

    def submit(self, spec: JobSpec) -> Tuple[Job, bool]:
        """Register a submission; returns ``(job, coalesced)``.

        ``coalesced`` is True when an in-flight job for the same content
        hash absorbed this submission instead of creating a new job.
        """
        content_hash = spec.content_hash()
        existing_id = self._inflight.get(content_hash)
        if existing_id is not None:
            job = self._jobs[existing_id]
            if not job.terminal:
                job.submissions += 1
                return job, True
            # Stale index entry (finish() should have dropped it).
            self._inflight.pop(content_hash, None)
        job = Job(
            id=f"job-{next(self._ids):06d}",
            spec=spec,
            content_hash=content_hash,
        )
        self._jobs[job.id] = job
        self._inflight[content_hash] = job.id
        self._evict_finished()
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    async def mark_running(self, job: Job) -> None:
        job.status = RUNNING
        job.started_s = time.time()
        await job.publish("started")

    async def finish(
        self,
        job: Job,
        status: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Move a job to a terminal state and release its dedup slot."""
        if status not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {status!r}")
        job.result = result
        job.error = error
        job.finished_s = time.time()
        job.status = status
        if self._inflight.get(job.content_hash) == job.id:
            del self._inflight[job.content_hash]
        await job.publish("finished", status=status)

    def _evict_finished(self) -> None:
        """Drop the oldest terminal jobs once the store exceeds its cap.

        In-flight jobs are never evicted — the cap only bounds how much
        history a long-running server retains for status polls.  Two more
        shields keep eviction from racing live readers into a 404:

        * jobs with registered ``waiters`` (an SSE stream about to replay
          the terminal event, a ``wait=1`` poll) are skipped, and
        * jobs inside the ``evict_grace_s`` window after finishing are
          skipped, covering the client that saw "finished" and is about
          to GET the result.

        Both shields may leave the store over its cap temporarily; the
        next submission re-runs eviction once the shields lapse.
        """
        excess = len(self._jobs) - self._max_jobs
        if excess <= 0:
            return
        now = time.time()
        finished = sorted(
            (
                job
                for job in self._jobs.values()
                if job.terminal
                and job.waiters == 0
                and now - (job.finished_s or job.created_s)
                >= self._evict_grace_s
            ),
            key=lambda job: job.finished_s or job.created_s,
        )
        for job in finished[:excess]:
            del self._jobs[job.id]
