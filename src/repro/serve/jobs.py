"""In-memory job store with content-hash single-flight dedup.

Every submitted job is keyed by its :meth:`JobSpec.content_hash`; while a
job for a hash is still queued or running, further submissions of the
same hash *coalesce* onto it — one computation, many waiters — mirroring
how CrystalGPU transparently shares identical in-flight GPU work.  Once a
job reaches a terminal state its hash is released: a later identical
submission creates a fresh job, which the content-addressed
:class:`~repro.sim.resultcache.ResultCache` then answers warm without
re-simulating.

All mutation happens on the server's event loop thread, so the store
needs no locking; progress consumers (status polls, SSE streams) wait on
a per-job :class:`asyncio.Condition`.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.schemas import JOB_SCHEMA, JobSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"  # every run completed
PARTIAL = "partial"  # some runs completed, some failed (PR 5 contract)
FAILED = "failed"  # nothing completed
TERMINAL_STATES = frozenset({DONE, PARTIAL, FAILED})


@dataclass
class Job:
    """One accepted job and everything observable about it."""

    id: str
    spec: JobSpec
    content_hash: str
    status: str = QUEUED
    #: How many submissions this job absorbed (1 = no duplicates).
    submissions: int = 1
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Monotonic progress events ({"seq": n, "event": ..., ...}).
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Terminal payload: per-run results plus structured failures.
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    _cond: asyncio.Condition = field(default_factory=asyncio.Condition)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def describe(self, *, include_result: bool = True) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "content_hash": self.content_hash,
            "status": self.status,
            "submissions": self.submissions,
            "job": self.spec.describe(),
            "runs": self.spec.runs,
            "events": len(self.events),
            "created_unix": self.created_s,
        }
        if self.started_s is not None:
            body["started_unix"] = self.started_s
        if self.finished_s is not None:
            body["finished_unix"] = self.finished_s
            body["wall_s"] = self.finished_s - (self.started_s or self.created_s)
        if self.error is not None:
            body["error"] = self.error
        if include_result and self.result is not None:
            body["result"] = self.result
        return body

    async def publish(self, event: str, **data: Any) -> None:
        """Append one progress event and wake every waiter."""
        payload = {"seq": len(self.events), "event": event, **data}
        async with self._cond:
            self.events.append(payload)
            self._cond.notify_all()

    async def wait_events(
        self, after_seq: int, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events past ``after_seq``; blocks until there are any or the job
        is terminal.  Returns ``(events, terminal)``."""
        async with self._cond:
            if not (len(self.events) > after_seq or self.terminal):
                try:
                    await asyncio.wait_for(
                        self._cond.wait_for(
                            lambda: len(self.events) > after_seq or self.terminal
                        ),
                        timeout,
                    )
                except asyncio.TimeoutError:
                    pass
            return list(self.events[after_seq:]), self.terminal

    async def wait_terminal(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state; True on success."""
        async with self._cond:
            try:
                await asyncio.wait_for(
                    self._cond.wait_for(lambda: self.terminal), timeout
                )
            except asyncio.TimeoutError:
                pass
            return self.terminal


class JobStore:
    """All jobs of one server process, with in-flight dedup by hash."""

    def __init__(self, max_jobs: int = 10_000) -> None:
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # content hash -> job id
        self._ids = itertools.count(1)
        self._max_jobs = max_jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def submit(self, spec: JobSpec) -> Tuple[Job, bool]:
        """Register a submission; returns ``(job, coalesced)``.

        ``coalesced`` is True when an in-flight job for the same content
        hash absorbed this submission instead of creating a new job.
        """
        content_hash = spec.content_hash()
        existing_id = self._inflight.get(content_hash)
        if existing_id is not None:
            job = self._jobs[existing_id]
            if not job.terminal:
                job.submissions += 1
                return job, True
            # Stale index entry (finish() should have dropped it).
            self._inflight.pop(content_hash, None)
        job = Job(
            id=f"job-{next(self._ids):06d}",
            spec=spec,
            content_hash=content_hash,
        )
        self._jobs[job.id] = job
        self._inflight[content_hash] = job.id
        self._evict_finished()
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    async def mark_running(self, job: Job) -> None:
        job.status = RUNNING
        job.started_s = time.time()
        await job.publish("started")

    async def finish(
        self,
        job: Job,
        status: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Move a job to a terminal state and release its dedup slot."""
        if status not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {status!r}")
        job.result = result
        job.error = error
        job.finished_s = time.time()
        job.status = status
        if self._inflight.get(job.content_hash) == job.id:
            del self._inflight[job.content_hash]
        await job.publish("finished", status=status)

    def _evict_finished(self) -> None:
        """Drop the oldest terminal jobs once the store exceeds its cap.

        In-flight jobs are never evicted — the cap only bounds how much
        history a long-running server retains for status polls.
        """
        excess = len(self._jobs) - self._max_jobs
        if excess <= 0:
            return
        finished = sorted(
            (job for job in self._jobs.values() if job.terminal),
            key=lambda job: job.finished_s or job.created_s,
        )
        for job in finished[:excess]:
            del self._jobs[job.id]
