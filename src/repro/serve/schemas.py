"""Request schemas of the serve API: validation, content hashing, errors.

Every response body the server emits carries a ``schema`` tag so clients
can detect drift:

* ``repro.serve.job/v1`` — job descriptions (submit responses, status
  polls, the job list).
* ``repro.serve.error/v1`` — every 4xx/5xx body.  Malformed bodies,
  unknown benchmarks, and lint-rejected pipelines map to *distinct*
  status/code pairs (the golden fixtures under ``tests/fixtures/serve/``
  pin the exact shapes):

  ==========================  ======  =======================
  condition                   status  ``code``
  ==========================  ======  =======================
  unparseable JSON body       400     ``bad-json``
  wrong shape / bad values    400     ``invalid-job``
  benchmark not registered    404     ``unknown-benchmark``
  benchmark not simulatable   422     ``not-simulatable``
  lint preflight errors       422     ``lint-rejected``
  unknown job id              404     ``unknown-job``
  unknown route               404     ``unknown-route``
  wrong method on a route     405     ``method-not-allowed``
  body too large              413     ``body-too-large``
  ==========================  ======  =======================

A validated job normalizes into a :class:`JobSpec` whose
:meth:`~JobSpec.content_hash` is the dedup key: the SHA-256 of the
canonical JSON of everything that determines the job's *result* —
mirroring :func:`repro.sim.resultcache.cache_key`, the ``engine`` and
``stage_memo`` knobs are excluded (they select bit-identical execution
strategies), so identical jobs coalesce regardless of the impl requested.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import Severity, lint_pipeline_memoized
from repro.pipeline.transforms import remove_copies
from repro.sim.engine import ENGINE_VERSION
from repro.workloads import registry

#: Schema tags of the serve wire format.
ERROR_SCHEMA = "repro.serve.error/v1"
JOB_SCHEMA = "repro.serve.job/v1"
HEALTH_SCHEMA = "repro.serve.health/v1"
CACHE_SCHEMA = "repro.serve.cache/v1"
METRICS_SCHEMA = "repro.serve.metrics/v1"

#: Job kinds the service accepts.
KIND_SIMULATE = "simulate"
KIND_SWEEP = "sweep"
KIND_ADVISE = "advise"
KINDS = (KIND_SIMULATE, KIND_SWEEP, KIND_ADVISE)

#: Sweep versions (mirrors repro.experiments.parallel).
VERSION_COPY = "copy"
VERSION_LIMITED = "limited-copy"
VERSIONS = (VERSION_COPY, VERSION_LIMITED)

#: Fields a job body may carry; anything else is rejected so typos fail
#: loudly instead of silently running a default sweep.
_ALLOWED_FIELDS = frozenset(
    {
        "kind",
        "benchmark",
        "benchmarks",
        "version",
        "scale",
        "seed",
        "engine",
        "stage_memo",
    }
)

_ENGINES = ("reference", "fast")
_STAGE_MEMO = ("auto", "on", "off")


def error_payload(
    code: str, message: str, detail: Optional[Any] = None
) -> Dict[str, Any]:
    """The stable error body every non-2xx response carries."""
    return {
        "schema": ERROR_SCHEMA,
        "code": code,
        "error": message,
        "detail": detail,
    }


class JobValidationError(Exception):
    """A rejected request, carrying its HTTP status and error body."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[Any] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = detail

    def payload(self) -> Dict[str, Any]:
        return error_payload(self.code, str(self), self.detail)


@dataclass(frozen=True)
class JobSpec:
    """A validated, normalized job: what the server will actually run.

    ``benchmarks`` holds full registry names, sorted and de-duplicated;
    ``versions`` is the subset of :data:`VERSIONS` the job covers (always
    both for sweep and advise jobs).
    """

    kind: str
    benchmarks: Tuple[str, ...]
    versions: Tuple[str, ...]
    scale: float
    seed: int
    engine: str = "fast"
    stage_memo: str = "auto"

    @property
    def runs(self) -> int:
        """How many (benchmark, version) simulations the job covers."""
        return len(self.benchmarks) * len(self.versions)

    def canonical(self) -> Dict[str, Any]:
        """The result-determining view: the content-hash input."""
        return {
            "schema": JOB_SCHEMA,
            "engine_version": ENGINE_VERSION,
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "versions": list(self.versions),
            "scale": self.scale,
            "seed": self.seed,
            # engine / stage_memo deliberately excluded: bit-identical
            # execution strategies must coalesce (see module docstring).
        }

    def content_hash(self) -> str:
        text = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "versions": list(self.versions),
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "stage_memo": self.stage_memo,
        }


def _invalid(message: str, detail: Optional[Any] = None) -> JobValidationError:
    return JobValidationError(400, "invalid-job", message, detail)


def _require_number(
    body: Dict[str, Any], field: str, default: float
) -> float:
    value = body.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _invalid(f"{field!r} must be a number, got {value!r}")
    return float(value)


def _require_choice(
    body: Dict[str, Any], field: str, choices: Tuple[str, ...], default: str
) -> str:
    value = body.get(field, default)
    if value not in choices:
        raise _invalid(
            f"{field!r} must be one of {', '.join(choices)}, got {value!r}"
        )
    return str(value)


def _resolve_benchmarks(body: Dict[str, Any], kind: str) -> Tuple[str, ...]:
    """Benchmark names a job covers, resolved against the registry."""
    if kind == KIND_SWEEP:
        if "benchmark" in body:
            raise _invalid(
                "sweep jobs take a 'benchmarks' list, not 'benchmark'"
            )
        names = body.get("benchmarks")
        if names is None:
            return tuple(
                sorted(s.full_name for s in registry.simulatable_specs())
            )
        if not isinstance(names, list) or not names:
            raise _invalid("'benchmarks' must be a non-empty list of names")
    else:
        if "benchmarks" in body:
            raise _invalid(
                f"{kind} jobs take a single 'benchmark', not 'benchmarks'"
            )
        name = body.get("benchmark")
        if name is None:
            raise _invalid(f"{kind} jobs need a 'benchmark' name")
        names = [name]
    resolved: List[str] = []
    for name in names:
        if not isinstance(name, str):
            raise _invalid(f"benchmark names must be strings, got {name!r}")
        try:
            spec = registry.get(name)
        except KeyError:
            raise JobValidationError(
                404,
                "unknown-benchmark",
                f"unknown benchmark {name!r}",
                {"benchmark": name},
            ) from None
        if not spec.simulatable:
            raise JobValidationError(
                422,
                "not-simulatable",
                f"{spec.full_name} has no pipeline model",
                {"benchmark": spec.full_name},
            )
        if spec.full_name not in resolved:
            resolved.append(spec.full_name)
    return tuple(sorted(resolved))


def _lint_preflight(spec_names: Tuple[str, ...], versions: Tuple[str, ...]) -> None:
    """Reject jobs whose pipelines carry error-level lint findings.

    Reuses the ``repro lint`` rule set through the process-wide
    content-hash memo, so repeated submissions of the same benchmarks
    lint each distinct pipeline once per server process.
    """
    findings: List[Dict[str, Any]] = []
    for name in spec_names:
        spec = registry.get(name)
        pipeline = spec.pipeline()
        for version in versions:
            shaped = pipeline
            if version == VERSION_LIMITED:
                limited = remove_copies(pipeline)
                shaped = limited.with_stages(
                    limited.stages, name=f"{pipeline.name} [limited-copy]"
                )
            report = lint_pipeline_memoized(shaped, spec)
            for diag in report.at_least(Severity.ERROR):
                findings.append(
                    {
                        "rule": diag.rule,
                        "severity": diag.severity.value,
                        "pipeline": diag.pipeline,
                        "stage": diag.stage,
                        "buffer": diag.buffer,
                        "message": diag.message,
                    }
                )
    if findings:
        findings.sort(key=lambda f: (f["pipeline"], f["rule"], f["message"]))
        raise JobValidationError(
            422,
            "lint-rejected",
            f"pipeline lint failed: {len(findings)} error-level finding(s)",
            {"findings": findings},
        )


def validate_job(
    body: Any, *, lint: bool = True, default_scale: float = 1.0
) -> JobSpec:
    """Validate and normalize one submitted job body.

    Raises :class:`JobValidationError` with the proper HTTP status and
    stable error code on any problem; returns the normalized
    :class:`JobSpec` otherwise.  ``lint`` runs the ``repro lint``
    preflight over every pipeline the job would simulate (registered
    benchmarks always pass — the registry is lint-clean by CI — but
    user-extended registries are not).
    """
    if not isinstance(body, dict):
        raise _invalid(
            f"job body must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(set(body) - _ALLOWED_FIELDS)
    if unknown:
        raise _invalid(
            f"unknown field(s): {', '.join(unknown)}",
            {"unknown_fields": unknown},
        )
    kind = body.get("kind")
    if kind not in KINDS:
        raise _invalid(
            f"'kind' must be one of {', '.join(KINDS)}, got {kind!r}"
        )

    benchmarks = _resolve_benchmarks(body, kind)

    if kind == KIND_SIMULATE:
        version = body.get("version", "both")
        if version == "both":
            versions: Tuple[str, ...] = VERSIONS
        elif version in VERSIONS:
            versions = (version,)
        else:
            raise _invalid(
                f"'version' must be copy, limited-copy, or both, "
                f"got {version!r}"
            )
    else:
        if "version" in body:
            raise _invalid(f"{kind} jobs always run both versions")
        versions = VERSIONS

    scale = _require_number(body, "scale", default_scale)
    if scale <= 0:
        raise _invalid(f"'scale' must be positive, got {scale}")
    seed = body.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise _invalid(f"'seed' must be an integer, got {seed!r}")
    engine = _require_choice(body, "engine", _ENGINES, "fast")
    stage_memo = _require_choice(body, "stage_memo", _STAGE_MEMO, "auto")

    if lint:
        _lint_preflight(benchmarks, versions)

    return JobSpec(
        kind=kind,
        benchmarks=benchmarks,
        versions=versions,
        scale=scale,
        seed=seed,
        engine=engine,
        stage_memo=stage_memo,
    )
