"""Sweep-as-a-service: the async HTTP/JSON job API behind ``repro serve``.

The package turns the sweep runner into a long-running service
(docs/SERVING.md):

* :mod:`repro.serve.schemas` — request validation and the stable error /
  job / metrics JSON shapes (``repro.serve.*/v1``).
* :mod:`repro.serve.jobs` — the in-memory job store with content-hash
  single-flight dedup: identical in-flight submissions coalesce into one
  computation.
* :mod:`repro.serve.app` — the asyncio HTTP server (stdlib only): submit,
  poll, stream progress (SSE), cache stats, health, graceful shutdown.
* :mod:`repro.serve.client` — an asyncio client plus the in-process
  :class:`~repro.serve.client.ServerThread` harness the tests and the
  load-test use.
* :mod:`repro.serve.loadtest` — the ``repro loadtest`` harness hammering
  a server with concurrent duplicate-and-distinct jobs and reporting
  dedup/latency numbers.
"""

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.client import ServeClient, ServeHttpError, ServerThread
from repro.serve.jobs import (
    DONE,
    FAILED,
    PARTIAL,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobStore,
)
from repro.serve.loadtest import LoadTestConfig, check_report, run_loadtest
from repro.serve.schemas import (
    ERROR_SCHEMA,
    JOB_SCHEMA,
    JobSpec,
    JobValidationError,
    error_payload,
    validate_job,
)

__all__ = [
    "DONE",
    "ERROR_SCHEMA",
    "FAILED",
    "JOB_SCHEMA",
    "Job",
    "JobSpec",
    "JobStore",
    "JobValidationError",
    "LoadTestConfig",
    "PARTIAL",
    "QUEUED",
    "RUNNING",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeHttpError",
    "ServerThread",
    "TERMINAL_STATES",
    "check_report",
    "error_payload",
    "run_loadtest",
    "validate_job",
]
