"""The ``repro lint --fix`` autofix engine.

Only *safe* fixes are applied: transforms that cannot change what any
surviving stage computes or observes.  Today that is

* **drop-copy** (RPL301): delete a copy whose written bytes nothing
  observes, splicing its dependents onto its dependencies;
* **fuse-copies** (RPL302): collapse a staging chain ``A -> B -> C`` into
  a single copy ``A -> C`` when the intermediate is observed by nothing
  but the second copy.

Fixes are applied one at a time to a fixpoint, re-planning after each
application (dropping one copy can make another fusible and vice versa).
After every application the engine re-lints the candidate pipeline and
**reverts** the fix if any new WARNING-or-worse finding appeared that the
original pipeline did not have — a differential guard that keeps ``--fix``
conservative even on pipelines the planner mis-models.  The engine is
therefore idempotent by construction: once no fix survives the guard, a
second run plans the same rejected fixes and rejects them again.

Opportunity findings (RPL303-305) are *not* auto-fixed: exploiting them
(chunking, migration, coordination) changes simulated timing, which
``--fix`` must never do.  Their hints name the manual transform instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Set, Tuple

from repro.analysis.dataflow.absint import DataflowAnalysis
from repro.analysis.dataflow.rules import (
    check_dead_copies,
    check_fusible_copies,
)
from repro.analysis.diagnostics import Severity
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import Stage
from repro.workloads.spec import BenchmarkSpec

#: Fixpoint iteration cap; each iteration applies at most one fix, and a
#: pipeline cannot yield more fixes than it has copy stages, so this only
#: guards against planner bugs.
MAX_FIX_ROUNDS = 256


@dataclass(frozen=True)
class Fix:
    """One planned autofix."""

    rule: str
    kind: str  # "drop-copy" | "fuse-copies"
    stages: Tuple[str, ...]
    description: str

    @property
    def sort_key(self) -> Tuple[str, Tuple[str, ...]]:
        return (self.rule, self.stages)


@dataclass(frozen=True)
class FixResult:
    """Outcome of :func:`apply_fixes`."""

    pipeline: Pipeline
    applied: Tuple[Fix, ...]
    skipped: Tuple[Fix, ...]

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def plan_fixes(pipeline: Pipeline) -> List[Fix]:
    """Plan safe fixes for the pipeline's fixable findings.

    Deterministic: findings are planned in diagnostic sort order.  The
    plan reflects the *current* pipeline only — applying one fix can
    create or invalidate others, which is why :func:`apply_fixes`
    re-plans after every application instead of batching.
    """
    analysis = DataflowAnalysis(pipeline)
    fixes: List[Fix] = []
    planned: Set[str] = set()  # stages already consumed by a planned fix
    findings = sorted(
        check_dead_copies(pipeline, analysis)
        + check_fusible_copies(pipeline, analysis),
        key=lambda d: d.sort_key,
    )
    for finding in findings:
        if finding.rule == "RPL301" and finding.stage is not None:
            if finding.stage in planned:
                continue
            planned.add(finding.stage)
            fixes.append(
                Fix(
                    rule="RPL301",
                    kind="drop-copy",
                    stages=(finding.stage,),
                    description=f"drop dead copy {finding.stage!r}",
                )
            )
        elif finding.rule == "RPL302":
            first, second = finding.provenance
            if first in planned or second in planned:
                continue
            planned.update((first, second))
            fixes.append(
                Fix(
                    rule="RPL302",
                    kind="fuse-copies",
                    stages=(first, second),
                    description=(
                        f"fuse copies {first!r} and {second!r} through "
                        f"buffer {finding.buffer!r}"
                    ),
                )
            )
    return fixes


def apply_fixes(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
) -> FixResult:
    """Apply safe fixes to a fixpoint, with a differential lint guard.

    Returns the fixed pipeline plus the fixes applied and the fixes
    planned but rejected by the guard.  Running ``apply_fixes`` on the
    returned pipeline is a no-op.
    """
    current = pipeline
    baseline = _warning_keys(current, spec)
    applied: List[Fix] = []
    rejected: List[Fix] = []
    rejected_keys: Set[Tuple[str, Tuple[str, ...]]] = set()
    for _round in range(MAX_FIX_ROUNDS):
        plan = [
            f for f in plan_fixes(current) if f.sort_key not in rejected_keys
        ]
        if not plan:
            break
        fix = plan[0]
        candidate = _apply_one(current, fix)
        if candidate is None or _warning_keys(candidate, spec) - baseline:
            rejected.append(fix)
            rejected_keys.add(fix.sort_key)
            continue
        applied.append(fix)
        current = candidate
    return FixResult(
        pipeline=current, applied=tuple(applied), skipped=tuple(rejected)
    )


def _warning_keys(
    pipeline: Pipeline, spec: Optional[BenchmarkSpec]
) -> Set[Tuple[str, str, str]]:
    """Anchors of WARNING-or-worse findings, for the differential guard."""
    from repro.analysis.linter import lint_pipeline  # deferred: cycle

    report = lint_pipeline(pipeline, spec)
    return {
        (d.rule, d.stage or "", d.buffer or "")
        for d in report.at_least(Severity.WARNING)
    }


def _apply_one(pipeline: Pipeline, fix: Fix) -> Optional[Pipeline]:
    """Apply a single fix; None when the pipeline no longer matches it."""
    try:
        if fix.kind == "drop-copy":
            return _drop_stage(pipeline, fix.stages[0])
        if fix.kind == "fuse-copies":
            return _fuse_copies(pipeline, fix.stages[0], fix.stages[1])
    except (KeyError, ValueError):
        return None
    raise ValueError(f"unknown fix kind {fix.kind!r}")


def _splice_deps(
    stage: Stage, removed: str, replacement: Tuple[str, ...]
) -> Stage:
    """Replace a dependence on ``removed`` with its own dependencies."""
    if removed not in stage.depends_on:
        return stage
    deps = [d for d in stage.depends_on if d != removed]
    deps.extend(d for d in replacement if d not in deps and d != stage.name)
    return replace(stage, depends_on=tuple(deps))


def _drop_stage(pipeline: Pipeline, name: str) -> Pipeline:
    by_name = {s.name: s for s in pipeline.stages}
    dropped = by_name[name]
    stages = tuple(
        _splice_deps(s, name, dropped.depends_on)
        for s in pipeline.stages
        if s.name != name
    )
    return _prune_buffers(pipeline.with_stages(stages))


def _fuse_copies(pipeline: Pipeline, first: str, second: str) -> Pipeline:
    by_name = {s.name: s for s in pipeline.stages}
    head, tail = by_name[first], by_name[second]
    if head.dst is None or head.src is None or tail.src != head.dst:
        raise ValueError("stages are not a copy chain")
    intermediate = head.dst
    reads = tuple(
        replace(a, buffer=head.src) if a.buffer == intermediate else a
        for a in tail.reads
    )
    src_buf = pipeline.buffers[head.src]
    dst_buf = pipeline.buffers[tail.dst] if tail.dst else None
    mirror = dst_buf is not None and (
        src_buf.mirror_of == dst_buf.name or dst_buf.mirror_of == src_buf.name
    )
    fused = replace(
        _splice_deps(tail, first, head.depends_on),
        src=head.src,
        reads=reads,
        mirror_copy=mirror,
    )
    stages = tuple(
        fused
        if s.name == second
        else _splice_deps(s, first, head.depends_on)
        for s in pipeline.stages
        if s.name != first
    )
    return _prune_buffers(pipeline.with_stages(stages))


def _prune_buffers(pipeline: Pipeline) -> Pipeline:
    """Drop allocations no surviving stage touches (RPL104 hygiene).

    Buffers that kept allocations mirror are retained so referential
    integrity holds even when the base allocation itself went quiet.
    """
    touched: Set[str] = set()
    for stage in pipeline.stages:
        touched.update(stage.buffers)
        touched.update(n for n in (stage.src, stage.dst) if n)
    keep = set(touched)
    for name, buffer in pipeline.buffers.items():
        if name in touched and buffer.mirror_of:
            keep.add(buffer.mirror_of)
    if keep >= set(pipeline.buffers):
        return pipeline
    kept = {n: b for n, b in pipeline.buffers.items() if n in keep}
    return pipeline.with_stages(pipeline.stages, buffers=kept)


def fix_summary(result: FixResult) -> str:
    """One-line human summary for the CLI."""
    if not result.applied and not result.skipped:
        return "no fixable findings"
    parts = [f"applied {len(result.applied)} fix(es)"]
    for fix in result.applied:
        parts.append(f"  {fix.rule}: {fix.description}")
    if result.skipped:
        parts.append(
            f"skipped {len(result.skipped)} fix(es) rejected by the "
            f"differential lint guard"
        )
        for fix in result.skipped:
            parts.append(f"  {fix.rule}: {fix.description}")
    return "\n".join(parts)


__all__ = [
    "Fix",
    "FixResult",
    "apply_fixes",
    "fix_summary",
    "plan_fixes",
]
