"""The region-based abstract interpreter over pipeline stage DAGs.

:class:`DataflowAnalysis` computes, in one forward pass over the
topological order (the fixpoint of a DAG dataflow problem — no cycles, so
one pass converges; widening bounds the lattice state):

* **Reaching definitions** with interval precision: at each stage, for
  each buffer, the set of *(writer, region)* facts that may be visible.
  A write definitely kills the overlapped part of earlier defs along
  paths through the writing stage; joins at merge points keep both sides
  (may-reach semantics).  Chunk-lane widening collapses per-writer
  regions past :data:`~repro.analysis.dataflow.lattice.WIDEN_LIMIT`
  intervals and groups chunk-product writers by their logical (parent)
  stage when the writer set itself grows too wide.
* **Observable liveness**: which later stages can observe each written
  region, accounting for definite overwrites in between (a write by
  ``K`` with ``W ≺ K ≺ R`` hides ``W``'s bytes from ``R`` wherever the
  regions overlap, because the DAG orders ``K``'s write between them on
  every schedule).  Declared outputs (``metadata["outputs"]``) keep a
  write's un-overwritten tail live forever.  Reads *concurrent* with the
  write are conservatively treated as observers — the hazard rules own
  that race, dead-code facts must not.
* **Copy-chain provenance**: for every copy stage, the chain of copies
  that produced its source bytes, walked through single-writer reaching
  definitions.
* **Redundant serialization edges**: ``depends_on`` edges that carry no
  dataflow and whose removal makes previously ordered stage pairs
  concurrent without introducing any overlapping-access conflict.
* **Stage footprints**: approximate unique-byte traffic per stage
  (region span x buffer size x touch fraction x passes) and the derived
  flop/byte ratio that flags migration candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.happens import HappensBefore
from repro.analysis.dataflow.lattice import (
    WIDEN_LIMIT,
    IntervalSet,
)
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import BufferAccess, Stage, StageKind

#: Sentinel writer name used when widening collapses too many distinct
#: writers of one buffer into a single may-reach fact.  Provenance queries
#: treat it as "unknown origin" and stop walking.
MANY_WRITERS = "<widened>"


@dataclass(frozen=True)
class RegionWrite:
    """One may-reach definition: ``writer`` wrote ``region`` of ``buffer``."""

    writer: str
    buffer: str
    region: IntervalSet


@dataclass(frozen=True)
class StageFootprint:
    """Approximate unique-byte traffic of one stage."""

    stage: str
    read_bytes: float
    write_bytes: float
    flops: float

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    @property
    def flop_per_byte(self) -> float:
        """Arithmetic intensity; ``inf`` for stages that touch no bytes."""
        if self.total_bytes <= 0.0:
            return float("inf")
        return self.flops / self.total_bytes


@dataclass(frozen=True)
class SerializationEdge:
    """A ``depends_on`` edge that orders stages without protecting data.

    The direct pair ``(src, dst)`` touches no common bytes, so the edge
    exists only to serialize — the bulk-synchronous idiom the paper's
    Section V-A calls out as the obstacle to copy/compute overlap.

    Attributes:
        src / dst: the edge ``src -> dst`` (``dst`` depends on ``src``).
        freed_pairs: stage pairs that become concurrent when the edge is
            dropped (always includes ``(src, dst)``).
        removal_safe: True when *every* freed pair is conflict-free, i.e.
            the edge can simply be deleted; False when some downstream
            pair relied on the edge's transitivity for protection, so
            exploiting the overlap needs re-wiring (e.g. chunking with
            per-chunk dependences) rather than plain removal.
        kinds: stage kinds of ``src`` and ``dst`` — a cross-kind pair
            means the edge blocks copy/compute (or CPU/GPU) overlap.
    """

    src: str
    dst: str
    freed_pairs: Tuple[Tuple[str, str], ...]
    removal_safe: bool
    kinds: FrozenSet[StageKind]

    @property
    def crosses_components(self) -> bool:
        return len(self.kinds) > 1


def _access_set(access: BufferAccess) -> IntervalSet:
    return IntervalSet.from_region(access.region)


def _conflicting(a: Stage, b: Stage) -> bool:
    """Whether two stages have any overlapping access with a write."""
    for first, second in ((a, b), (b, a)):
        for w in first.writes:
            targets = second.reads + second.writes
            for acc in targets:
                if acc.buffer == w.buffer and _access_set(w).overlaps(
                    _access_set(acc)
                ):
                    return True
    return False


class DataflowAnalysis:
    """Region-lattice abstract interpretation of one pipeline."""

    def __init__(self, pipeline: Pipeline) -> None:
        self.pipeline = pipeline
        self.hb = HappensBefore(pipeline)
        self._order = pipeline.topological_order()
        self._by_name: Dict[str, Stage] = {s.name: s for s in pipeline.stages}
        self._outputs: Set[str] = set(
            pipeline.metadata.get("outputs", ()) or ()  # type: ignore[call-overload]
        )
        #: defs_in[stage][buffer] -> {writer: region} may-reach at entry.
        self._defs_in: Dict[str, Dict[str, Dict[str, IntervalSet]]] = {}
        self._run_reaching()

    # -- the forward fixpoint -------------------------------------------------

    def _join(
        self,
        states: List[Dict[str, Dict[str, IntervalSet]]],
    ) -> Dict[str, Dict[str, IntervalSet]]:
        merged: Dict[str, Dict[str, IntervalSet]] = {}
        for state in states:
            for buffer, writers in state.items():
                into = merged.setdefault(buffer, {})
                for writer, region in writers.items():
                    present = into.get(writer)
                    into[writer] = (
                        region if present is None else present.union(region)
                    )
        for buffer, writers in merged.items():
            for writer in list(writers):
                writers[writer] = writers[writer].widen()
            if len(writers) > WIDEN_LIMIT:
                merged[buffer] = self._widen_writers(writers)
        return merged

    def _widen_writers(
        self, writers: Dict[str, IntervalSet]
    ) -> Dict[str, IntervalSet]:
        """Chunk-lane widening of the writer set itself.

        First group chunk-product writers under their logical (parent)
        stage; if the set is still too wide, collapse everything into the
        :data:`MANY_WRITERS` sentinel (sound: the union region is kept).
        """
        grouped: Dict[str, IntervalSet] = {}
        for writer, region in writers.items():
            stage = self._by_name.get(writer)
            key = stage.logical_name if stage is not None else writer
            present = grouped.get(key)
            grouped[key] = region if present is None else present.union(region)
        if len(grouped) > WIDEN_LIMIT:
            union = IntervalSet()
            for region in grouped.values():
                union = union.union(region)
            return {MANY_WRITERS: union.hull()}
        return {key: region.widen() for key, region in grouped.items()}

    def _run_reaching(self) -> None:
        out: Dict[str, Dict[str, Dict[str, IntervalSet]]] = {}
        for stage in self._order:
            state = self._join([out[dep] for dep in stage.depends_on])
            self._defs_in[stage.name] = {
                buffer: dict(writers) for buffer, writers in state.items()
            }
            for access in stage.writes:
                written = _access_set(access)
                writers = state.setdefault(access.buffer, {})
                for writer in list(writers):
                    if writer == stage.name:
                        continue
                    remaining = writers[writer].subtract(written)
                    if remaining.is_empty:
                        del writers[writer]
                    else:
                        writers[writer] = remaining
                mine = writers.get(stage.name)
                writers[stage.name] = (
                    written if mine is None else mine.union(written)
                )
            out[stage.name] = state

    # -- queries --------------------------------------------------------------

    def defs_at(self, stage: str, buffer: str) -> Tuple[RegionWrite, ...]:
        """May-reach definitions of ``buffer`` visible at ``stage`` entry."""
        writers = self._defs_in.get(stage, {}).get(buffer, {})
        return tuple(
            RegionWrite(writer=w, buffer=buffer, region=r)
            for w, r in sorted(writers.items())
        )

    def sole_writer(self, stage: str, buffer: str, region: IntervalSet) -> Optional[str]:
        """The unique stage whose def covers ``region`` at ``stage``, if any."""
        covering = [
            d.writer
            for d in self.defs_at(stage, buffer)
            if d.region.covers(region)
        ]
        if len(covering) == 1 and covering[0] != MANY_WRITERS:
            return covering[0]
        return None

    def read_set(self, stage: Stage, buffer: str) -> IntervalSet:
        """Union of regions ``stage`` reads from ``buffer``."""
        out = IntervalSet()
        for access in stage.reads:
            if access.buffer == buffer:
                out = out.union(_access_set(access))
        return out

    def write_set(self, stage: Stage, buffer: str) -> IntervalSet:
        """Union of regions ``stage`` writes to ``buffer``."""
        out = IntervalSet()
        for access in stage.writes:
            if access.buffer == buffer:
                out = out.union(_access_set(access))
        return out

    def communicated_bytes(
        self, producer: Stage, consumer: Stage, buffer: str
    ) -> float:
        """Bytes the consumer reads out of the producer's writes to
        ``buffer`` — the hand-off volume of one producer-consumer edge.

        Weighted by the consumer's touch fractions: a sparse reader pulls
        only that share of the overlapped region through the caches.
        """
        size = self.pipeline.buffers[buffer].size_bytes
        written = self.write_set(producer, buffer)
        total = 0.0
        for access in consumer.reads:
            if access.buffer != buffer:
                continue
            part = written.intersect(_access_set(access))
            total += part.measure() * size * access.fraction
        return total

    # -- observable liveness --------------------------------------------------

    def observers_of_write(
        self, writer: str, access: BufferAccess
    ) -> List[Tuple[str, IntervalSet]]:
        """Stages (or the ``"<output>"`` sink) observing parts of a write.

        Each entry is ``(observer, part)``: the sub-region of ``access``
        that reaches ``observer`` un-overwritten.  An empty list means the
        write is dead — nothing the pipeline's outside can see depends on
        those bytes.
        """
        buffer = access.buffer
        written = _access_set(access)
        observers: List[Tuple[str, IntervalSet]] = []
        for reader in self.pipeline.stages:
            if reader.name == writer:
                continue
            read_parts = [
                _access_set(a) for a in reader.reads if a.buffer == buffer
            ]
            if not read_parts:
                continue
            read_set = IntervalSet()
            for part in read_parts:
                read_set = read_set.union(part)
            if writer in self.hb.ancestors(reader.name):
                visible = written.subtract(
                    self._kills_between(writer, reader.name, buffer)
                )
            elif self.hb.concurrent(writer, reader.name):
                # A racy read may still observe the bytes; the hazard
                # rules flag the race, liveness stays conservative.
                visible = written
            else:
                continue  # reader precedes writer
            part = visible.intersect(read_set)
            if not part.is_empty:
                observers.append((reader.name, part))
        if buffer in self._outputs:
            final = written.subtract(self._kills_between(writer, None, buffer))
            if not final.is_empty:
                observers.append(("<output>", final))
        return observers

    def _kills_between(
        self, writer: str, reader: Optional[str], buffer: str
    ) -> IntervalSet:
        """Union of regions definitely overwritten after ``writer`` and
        (when given) before ``reader``."""
        killed = IntervalSet()
        for stage in self.pipeline.stages:
            if stage.name in (writer, reader):
                continue
            if writer not in self.hb.ancestors(stage.name):
                continue
            if reader is not None and stage.name not in self.hb.ancestors(reader):
                continue
            for access in stage.writes:
                if access.buffer == buffer:
                    killed = killed.union(_access_set(access))
        return killed.widen()

    def dead_region(self, writer: str, access: BufferAccess) -> IntervalSet:
        """The sub-region of a write no observer can see."""
        written = _access_set(access)
        live = IntervalSet()
        for _observer, part in self.observers_of_write(writer, access):
            live = live.union(part)
        return written.subtract(live)

    # -- copy provenance ------------------------------------------------------

    def copy_chain(self, copy_name: str) -> Tuple[str, ...]:
        """The chain of copy stages feeding ``copy_name``, origin first.

        Walks single-writer reaching definitions backwards: when the bytes
        a copy reads were produced entirely by one earlier copy, the chain
        extends through it.  Stops at non-copy producers, multi-writer
        regions, or widened (unknown) provenance.
        """
        chain: List[str] = [copy_name]
        seen = {copy_name}
        current = self._by_name[copy_name]
        while True:
            if current.kind is not StageKind.COPY or current.src is None:
                break
            read_region = IntervalSet()
            for access in current.reads:
                if access.buffer == current.src:
                    read_region = read_region.union(_access_set(access))
            producer = self.sole_writer(current.name, current.src, read_region)
            if producer is None or producer in seen:
                break
            stage = self._by_name.get(producer)
            if stage is None or stage.kind is not StageKind.COPY:
                break
            chain.append(producer)
            seen.add(producer)
            current = stage
        chain.reverse()
        return tuple(chain)

    # -- redundant serialization edges ---------------------------------------

    def serialization_edges(self) -> List[SerializationEdge]:
        """Edges that serialize stages without any dataflow justification.

        An edge qualifies when its endpoints touch no common bytes and it
        is not transitively covered by another path (a covered edge frees
        no concurrency — it is plain redundancy, not serialization).
        """
        edges: List[SerializationEdge] = []
        for stage in self._order:
            for dep in stage.depends_on:
                src = self._by_name[dep]
                if _conflicting(src, stage):
                    continue
                freed = self._freed_pairs(dep, stage.name)
                if freed is None:
                    continue  # transitively covered
                safe = all(
                    not _conflicting(self._by_name[a], self._by_name[b])
                    for a, b in freed
                )
                edges.append(
                    SerializationEdge(
                        src=dep,
                        dst=stage.name,
                        freed_pairs=tuple(freed),
                        removal_safe=safe,
                        kinds=frozenset((src.kind, stage.kind)),
                    )
                )
        return edges

    def _freed_pairs(
        self, src: str, dst: str
    ) -> Optional[List[Tuple[str, str]]]:
        """Pairs un-ordered by dropping ``src -> dst``.

        Returns None when the edge is transitively covered (every pair
        stays ordered through another path) — dropping such an edge frees
        no concurrency.
        """
        ancestors = _closure_without_edge(self.pipeline, src, dst)
        if src in ancestors[dst]:
            return None  # transitively covered; no concurrency freed
        freed: List[Tuple[str, str]] = []
        for a in self._order:
            for b in self._order:
                if a.name >= b.name:
                    continue
                was_ordered = self.hb.ordered(a.name, b.name)
                now_ordered = (
                    a.name in ancestors[b.name] or b.name in ancestors[a.name]
                )
                if was_ordered and not now_ordered:
                    freed.append((a.name, b.name))
        return freed

    # -- footprints -----------------------------------------------------------

    def footprint(self, stage: Stage) -> StageFootprint:
        """Approximate unique-byte traffic and intensity of one stage."""
        sizes: Mapping[str, int] = {
            name: buf.size_bytes for name, buf in self.pipeline.buffers.items()
        }

        def traffic(accesses: Tuple[BufferAccess, ...]) -> float:
            total = 0.0
            for access in accesses:
                total += (
                    access.region.span
                    * sizes[access.buffer]
                    * access.fraction
                    * access.passes
                )
            return total

        return StageFootprint(
            stage=stage.name,
            read_bytes=traffic(stage.reads),
            write_bytes=traffic(stage.writes),
            flops=stage.flops,
        )

    def footprints(self) -> Dict[str, StageFootprint]:
        return {s.name: self.footprint(s) for s in self.pipeline.stages}


def _closure_without_edge(
    pipeline: Pipeline, src: str, dst: str
) -> Dict[str, Set[str]]:
    """Ancestor closure with the direct edge ``src -> dst`` removed."""
    ancestors: Dict[str, Set[str]] = {}
    for stage in pipeline.topological_order():
        deps = [
            d
            for d in stage.depends_on
            if not (stage.name == dst and d == src)
        ]
        closure: Set[str] = set(deps)
        for dep in deps:
            closure.update(ancestors[dep])
        ancestors[stage.name] = closure
    return ancestors
