"""Region-based abstract interpretation over pipeline stage graphs.

``repro.analysis.dataflow`` is the static-analysis core behind the RPL3xx
optimization-opportunity rules, the ``repro lint --fix`` autofix engine,
and the simulation-free static advisor (``repro advise --static``).  It
abstracts every buffer as a set of fractional intervals (a region lattice
with chunk-lane widening), runs a reaching-definitions abstract
interpreter over the stage DAG, and derives from the fixpoint:

* which written regions are *dead* (overwritten or never read),
* copy-chain provenance (which chain of copies produced a region),
* which ``depends_on`` edges are pure serialization (no dataflow, no
  hazard protection) and therefore block copy/compute overlap,
* per-stage byte footprints and flop/byte ratios.

See docs/LINTING.md for the abstract-interpretation model and its
soundness caveats.
"""

from repro.analysis.dataflow.absint import (
    DataflowAnalysis,
    RegionWrite,
    SerializationEdge,
    StageFootprint,
)
from repro.analysis.dataflow.advisor import (
    StaticAdvice,
    Verdict,
    dynamic_verdict,
    render_static_table,
    static_advice,
    static_verdict,
)
from repro.analysis.dataflow.fixes import (
    Fix,
    FixResult,
    apply_fixes,
    plan_fixes,
)
from repro.analysis.dataflow.lattice import (
    EMPTY_SET,
    FULL_SET,
    IntervalSet,
    WIDEN_LIMIT,
)
from repro.analysis.dataflow.rules import check_dataflow_family

__all__ = [
    "DataflowAnalysis",
    "EMPTY_SET",
    "FULL_SET",
    "Fix",
    "FixResult",
    "IntervalSet",
    "RegionWrite",
    "SerializationEdge",
    "StageFootprint",
    "StaticAdvice",
    "Verdict",
    "WIDEN_LIMIT",
    "apply_fixes",
    "check_dataflow_family",
    "dynamic_verdict",
    "plan_fixes",
    "render_static_table",
    "static_advice",
    "static_verdict",
]
