"""The region lattice: canonical sets of fractional buffer intervals.

A buffer region is abstracted as a finite union of half-open fractional
intervals ``[start, end) ⊆ [0, 1)``.  :class:`IntervalSet` keeps that
union in canonical form (sorted, disjoint, merged at touching endpoints),
which makes equality a structural comparison and the lattice operations
(union = join, intersection = meet, subtraction) straightforward sweeps.

The lattice has unbounded chains — a chunking transform splitting a stage
into *n* lanes produces *n* disjoint intervals, and nothing bounds *n* —
so the abstract interpreter widens: once a set holds more than
:data:`WIDEN_LIMIT` intervals it is collapsed to its convex hull
(*chunk-lane widening*).  The hull is a sound over-approximation: every
byte the precise set covers is covered by the hull, so dead-write and
disjointness facts derived from the widened set only lose precision,
never soundness (liveness may be over-reported, never under-reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.pipeline.stage import Region

#: Maximum number of disjoint intervals an :class:`IntervalSet` may hold
#: before widening collapses it to its convex hull.  16 comfortably covers
#: the chunk counts the transforms use (4-8 lanes) while bounding the
#: fixpoint state on adversarial (Hypothesis-generated) pipelines.
WIDEN_LIMIT = 16

_EPS = 1e-12


@dataclass(frozen=True)
class IntervalSet:
    """A canonical union of disjoint, sorted, half-open intervals."""

    intervals: Tuple[Tuple[float, float], ...] = ()

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[float, float]]) -> "IntervalSet":
        """Canonicalize arbitrary (possibly overlapping) pairs."""
        cleaned = sorted((lo, hi) for lo, hi in pairs if hi - lo > _EPS)
        merged: List[Tuple[float, float]] = []
        for lo, hi in cleaned:
            if merged and lo <= merged[-1][1] + _EPS:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return IntervalSet(tuple(merged))

    @staticmethod
    def from_region(region: Region) -> "IntervalSet":
        return IntervalSet(((region.start, region.end),))

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    def measure(self) -> float:
        """Total covered fraction of the buffer."""
        return sum(hi - lo for lo, hi in self.intervals)

    def overlaps(self, other: "IntervalSet") -> bool:
        return not self.intersect(other).is_empty

    def covers(self, other: "IntervalSet") -> bool:
        """Whether every byte of ``other`` lies inside this set."""
        return other.subtract(self).is_empty

    # -- lattice operations --------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet.from_pairs(self.intervals + other.intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Tuple[float, float]] = []
        for a_lo, a_hi in self.intervals:
            for b_lo, b_hi in other.intervals:
                lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
                if hi - lo > _EPS:
                    out.append((lo, hi))
        return IntervalSet.from_pairs(out)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        remaining = list(self.intervals)
        for b_lo, b_hi in other.intervals:
            next_remaining: List[Tuple[float, float]] = []
            for lo, hi in remaining:
                if b_hi <= lo + _EPS or b_lo >= hi - _EPS:
                    next_remaining.append((lo, hi))
                    continue
                if b_lo > lo + _EPS:
                    next_remaining.append((lo, b_lo))
                if b_hi < hi - _EPS:
                    next_remaining.append((b_hi, hi))
            remaining = next_remaining
        return IntervalSet.from_pairs(remaining)

    def hull(self) -> "IntervalSet":
        """The convex hull — the widening target."""
        if not self.intervals:
            return self
        return IntervalSet(((self.intervals[0][0], self.intervals[-1][1]),))

    def widen(self, limit: int = WIDEN_LIMIT) -> "IntervalSet":
        """Chunk-lane widening: collapse to the hull past ``limit`` pieces."""
        if len(self.intervals) <= limit:
            return self
        return self.hull()


EMPTY_SET = IntervalSet(())
FULL_SET = IntervalSet(((0.0, 1.0),))
