"""The simulation-free static advisor behind ``repro advise --static``.

Answers the paper's three optimization questions — copy/compute overlap
(Section V-A), computation migration (V-B), cache coordination (V-C) —
from pipeline *structure* alone: a roofline estimate of per-component
busy times feeds the same Eq. 1 / Eqs. 2-4 analytical models the
simulator-derived advisor uses, and the dataflow engine's footprints
stand in for measured traffic.

Verdicts are about **applicability** (does the optimization have anything
to bite on?), not profitability — the simulator-derived advisor still
owns "how much is it worth".  :func:`static_verdict` and
:func:`dynamic_verdict` implement the same three predicates from the two
information sources, and the differential registry test asserts they
agree on every benchmark:

* **overlap** — Eq. 1's overlapped run time undercuts the serial run
  time by a calibrated margin.  The dynamic side strips page-fault
  service out of the run time *and* the busy times first (faults are
  billed both inside the faulting kernel and as CPU service time, and
  overlap can hide neither) and tests against :data:`MIN_OVERLAP_GAIN`;
  the static side tests against :data:`STATIC_MIN_OVERLAP_GAIN`, a hair
  higher because the cache-blind roofline systematically overstates
  CPU-side time (see the constant's note).
* **migration** — the CPU performs computation beyond launch overhead
  (statically: any CPU stage; dynamically: any stage record executed on
  the CPU component — busy time alone would count launch slivers and
  fault service, which are not migratable computation).
* **coordination** — the working set shared by *adjacent* logical stages
  outgrows the on-chip caches, so the hand-off spills to DRAM
  (statically: shared bytes vs. Table I capacities; dynamically: the
  Fig. 9 spill share — the distance-1 classes, matching the same
  adjacency the static measure uses).

Scale invariance makes the comparison fair: ``SimOptions.scale`` shrinks
footprints and caches together, so the paper-scale ratios the static side
computes are the ratios the scaled simulation experiences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.analysis.dataflow.absint import DataflowAnalysis, _access_set
from repro.analysis.dataflow.lattice import IntervalSet
from repro.config.system import SystemConfig, heterogeneous_processor
from repro.core.overlap import ComponentTimes, component_overlap_runtime
from repro.core.migrate import migrated_compute_runtime
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import Stage, StageKind
from repro.pipeline.transforms import remove_copies
from repro.workloads.spec import BenchmarkSpec

if TYPE_CHECKING:  # deferred at runtime: experiments imports the linter
    from repro.experiments.runner import SweepRunner

#: Minimum Eq. 1 gain (fraction of run time) before overlap "applies" on
#: the dynamic side.  Matches the simulator-derived advisor's MIN_GAIN so
#: both answer the same question.
MIN_OVERLAP_GAIN = 0.02

#: The static side's overlap threshold.  The roofline model has no cache
#: hierarchy, so it charges every CPU stage DRAM bandwidth and overstates
#: CPU-side (hideable) time by ~15-25% on the graph suites; the
#: calibrated registry margin is (0.0222, 0.0229] — every benchmark the
#: simulator says clears 2% statically scores above 0.0229, every one it
#: says doesn't scores below 0.0222.  The differential registry test
#: pins this.
STATIC_MIN_OVERLAP_GAIN = 0.0225

#: CPU computation time beyond launch overhead before migration
#: "applies".  Deliberately a hair above zero: applicability asks whether
#: there is any CPU computation to migrate at all.
MIGRATION_FLOOR_S = 1e-9

#: Fig. 9 spill share (the distance-1 producer-consumer classes) before
#: coordination "applies" on the dynamic side.  The registry separates
#: hard: benchmarks with no adjacent-stage hand-off spill exactly 0% of
#: accesses, everything else spills >= 5.4%.
COORDINATION_SPILL_FLOOR = 0.02

#: Static side of the same predicate: the largest working set shared by
#: two adjacent logical stages, as a multiple of the on-chip (CPU L2s +
#: GPU L2) capacity.  1.0 is the semantic boundary — a hand-off larger
#: than the caches cannot stay on-chip — and the registry separates at
#: (0.002, 2.0], so the semantic value needs no tuning.
COORDINATION_REUSE_RATIO = 1.0


@dataclass(frozen=True)
class Verdict:
    """Applicability of the paper's three optimizations to one benchmark."""

    overlap: bool
    migration: bool
    coordination: bool

    def agrees(self, other: "Verdict") -> bool:
        return self == other

    def render(self) -> str:
        def mark(flag: bool) -> str:
            return "yes" if flag else "no"

        return (
            f"overlap={mark(self.overlap)} "
            f"migration={mark(self.migration)} "
            f"coordination={mark(self.coordination)}"
        )


@dataclass(frozen=True)
class StaticAdvice:
    """One benchmark's static verdicts plus the numbers behind them."""

    benchmark: str
    verdict: Verdict
    overlap_gain: float
    migration_gain: float
    reuse_ratio: float
    rationales: Tuple[str, ...]

    def render(self) -> str:
        lines = [f"static advisor: {self.benchmark}  ({self.verdict.render()})"]
        lines.extend(f"  {r}" for r in self.rationales)
        return "\n".join(lines)


# -- static roofline model ----------------------------------------------------


def _launch_count(pipeline: Pipeline) -> int:
    """Host-side launches: every kernel and copy not launched on-device."""
    return sum(
        1
        for s in pipeline.stages
        if s.kind is not StageKind.CPU and not s.device_launched
    )


def _stage_seconds(
    stage: Stage, analysis: DataflowAnalysis, system: SystemConfig
) -> float:
    """Roofline service time: max of compute time and bandwidth time.

    Mirrors the simulator's stage-duration shape (compute overlapped with
    streaming traffic) but prices *all* touched bytes at DRAM bandwidth —
    no cache model — and drops the latency and fault terms.  Good enough
    for the share-of-run-time ratios the verdicts compare.
    """
    footprint = analysis.footprint(stage)
    if stage.kind is StageKind.CPU:
        rate = system.cpu.peak_flops * stage.occupancy * stage.compute_efficiency
        bandwidth = system.cpu_memory.achievable_bandwidth
    else:
        rate = system.gpu.peak_flops * stage.occupancy * stage.compute_efficiency
        bandwidth = system.gpu_memory.achievable_bandwidth
    compute_s = stage.flops / rate if stage.flops and rate > 0 else 0.0
    memory_s = footprint.total_bytes / bandwidth
    return max(compute_s, memory_s)


def _copy_seconds(
    stage: Stage, analysis: DataflowAnalysis, system: SystemConfig
) -> float:
    footprint = analysis.footprint(stage)
    if system.pcie is not None:
        bandwidth = system.pcie.achievable_bandwidth
        launch = system.pcie.copy_launch_latency_s
    else:
        # A shared-memory copy streams through DRAM twice (read + write).
        bandwidth = system.gpu_memory.achievable_bandwidth / 2.0
        launch = 0.0
    return footprint.write_bytes / bandwidth + launch


def static_component_times(
    pipeline: Pipeline, system: SystemConfig
) -> ComponentTimes:
    """Estimate the Eq. 1 component times without simulating.

    Assumes the bulk-synchronous serial schedule the registry pipelines
    use: the run time is the sum of every stage's service time plus the
    serial launch overhead.
    """
    analysis = DataflowAnalysis(pipeline)
    cpu_s = 0.0
    gpu_s = 0.0
    copy_s = 0.0
    for stage in pipeline.stages:
        if stage.kind is StageKind.COPY:
            copy_s += _copy_seconds(stage, analysis, system)
        elif stage.kind is StageKind.CPU:
            cpu_s += _stage_seconds(stage, analysis, system)
        else:
            gpu_s += _stage_seconds(stage, analysis, system)
    cserial_s = _launch_count(pipeline) * system.kernel_launch_latency_s
    return ComponentTimes(
        cpu_s=cpu_s + cserial_s,
        copy_s=copy_s,
        gpu_s=gpu_s,
        cserial_s=cserial_s,
        roi_s=cpu_s + cserial_s + copy_s + gpu_s,
    )


def _total_traffic_bytes(pipeline: Pipeline) -> float:
    analysis = DataflowAnalysis(pipeline)
    return sum(f.total_bytes for f in analysis.footprints().values())


def _max_reuse_ratio(pipeline: Pipeline, system: SystemConfig) -> float:
    """Largest adjacent-stage shared working set vs. on-chip capacity.

    Mirrors the Fig. 9 classifier's adjacency: accesses to a block touched
    by the *previous* logical stage are spills, so the static question is
    whether the bytes two consecutive logical stages both touch can stay
    resident across the hand-off.  Chunk lanes share a logical stage, and
    long-range reuse (distance >= 2) is deliberately excluded — the
    classifier calls that REQUIRED, and no coordination scheme keeps it
    on-chip.
    """
    capacity = system.cpu.total_l2_bytes + system.gpu.l2.capacity_bytes
    groups: List[dict] = []
    index: dict = {}
    for stage in pipeline.topological_order():
        logical = stage.logical_name
        if logical not in index:
            index[logical] = len(groups)
            groups.append({})
        touched = groups[index[logical]]
        for access in tuple(stage.reads) + tuple(stage.writes):
            region = _access_set(access)
            prev: Optional[IntervalSet] = touched.get(access.buffer)
            touched[access.buffer] = (
                region if prev is None else prev.union(region)
            )
    worst = 0.0
    for earlier, later in zip(groups, groups[1:]):
        shared = 0.0
        for buffer, region in earlier.items():
            other = later.get(buffer)
            if other is not None:
                shared += (
                    region.intersect(other).measure()
                    * pipeline.buffers[buffer].size_bytes
                )
        worst = max(worst, shared / capacity)
    return worst


# -- verdicts -----------------------------------------------------------------


def static_verdict(
    spec: BenchmarkSpec, system: Optional[SystemConfig] = None
) -> Verdict:
    """Applicability verdicts from pipeline structure alone."""
    return static_advice(spec, system).verdict


def static_advice(
    spec: BenchmarkSpec, system: Optional[SystemConfig] = None
) -> StaticAdvice:
    """Full static analysis of one benchmark (no simulation).

    Verdicts are computed on the limited-copy form against the
    heterogeneous processor — the form and machine the simulator-derived
    advisor evaluates.
    """
    config = system if system is not None else heterogeneous_processor()
    limited = remove_copies(spec.pipeline())
    times = static_component_times(limited, config)
    estimate = component_overlap_runtime(times)
    overlap_gain = (
        1.0 - estimate.runtime_s / times.roi_s if times.roi_s > 0 else 0.0
    )
    migrate = migrated_compute_runtime(
        times, config, _total_traffic_bytes(limited)
    )
    migration_gain = (
        1.0 - migrate.runtime_s / times.roi_s if times.roi_s > 0 else 0.0
    )
    reuse_ratio = _max_reuse_ratio(limited, config)
    verdict = Verdict(
        overlap=overlap_gain >= STATIC_MIN_OVERLAP_GAIN,
        migration=(times.cpu_s - times.cserial_s) > MIGRATION_FLOOR_S,
        coordination=reuse_ratio >= COORDINATION_REUSE_RATIO,
    )
    rationales = (
        f"Eq. 1 static bound recovers {overlap_gain:.0%} of the serial "
        f"run ({estimate.bottleneck.value} is the bottleneck)",
        f"CPU computes {max(0.0, times.cpu_s - times.cserial_s):.2e}s "
        f"beyond launch overhead "
        f"(Eqs. 2-4 static gain {migration_gain:+.0%})",
        f"largest producer-consumer hand-off is {reuse_ratio:.2f}x the "
        f"on-chip cache capacity",
    )
    return StaticAdvice(
        benchmark=spec.full_name,
        verdict=verdict,
        overlap_gain=overlap_gain,
        migration_gain=migration_gain,
        reuse_ratio=reuse_ratio,
        rationales=rationales,
    )


def dynamic_verdict(
    spec: BenchmarkSpec, runner: Optional["SweepRunner"] = None
) -> Verdict:
    """The same three predicates, answered from simulation results.

    Page-fault service is stripped from the run time *and* the component
    busy times before applying Eq. 1: the engine bills a fault both
    inside the faulting kernel's duration (GPU busy) and as CPU service
    intervals, and overlap can hide neither, so leaving it in would let
    demand-paging noise flip the verdict on fault-heavy ports.
    """
    from repro.core.classify import classify_result
    from repro.experiments.runner import default_runner
    from repro.sim.hierarchy import Component

    active = runner if runner is not None else default_runner()
    pair = active.pair(spec)
    limited = pair.limited
    fault_s = sum(record.timing.fault_s for record in limited.stages)
    cpu_s = max(limited.busy_time(Component.CPU) - fault_s, 0.0)
    times = ComponentTimes(
        cpu_s=cpu_s,
        copy_s=limited.busy_time(Component.COPY),
        gpu_s=max(limited.busy_time(Component.GPU) - fault_s, 0.0),
        cserial_s=min(limited.serial_launch_time(), cpu_s),
        roi_s=max(limited.roi_s - fault_s, 0.0),
    )
    estimate = component_overlap_runtime(times)
    overlap_gain = (
        1.0 - estimate.runtime_s / times.roi_s if times.roi_s > 0 else 0.0
    )
    # Migratable CPU computation = stage records executed on the CPU
    # component.  CPU *busy* time would also count launch slivers and
    # fault service, which migration cannot move.
    cpu_compute_s = sum(
        record.duration_s
        for record in limited.stages
        if record.component is Component.CPU
    )
    classification = classify_result(limited)
    return Verdict(
        overlap=overlap_gain >= MIN_OVERLAP_GAIN,
        migration=cpu_compute_s > MIGRATION_FLOOR_S,
        coordination=classification.spill_fraction >= COORDINATION_SPILL_FLOOR,
    )


def render_static_table(advices: Iterable[StaticAdvice]) -> str:
    """Registry-style table of static verdicts for the CLI."""
    from repro.experiments.report import format_table

    rows: List[Tuple[str, ...]] = []
    for advice in advices:
        rows.append(
            (
                advice.benchmark,
                "yes" if advice.verdict.overlap else "no",
                "yes" if advice.verdict.migration else "no",
                "yes" if advice.verdict.coordination else "no",
                f"{advice.overlap_gain:+.0%}",
                f"{advice.reuse_ratio:.2f}x",
            )
        )
    return format_table(
        ("Benchmark", "Overlap", "Migrate", "Coordinate", "Eq.1 gain", "Hand-off"),
        rows,
        title="Static optimization advisor (no simulation)",
    )


__all__ = [
    "COORDINATION_REUSE_RATIO",
    "COORDINATION_SPILL_FLOOR",
    "MIGRATION_FLOOR_S",
    "MIN_OVERLAP_GAIN",
    "STATIC_MIN_OVERLAP_GAIN",
    "StaticAdvice",
    "Verdict",
    "dynamic_verdict",
    "render_static_table",
    "static_advice",
    "static_component_times",
    "static_verdict",
]
