"""The RPL3xx rule family: dataflow defects and optimization opportunities.

Two kinds of findings come out of the abstract interpreter:

* **Defects** (WARNING, fixable, on by default): RPL301 dead copies and
  RPL302 fusible copy chains.  These never fire on healthy pipelines —
  the 46x2 registry is clean of them — and ``repro lint --fix`` repairs
  them mechanically.
* **Opportunities** (INFO, opt-in via ``opportunities=True``): RPL303
  overlap-blocking serialization edges, RPL304 migration candidates, and
  RPL305 cache-coordination conflicts.  These deliberately fire on
  perfectly correct bulk-synchronous pipelines — they report the paper's
  optimization headroom (Sections V-A/V-B/V-C), not bugs, so they stay
  out of default lint runs and CI gates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.dataflow.absint import DataflowAnalysis
from repro.config.system import SystemConfig, heterogeneous_processor
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import StageKind
from repro.workloads.spec import BenchmarkSpec

#: Arithmetic-intensity ridge (flop/byte) below which a CPU stage is
#: memory-bound on either engine and migrating it to the GPU-side of the
#: chip trades nothing away (paper Section V-B: migration pays when the
#: stage is communication- rather than compute-dominated).
MIGRATION_RIDGE_FLOP_PER_BYTE = 4.0

#: Minimum FLOP count before RPL304 considers a stage at all — tiny
#: convergence checks are not worth migrating regardless of intensity.
MIGRATION_MIN_FLOPS = 1.0


def _coordination_capacity_bytes(system: SystemConfig) -> int:
    """On-chip capacity a producer-consumer working set must fit into for
    cache-to-cache communication to work (CPU L2s + GPU L2)."""
    return system.cpu.total_l2_bytes + system.gpu.l2.capacity_bytes


def check_dead_copies(
    pipeline: Pipeline, analysis: DataflowAnalysis
) -> List[Diagnostic]:
    """RPL301: copies whose entire written region no one can observe.

    Region-aware superset of RPL105's reachability check: a copy is also
    dead when its destination *is* read later but every read sees bytes
    definitely overwritten by an intervening write.
    """
    findings: List[Diagnostic] = []
    for stage in pipeline.copy_stages:
        for access in stage.writes:
            if not analysis.observers_of_write(stage.name, access):
                chain = analysis.copy_chain(stage.name)
                findings.append(
                    make_diagnostic(
                        "RPL301",
                        pipeline.name,
                        f"copy {stage.name!r} writes buffer "
                        f"{access.buffer!r} but no later read or declared "
                        f"output observes any of the written bytes",
                        stage=stage.name,
                        buffer=access.buffer,
                        hint="drop the copy (repro lint --fix does this); "
                        "its bytes are overwritten or never read",
                        provenance=chain,
                    )
                )
    return findings


def check_fusible_copies(
    pipeline: Pipeline, analysis: DataflowAnalysis
) -> List[Diagnostic]:
    """RPL302: copy pairs ``A -> B -> C`` where ``B`` exists only to stage
    the transfer — the first copy's bytes are observed by exactly one
    stage, which is itself a copy reading them back out."""
    findings: List[Diagnostic] = []
    by_name = {s.name: s for s in pipeline.stages}
    for first in pipeline.copy_stages:
        if first.dst is None:
            continue
        observed: set[str] = set()
        for access in first.writes:
            for observer, _part in analysis.observers_of_write(
                first.name, access
            ):
                observed.add(observer)
        if len(observed) != 1:
            continue
        (observer_name,) = observed
        second = by_name.get(observer_name)
        if (
            second is None
            or second.kind is not StageKind.COPY
            or second.src != first.dst
        ):
            continue
        # Every byte the second copy forwards must come from the first
        # copy alone, or fusing would smuggle other writers' bytes.
        read_region = analysis.read_set(second, first.dst)
        if analysis.sole_writer(second.name, first.dst, read_region) != first.name:
            continue
        findings.append(
            make_diagnostic(
                "RPL302",
                pipeline.name,
                f"copies {first.name!r} and {second.name!r} stage buffer "
                f"{first.dst!r} only to forward it: nothing else observes "
                f"the intermediate",
                stage=first.name,
                buffer=first.dst,
                hint="fuse into one copy from the first source to the "
                "final destination (repro lint --fix does this)",
                provenance=(first.name, second.name),
            )
        )
    return findings


def check_serialization_edges(
    pipeline: Pipeline, analysis: DataflowAnalysis
) -> List[Diagnostic]:
    """RPL303: dependence edges that serialize data-independent stages of
    different kinds, blocking copy/compute (or CPU/GPU) overlap."""
    findings: List[Diagnostic] = []
    for edge in analysis.serialization_edges():
        if not edge.crosses_components:
            continue
        if edge.removal_safe:
            detail = "the edge can simply be dropped"
        else:
            detail = (
                "downstream stages rely on its transitivity, so "
                "exploiting the overlap needs chunked re-wiring"
            )
        kinds = "/".join(sorted(k.value for k in edge.kinds))
        findings.append(
            make_diagnostic(
                "RPL303",
                pipeline.name,
                f"edge {edge.src!r} -> {edge.dst!r} serializes "
                f"data-independent {kinds} stages "
                f"({len(edge.freed_pairs)} pair(s) could overlap); {detail}",
                stage=edge.dst,
                hint="overlap the engines: chunk both stages and depend "
                "per-chunk (fission_async_streams / chunk_stages), or "
                "drop the edge if removal is safe",
                provenance=(edge.src, edge.dst),
            )
        )
    return findings


def check_migration_candidates(
    pipeline: Pipeline, analysis: DataflowAnalysis
) -> List[Diagnostic]:
    """RPL304: CPU stages whose arithmetic intensity is below the ridge —
    they are bound by the bytes they touch, so running them near the data
    (computation migration, Section V-B) beats shipping the data."""
    findings: List[Diagnostic] = []
    for stage in pipeline.stages:
        if stage.kind is not StageKind.CPU:
            continue
        if stage.flops < MIGRATION_MIN_FLOPS:
            continue
        footprint = analysis.footprint(stage)
        intensity = footprint.flop_per_byte
        if intensity >= MIGRATION_RIDGE_FLOP_PER_BYTE:
            continue
        findings.append(
            make_diagnostic(
                "RPL304",
                pipeline.name,
                f"CPU stage {stage.name!r} performs "
                f"{intensity:.2f} flop/byte over "
                f"{footprint.total_bytes:.0f} touched bytes — "
                f"memory-bound, a computation-migration candidate",
                stage=stage.name,
                hint="migrate the stage next to the data it consumes "
                "(migrate_compute) instead of copying the data to it",
                provenance=(stage.name,),
            )
        )
    return findings


def check_cache_coordination(
    pipeline: Pipeline,
    analysis: DataflowAnalysis,
    system: Optional[SystemConfig] = None,
) -> List[Diagnostic]:
    """RPL305: CPU<->GPU producer-consumer working sets too large for the
    on-chip caches to carry, so cache-to-cache communication degenerates
    to DRAM round-trips without explicit coordination (Section V-C)."""
    config = system if system is not None else heterogeneous_processor()
    capacity = _coordination_capacity_bytes(config)
    findings: List[Diagnostic] = []
    seen: set[tuple[str, str, str]] = set()
    for producer_name, consumer_name, buffer in (
        pipeline.producer_consumer_edges()
    ):
        producer = pipeline.stage(producer_name)
        consumer = pipeline.stage(consumer_name)
        kinds = {producer.kind, consumer.kind}
        if kinds != {StageKind.CPU, StageKind.GPU_KERNEL}:
            continue
        communicated = analysis.communicated_bytes(producer, consumer, buffer)
        if communicated <= capacity:
            continue
        key = (producer.logical_name, consumer.logical_name, buffer)
        if key in seen:
            continue  # one finding per logical edge, not per chunk lane
        seen.add(key)
        findings.append(
            make_diagnostic(
                "RPL305",
                pipeline.name,
                f"{producer.name!r} hands {communicated:.0f} B of "
                f"{buffer!r} to {consumer.name!r} but the on-chip caches "
                f"hold {capacity} B — the working sets conflict and the "
                f"hand-off spills to DRAM",
                stage=consumer.name,
                buffer=buffer,
                hint="chunk the producer-consumer pair so each hand-off "
                "fits in cache (parallel_producer_consumer), or shrink "
                "the communicated region",
                provenance=(producer.name, consumer.name),
            )
        )
    return findings


def check_dataflow_family(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
    *,
    opportunities: bool = False,
    system: Optional[SystemConfig] = None,
) -> List[Diagnostic]:
    """All RPL3xx rules over one pipeline.

    The defect rules (RPL301/302) always run; the opportunity rules
    (RPL303-305) only when ``opportunities`` is set — they report
    optimization headroom and fire on healthy pipelines by design.
    ``spec`` is accepted for signature symmetry with the other families
    (the dataflow rules are purely structural today).
    """
    del spec  # purely structural rules; kept for family-signature symmetry
    analysis = DataflowAnalysis(pipeline)
    findings: List[Diagnostic] = []
    findings.extend(check_dead_copies(pipeline, analysis))
    findings.extend(check_fusible_copies(pipeline, analysis))
    if opportunities:
        findings.extend(check_serialization_edges(pipeline, analysis))
        findings.extend(check_migration_candidates(pipeline, analysis))
        findings.extend(check_cache_coordination(pipeline, analysis, system))
    return findings
