"""Reporters for lint findings: human-readable text and machine JSON.

The JSON document is schema-stable (``repro.lint/v2``): CI consumes it, so
field names and the meaning of ``clean`` only change with a version bump.
v2 is a strict superset of v1 — every v1 field keeps its name and meaning,
and each finding additionally carries ``fixable`` (whether ``repro lint
--fix`` can repair it) and ``provenance`` (the copy chain or stage pair
the dataflow engine derived the finding from).  Findings are emitted in
the deterministic :meth:`LintReport.sorted` order, so the document is
byte-stable for a given pipeline regardless of rule execution order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity

LINT_SCHEMA = "repro.lint/v2"


def render_text(report: LintReport, *, fail_on: Severity = Severity.ERROR) -> str:
    """Human-readable findings, grouped by pipeline, with a summary line."""
    lines: List[str] = []
    by_pipeline: Dict[str, List[Diagnostic]] = {}
    for diagnostic in report.diagnostics:
        by_pipeline.setdefault(diagnostic.pipeline, []).append(diagnostic)
    for pipeline in sorted(by_pipeline):
        lines.append(f"{pipeline}:")
        for diagnostic in by_pipeline[pipeline]:
            lines.append(f"  {diagnostic.format()}")
    counts = report.counts()
    summary = ", ".join(
        f"{counts[s.value]} {s.value}" for s in
        (Severity.ERROR, Severity.WARNING, Severity.INFO)
    )
    verdict = "clean" if report.clean(fail_on) else "FAILED"
    lines.append(
        f"lint: {len(report.pipelines)} pipeline(s) checked, {summary} "
        f"-> {verdict} (fail-on: {fail_on.value})"
    )
    return "\n".join(lines)


def report_to_dict(
    report: LintReport, *, fail_on: Severity = Severity.ERROR
) -> Dict[str, Any]:
    """The schema-stable document :func:`render_json` serializes."""
    return {
        "schema": LINT_SCHEMA,
        "fail_on": fail_on.value,
        "clean": report.clean(fail_on),
        "pipelines": list(report.pipelines),
        "counts": report.counts(),
        "findings": [
            {
                "rule": d.rule,
                "severity": d.severity.value,
                "pipeline": d.pipeline,
                "stage": d.stage,
                "buffer": d.buffer,
                "message": d.message,
                "hint": d.hint,
                "fixable": d.fixable,
                "provenance": list(d.provenance),
            }
            for d in report.sorted()
        ],
    }


def render_json(
    report: LintReport, *, fail_on: Severity = Severity.ERROR
) -> str:
    return json.dumps(report_to_dict(report, fail_on=fail_on), indent=2)
