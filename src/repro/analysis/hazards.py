"""Hazard/race detection: RPL001 (RAW), RPL002 (WAW), RPL003 (WAR).

The overlap transforms (:func:`repro.pipeline.transforms.fission_async_streams`,
:func:`repro.pipeline.transforms.parallel_producer_consumer`) deliberately
loosen dependency edges so previously bulk-synchronous stages can run
concurrently — exactly the move that introduces data races when two
unordered stages touch overlapping bytes of the same buffer and at least
one writes (paper Section V-A).  These rules flag every such pair.

Chunked software-pipeline lanes get special handling.  A chunking
transform splits a stage into region-disjoint chunks, so chunked accesses
in different lanes never overlap; accesses marked ``broadcast`` are *not*
split (every lane touches the whole region) because the modelled runtime
synchronizes them with in-memory data-ready flags.  A conflict between two
chunk-product stages (``parent`` set on both) through a broadcast access is
therefore covered by that flag protocol and suppressed, keeping
``parallel_producer_consumer`` output clean while true races still fire.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.happens import HappensBefore, accesses_overlap
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import BufferAccess, Stage


def _conflicts(
    first: Stage, second: Stage
) -> Iterator[Tuple[str, str, BufferAccess, BufferAccess]]:
    """(rule, buffer, first_access, second_access) conflicts of one pair.

    ``first`` precedes ``second`` in insertion order, which is the author's
    intended sequential order; a read in ``first`` clobbered by a write in
    ``second`` is therefore a WAR hazard, and a write in ``first`` consumed
    by a read in ``second`` is a RAW hazard.
    """
    writes_by_buffer: Dict[str, List[BufferAccess]] = {}
    for access in second.writes:
        writes_by_buffer.setdefault(access.buffer, []).append(access)

    for w1 in first.writes:
        for w2 in writes_by_buffer.get(w1.buffer, ()):
            if accesses_overlap(w1, w2):
                yield "RPL002", w1.buffer, w1, w2
        for r2 in second.reads:
            if r2.buffer == w1.buffer and accesses_overlap(w1, r2):
                yield "RPL001", w1.buffer, w1, r2
    for r1 in first.reads:
        for w2 in writes_by_buffer.get(r1.buffer, ()):
            if accesses_overlap(r1, w2):
                yield "RPL003", r1.buffer, r1, w2


def _flag_protected(first: Stage, second: Stage, a: BufferAccess, b: BufferAccess) -> bool:
    """Whether a conflict is covered by the chunked-lane flag protocol."""
    both_chunked = first.parent is not None and second.parent is not None
    return both_chunked and (a.broadcast or b.broadcast)


_HAZARD_NAMES = {
    "RPL001": "read-after-write",
    "RPL002": "write-after-write",
    "RPL003": "write-after-read",
}


def check_hazards(pipeline: Pipeline) -> List[Diagnostic]:
    """Flag every unordered stage pair with overlapping conflicting accesses."""
    findings: List[Diagnostic] = []
    hb = HappensBefore(pipeline)
    for first, second in hb.concurrent_pairs():
        for rule, buffer, a, b in _conflicts(first, second):
            if _flag_protected(first, second, a, b):
                continue
            findings.append(
                make_diagnostic(
                    rule,
                    pipeline.name,
                    f"{_HAZARD_NAMES[rule]} hazard on buffer {buffer!r}: "
                    f"stages {first.name!r} and {second.name!r} are "
                    f"unordered but touch overlapping regions "
                    f"[{a.region.start:g}, {a.region.end:g}) and "
                    f"[{b.region.start:g}, {b.region.end:g})",
                    stage=second.name,
                    buffer=buffer,
                    hint=f"add a depends_on edge ordering {first.name!r} "
                    f"and {second.name!r}, or make their regions disjoint",
                )
            )
    return findings
