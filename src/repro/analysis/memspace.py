"""Memory-space and copy consistency rules: RPL101 — RPL106.

On the discrete GPU system the two memory spaces are physically separate:
a GPU kernel can only touch GPU allocations and CPU code can only touch
CPU allocations, with the copy engine bridging them.  The limited-copy
port (paper Section III-D) erases that boundary — which is exactly when
stale mirrors, dead copies, and misaligned host allocations (the ``*``
benchmarks of Fig. 5) start to matter.  These rules machine-check both
regimes.

``temporary`` buffers are treated as device-resident regardless of their
declared space: they model GPU-only intermediates that are never copied
(see :class:`repro.pipeline.buffers.Buffer`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.happens import HappensBefore
from repro.pipeline.buffers import Buffer, MemorySpace
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import Stage, StageKind
from repro.workloads.spec import BenchmarkSpec


def _gpu_accessible(buffer: Buffer) -> bool:
    return buffer.temporary or buffer.space is MemorySpace.GPU


def _cpu_accessible(buffer: Buffer) -> bool:
    return buffer.space is MemorySpace.CPU


def check_memory_spaces(pipeline: Pipeline) -> List[Diagnostic]:
    """RPL101: on the discrete system, stages must stay in their space.

    Only meaningful before the limited-copy port; a limited-copy pipeline
    runs on the heterogeneous processor's single shared memory.
    """
    findings: List[Diagnostic] = []
    if pipeline.limited_copy:
        return findings
    for stage in pipeline.stages:
        if stage.kind is StageKind.COPY:
            continue  # the copy engine bridges the two spaces
        for access in stage.accesses:
            buffer = pipeline.buffers[access.buffer]
            if stage.kind is StageKind.GPU_KERNEL and not _gpu_accessible(buffer):
                findings.append(
                    make_diagnostic(
                        "RPL101",
                        pipeline.name,
                        f"GPU kernel {stage.name!r} touches CPU-space buffer "
                        f"{buffer.name!r} without an interposed copy",
                        stage=stage.name,
                        buffer=buffer.name,
                        hint="copy the buffer to a GPU mirror first, or mark "
                        "it temporary if it is a device-only intermediate",
                    )
                )
            elif stage.kind is StageKind.CPU and not _cpu_accessible(buffer):
                findings.append(
                    make_diagnostic(
                        "RPL101",
                        pipeline.name,
                        f"CPU stage {stage.name!r} touches GPU-space buffer "
                        f"{buffer.name!r} without an interposed copy",
                        stage=stage.name,
                        buffer=buffer.name,
                        hint="drain the buffer to its host allocation with a "
                        "d2h copy before CPU code reads it",
                    )
                )
    return findings


def check_copies(pipeline: Pipeline) -> List[Diagnostic]:
    """RPL102: copy endpoints must be distinct, size-consistent, and (for
    mirror copies on the discrete system) actually cross the space boundary."""
    findings: List[Diagnostic] = []
    for stage in pipeline.copy_stages:
        src = pipeline.buffers.get(stage.src or "")
        dst = pipeline.buffers.get(stage.dst or "")
        if src is None or dst is None:
            continue  # referential integrity is Pipeline.validate()'s job
        if src.name == dst.name:
            findings.append(
                make_diagnostic(
                    "RPL102",
                    pipeline.name,
                    f"copy {stage.name!r} copies buffer {src.name!r} onto itself",
                    stage=stage.name,
                    buffer=src.name,
                    hint="remove the copy or point it at the intended mirror",
                )
            )
            continue
        if src.size_bytes != dst.size_bytes:
            findings.append(
                make_diagnostic(
                    "RPL102",
                    pipeline.name,
                    f"copy {stage.name!r} endpoints differ in size: "
                    f"{src.name!r} is {src.size_bytes} B but {dst.name!r} "
                    f"is {dst.size_bytes} B",
                    stage=stage.name,
                    buffer=dst.name,
                    hint="size mirrors identically to the allocation they "
                    "replicate",
                )
            )
        if (
            not pipeline.limited_copy
            and stage.mirror_copy
            and src.space is dst.space
            and not (src.temporary or dst.temporary)
        ):
            findings.append(
                make_diagnostic(
                    "RPL102",
                    pipeline.name,
                    f"mirror copy {stage.name!r} does not cross the memory-"
                    f"space boundary ({src.name!r} and {dst.name!r} are both "
                    f"in {src.space.value} space)",
                    stage=stage.name,
                    buffer=dst.name,
                    hint="a mirror fill/drain must pair a CPU allocation "
                    "with its GPU mirror",
                )
            )
    return findings


def check_dead_mirrors(pipeline: Pipeline) -> List[Diagnostic]:
    """RPL103: after the limited-copy port, surviving mirrors must be pinned.

    :func:`repro.pipeline.transforms.remove_copies` keeps a mirror only when
    a residual (non-removable) copy still fills or drains it.  A mirror in a
    limited-copy pipeline that no copy references is dead weight: accesses to
    it should have been redirected to the allocation it replicates.
    """
    findings: List[Diagnostic] = []
    if not pipeline.limited_copy:
        return findings
    pinned: Set[str] = set()
    for stage in pipeline.copy_stages:
        pinned.update(name for name in (stage.src, stage.dst) if name)
    for buffer in pipeline.buffers.values():
        if buffer.is_mirror and buffer.name not in pinned:
            findings.append(
                make_diagnostic(
                    "RPL103",
                    pipeline.name,
                    f"mirror buffer {buffer.name!r} (of {buffer.mirror_of!r}) "
                    f"survives the limited-copy port but no residual copy "
                    f"references it",
                    buffer=buffer.name,
                    hint="redirect its accesses to the replicated allocation "
                    "and drop the mirror (remove_copies does this when the "
                    "mirror is not pinned by a residual copy)",
                )
            )
    return findings


def check_unused_buffers(pipeline: Pipeline) -> List[Diagnostic]:
    """RPL104: every declared allocation should be touched by some stage."""
    findings: List[Diagnostic] = []
    touched: Set[str] = set()
    for stage in pipeline.stages:
        touched.update(stage.buffers)
        touched.update(name for name in (stage.src, stage.dst) if name)
    for name in pipeline.buffers:
        if name not in touched:
            findings.append(
                make_diagnostic(
                    "RPL104",
                    pipeline.name,
                    f"buffer {name!r} is never accessed by any stage",
                    buffer=name,
                    hint="drop the allocation (it inflates the modelled "
                    "footprint) or wire it into the stage that should use it",
                )
            )
    return findings


def check_redundant_stages(pipeline: Pipeline) -> List[Diagnostic]:
    """RPL105: stages whose effect nothing can observe.

    Two shapes: a copy whose destination is never subsequently read and is
    not a declared output, and a terminal non-copy stage that performs no
    work and writes nothing (a barrier nothing waits on).
    """
    findings: List[Diagnostic] = []
    hb = HappensBefore(pipeline)
    outputs = set(pipeline.metadata.get("outputs", ()) or ())  # type: ignore[call-overload]
    has_dependents = {
        dep for stage in pipeline.stages for dep in stage.depends_on
    }
    readers: Dict[str, List[str]] = {}
    for stage in pipeline.stages:
        for access in stage.reads:
            readers.setdefault(access.buffer, []).append(stage.name)

    for stage in pipeline.stages:
        if stage.kind is StageKind.COPY:
            dst = stage.dst or ""
            if dst in outputs:
                continue
            observed = any(
                stage.name in hb.ancestors(reader)
                for reader in readers.get(dst, ())
            )
            if not observed:
                findings.append(
                    make_diagnostic(
                        "RPL105",
                        pipeline.name,
                        f"copy {stage.name!r} fills buffer {dst!r}, which no "
                        f"later stage reads and which is not a declared output",
                        stage=stage.name,
                        buffer=dst,
                        hint="drop the copy, or declare the destination in "
                        "metadata['outputs'] if it is a benchmark result",
                    )
                )
        elif (
            stage.flops == 0
            and not stage.writes
            and stage.name not in has_dependents
        ):
            findings.append(
                make_diagnostic(
                    "RPL105",
                    pipeline.name,
                    f"stage {stage.name!r} performs no work, writes nothing, "
                    f"and nothing depends on it",
                    stage=stage.name,
                    hint="remove the stage; a synchronization barrier must "
                    "have dependents to order anything",
                )
            )
    return findings


def check_misalignment(
    pipeline: Pipeline, spec: Optional[BenchmarkSpec]
) -> List[Diagnostic]:
    """RPL106: misaligned host allocations need the ``misaligned_limited_copy``
    flag (the ``*`` benchmarks of Fig. 5).

    After copy removal the GPU touches plain CPU allocations directly; when
    such an allocation is not cache-line aligned, GPU cache contention rises
    and the spec must carry the flag so Fig. 5 annotates the benchmark.
    Only checked on limited-copy pipelines with a spec to check against.
    """
    findings: List[Diagnostic] = []
    if spec is None or not pipeline.limited_copy or spec.misaligned_limited_copy:
        return findings
    flagged: Set[str] = set()
    for stage in pipeline.stages:
        if stage.kind is not StageKind.GPU_KERNEL:
            continue
        for access in stage.accesses:
            buffer = pipeline.buffers[access.buffer]
            if (
                buffer.space is MemorySpace.CPU
                and not buffer.cpu_line_aligned
                and buffer.name not in flagged
            ):
                flagged.add(buffer.name)
                findings.append(
                    make_diagnostic(
                        "RPL106",
                        pipeline.name,
                        f"GPU stage {stage.name!r} touches misaligned CPU "
                        f"allocation {buffer.name!r} but the spec does not "
                        f"set misaligned_limited_copy",
                        stage=stage.name,
                        buffer=buffer.name,
                        hint="set misaligned_limited_copy=True on the "
                        "benchmark spec (Fig. 5 '*' annotation) or align "
                        "the allocation",
                    )
                )
    return findings


def check_memspace_family(
    pipeline: Pipeline, spec: Optional[BenchmarkSpec] = None
) -> List[Diagnostic]:
    """All memory-space/copy rules (RPL101 — RPL106) over one pipeline."""
    findings: List[Diagnostic] = []
    findings.extend(check_memory_spaces(pipeline))
    findings.extend(check_copies(pipeline))
    findings.extend(check_dead_mirrors(pipeline))
    findings.extend(check_unused_buffers(pipeline))
    findings.extend(check_redundant_stages(pipeline))
    findings.extend(check_misalignment(pipeline, spec))
    return findings
