"""Static pipeline analysis: a rule-based linter over benchmark pipelines.

``repro.analysis`` machine-checks the invariants that keep the paper's
porting story trustworthy: no data races between concurrently-schedulable
stages (Section V-A overlap), no memory-space violations or stale mirrors
around the limited-copy port (Section III-D), and no drift between a
benchmark's declared Table II flags and what its pipeline structure
actually supports.  See docs/LINTING.md for the rule catalogue.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
)
from repro.analysis.happens import HappensBefore
from repro.analysis.linter import (
    LintError,
    assert_lint_clean,
    lint_benchmark,
    lint_pipeline,
    lint_pipeline_memoized,
    lint_registry,
)
from repro.analysis.memo import (
    LintMemo,
    default_memo,
    pipeline_content_hash,
    reset_default_memo,
)
from repro.analysis.report import (
    LINT_SCHEMA,
    render_json,
    render_text,
    report_to_dict,
)
from repro.analysis.spec_rules import DerivedFlags, derive_flags

__all__ = [
    "Diagnostic",
    "DerivedFlags",
    "HappensBefore",
    "LINT_SCHEMA",
    "LintError",
    "LintMemo",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "assert_lint_clean",
    "default_memo",
    "derive_flags",
    "lint_benchmark",
    "lint_pipeline",
    "lint_pipeline_memoized",
    "lint_registry",
    "pipeline_content_hash",
    "render_json",
    "render_text",
    "report_to_dict",
    "reset_default_memo",
]
