"""Diagnostic records and the rule catalogue of the static pipeline linter.

Every finding the linter can emit is declared here as a :class:`Rule` with a
stable identifier (``RPL001`` ...), a default severity, and a one-line
summary.  Rule identifiers are part of the tool's public contract: tests,
CI gates, and suppression lists key on them, so identifiers are never
reused or renumbered (retired rules are tombstoned instead).

The numbering encodes the rule family:

* ``RPL0xx`` — hazard/race detection over the stage DAG,
* ``RPL1xx`` — memory-space and copy consistency,
* ``RPL2xx`` — Table II spec-consistency (declared vs. derived flags),
* ``RPL3xx`` — dataflow findings from the region-based abstract
  interpreter (:mod:`repro.analysis.dataflow`): dead/fusible copy chains
  (defects, fixable by ``repro lint --fix``) and optimization
  *opportunities* (overlap-blocking serialization, migration candidates,
  cache-coordination conflicts) that only report when the linter runs
  with ``opportunities=True`` — they describe the paper's optimization
  headroom, not defects, and fire on perfectly healthy bulk-synchronous
  pipelines by design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.  Order: INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name (accepts the common ``warn`` shorthand)."""
        normalized = text.strip().lower()
        if normalized == "warn":
            normalized = "warning"
        for severity in cls:
            if severity.value == normalized:
                return severity
        options = ", ".join(s.value for s in cls)
        raise ValueError(f"unknown severity {text!r}; choose from {options}")


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.INFO: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
}


@dataclass(frozen=True)
class Rule:
    """One diagnostic the linter can raise.

    Attributes:
        fixable: whether ``repro lint --fix`` has a safe autofix for it.
        opportunity: whether the rule reports optimization headroom rather
            than a defect; opportunity rules are opt-in
            (``lint_pipeline(..., opportunities=True)``) so healthy
            pipelines stay warning-free by default.
    """

    id: str
    severity: Severity
    summary: str
    fixable: bool = False
    opportunity: bool = False

    def __post_init__(self) -> None:
        if not self.id.startswith("RPL"):
            raise ValueError(f"rule id {self.id!r} must start with 'RPL'")

    @property
    def category(self) -> str:
        """The rule family, derived from the stable numbering."""
        return _CATEGORIES.get(self.id[3], "unknown")


_CATEGORIES: Dict[str, str] = {
    "0": "hazard",
    "1": "memspace",
    "2": "spec",
    "3": "dataflow",
}


#: The rule catalogue.  See docs/LINTING.md for the full write-up of each
#: rule with a minimal triggering example and the paper section it guards.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        # -- family 0: hazards (paper Section V-A: overlap transforms) -------
        Rule("RPL001", Severity.ERROR,
             "read-after-write hazard between concurrent stages"),
        Rule("RPL002", Severity.ERROR,
             "write-after-write hazard between concurrent stages"),
        Rule("RPL003", Severity.ERROR,
             "write-after-read hazard between concurrent stages"),
        # -- family 1: memory spaces and copies (Section III-D) --------------
        Rule("RPL101", Severity.ERROR,
             "stage touches a buffer in the wrong memory space"),
        Rule("RPL102", Severity.ERROR,
             "copy stage endpoints are inconsistent"),
        Rule("RPL103", Severity.WARNING,
             "dead mirror buffer survives the limited-copy port"),
        Rule("RPL104", Severity.WARNING,
             "buffer is never accessed by any stage"),
        Rule("RPL105", Severity.WARNING,
             "redundant stage has no observable effect"),
        Rule("RPL106", Severity.WARNING,
             "misaligned CPU allocation lacks the Table/Fig. 5 flag"),
        # -- family 2: Table II spec consistency ------------------------------
        Rule("RPL201", Severity.WARNING,
             "declared pc_comm flag contradicts pipeline structure"),
        Rule("RPL202", Severity.WARNING,
             "declared pipe_parallel flag contradicts pipeline structure"),
        Rule("RPL203", Severity.WARNING,
             "declared regular_pc flag contradicts pipeline structure"),
        Rule("RPL204", Severity.WARNING,
             "declared sw_queue flag contradicts pipeline structure"),
        # -- family 3: dataflow (region-based abstract interpretation) --------
        Rule("RPL301", Severity.WARNING,
             "copy writes a region no later stage or output can observe",
             fixable=True),
        Rule("RPL302", Severity.WARNING,
             "adjacent copies are fusible (intermediate observed only by "
             "the second copy)",
             fixable=True),
        Rule("RPL303", Severity.INFO,
             "serialization edge orders independent stages and blocks "
             "copy/compute overlap",
             opportunity=True),
        Rule("RPL304", Severity.INFO,
             "CPU stage has low arithmetic intensity; computation "
             "migration candidate",
             opportunity=True),
        Rule("RPL305", Severity.INFO,
             "producer-consumer working set exceeds on-chip cache "
             "capacity; cache coordination conflict",
             opportunity=True),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule firing at a location.

    Attributes:
        rule: stable rule identifier (key into :data:`RULES`).
        severity: effective severity (defaults to the rule's).
        pipeline: name of the pipeline the finding is about.
        message: what is wrong, concretely.
        stage: offending stage name, when the finding anchors to a stage.
        buffer: offending buffer name, when it anchors to a buffer.
        hint: how to fix it, when the linter can tell.
        provenance: supporting stage chain (e.g. the copy chain that makes
            a copy dead, or the stages a redundant edge serializes), in
            pipeline order.
    """

    rule: str
    severity: Severity
    pipeline: str
    message: str
    stage: Optional[str] = None
    buffer: Optional[str] = None
    hint: Optional[str] = None
    provenance: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    @property
    def fixable(self) -> bool:
        """Whether ``repro lint --fix`` has a safe autofix for this finding."""
        return RULES[self.rule].fixable

    @property
    def sort_key(self) -> Tuple[str, str, str, str, str]:
        """Deterministic total order over findings.

        Anchors first (pipeline, rule, stage, buffer) then the message as
        a tiebreaker, so reports serialize byte-identically regardless of
        the order individual checks emitted their findings.
        """
        return (
            self.pipeline,
            self.rule,
            self.stage or "",
            self.buffer or "",
            self.message,
        )

    @property
    def location(self) -> str:
        parts = [self.pipeline]
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.buffer is not None:
            parts.append(f"buffer {self.buffer}")
        return ": ".join(parts)

    def format(self) -> str:
        line = (
            f"{self.rule} [{self.severity.value}] {self.location}: {self.message}"
        )
        if self.hint:
            line += f"  (hint: {self.hint})"
        return line


def make_diagnostic(
    rule_id: str,
    pipeline: str,
    message: str,
    *,
    stage: Optional[str] = None,
    buffer: Optional[str] = None,
    hint: Optional[str] = None,
    severity: Optional[Severity] = None,
    provenance: Tuple[str, ...] = (),
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the catalogue."""
    rule = RULES[rule_id]
    return Diagnostic(
        rule=rule_id,
        severity=severity if severity is not None else rule.severity,
        pipeline=pipeline,
        message=message,
        stage=stage,
        buffer=buffer,
        hint=hint,
        provenance=provenance,
    )


@dataclass
class LintReport:
    """The findings of one lint invocation over one or more pipelines."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    pipelines: List[str] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for name in other.pipelines:
            if name not in self.pipelines:
                self.pipelines.append(name)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def sorted(self) -> Tuple[Diagnostic, ...]:
        """Findings in the deterministic :attr:`Diagnostic.sort_key` order.

        Reporters serialize this order so output is byte-stable across
        runs and independent of check execution order.
        """
        return tuple(sorted(self.diagnostics, key=lambda d: d.sort_key))

    def at_least(self, threshold: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity.at_least(threshold)
        )

    def clean(self, threshold: Severity = Severity.ERROR) -> bool:
        return not self.at_least(threshold)

    def counts(self) -> Dict[str, int]:
        totals = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            totals[diagnostic.severity.value] += 1
        return totals

    def rules_fired(self) -> Tuple[str, ...]:
        return tuple(sorted({d.rule for d in self.diagnostics}))
