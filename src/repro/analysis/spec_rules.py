"""Table II spec-consistency rules: RPL201 — RPL204.

The Table II flags on :class:`repro.workloads.spec.BenchmarkSpec`
(``pc_comm``, ``pipe_parallel``, ``regular_pc``, ``sw_queue``) are declared
by hand.  This module derives what the pipeline's *structure* supports and
reports drift, so a builder edit that silently changes a benchmark's
producer-consumer character cannot leave the published table stale.

The derivations are structural necessary conditions, not full semantics
(whether stages *may* be overlapped is ultimately a property of the
algorithm, e.g. mummer's serially-dependent disk streaming), so the rules
fire only on contradictions the structure can actually prove:

* ``pc_comm`` declared False while the pipeline has producer-consumer
  edges, or declared True without any.
* ``pipe_parallel`` declared True without any producer-consumer edge to
  overlap, or declared False while stages are explicitly marked
  ``chunkable`` (a machine-readable claim of exploitable parallelism).
* ``regular_pc`` declared True without any regular-pattern P-C edge, or
  declared False despite one.
* ``sw_queue`` declared against the presence/absence of a worklist
  structure: a device-resident temporary that the same GPU kernel both
  reads (pops work) and writes with a RANDOM pattern (pushes work) — the
  Lonestar worklist idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import IRREGULAR_PATTERNS, AccessPattern
from repro.pipeline.stage import StageKind
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class DerivedFlags:
    """Table II flags as derived from pipeline structure."""

    pc_comm: bool
    regular_pc: bool
    sw_queue: bool
    has_chunkable: bool


def derive_flags(pipeline: Pipeline) -> DerivedFlags:
    """Compute the structural Table II character of a pipeline."""
    edges = pipeline.producer_consumer_edges()
    consumer_patterns: Dict[str, Set[AccessPattern]] = {}
    for stage in pipeline.stages:
        for access in stage.reads:
            consumer_patterns.setdefault(
                f"{stage.name}:{access.buffer}", set()
            ).add(access.pattern)
    regular = False
    for _producer, consumer, buffer in edges:
        patterns = consumer_patterns.get(f"{consumer}:{buffer}", set())
        if any(p not in IRREGULAR_PATTERNS for p in patterns):
            regular = True
            break

    # A software worklist is consumed and refilled by the same kernel: the
    # stage reads the queue and pushes new work with a RANDOM pattern.  A
    # temporary only *built* by one kernel and *read* by another (e.g. the
    # Barnes-Hut spatial tree) is an intermediate, not a queue.
    worklist = False
    for stage in pipeline.stages:
        if stage.kind is not StageKind.GPU_KERNEL:
            continue
        random_written = {
            a.buffer
            for a in stage.writes
            if pipeline.buffers[a.buffer].temporary
            and a.pattern is AccessPattern.RANDOM
        }
        read = {a.buffer for a in stage.reads}
        if random_written & read:
            worklist = True
            break

    return DerivedFlags(
        pc_comm=bool(edges),
        regular_pc=regular,
        sw_queue=worklist,
        has_chunkable=any(s.chunkable for s in pipeline.stages),
    )


def check_spec_consistency(
    pipeline: Pipeline, spec: BenchmarkSpec
) -> List[Diagnostic]:
    """Compare declared Table II flags against the derived structure.

    Expects the copy-form pipeline (the form Table II characterizes);
    limited-copy pipelines are skipped because copy removal deletes the
    very P-C edges the flags describe.
    """
    if pipeline.limited_copy:
        return []
    derived = derive_flags(pipeline)
    findings: List[Diagnostic] = []

    def drift(rule: str, message: str, hint: str) -> None:
        findings.append(
            make_diagnostic(rule, pipeline.name, message, hint=hint)
        )

    if spec.pc_comm and not derived.pc_comm:
        drift(
            "RPL201",
            f"spec {spec.full_name!r} declares pc_comm but the pipeline has "
            f"no producer-consumer edge",
            "clear pc_comm (and the flags that require it) or wire a stage "
            "to read what an earlier stage writes",
        )
    elif derived.pc_comm and not spec.pc_comm:
        drift(
            "RPL201",
            f"spec {spec.full_name!r} declares pc_comm=False but the "
            f"pipeline has {len(pipeline.producer_consumer_edges())} "
            f"producer-consumer edges",
            "set pc_comm=True on the spec (Table II)",
        )

    if spec.pipe_parallel and not derived.pc_comm:
        drift(
            "RPL202",
            f"spec {spec.full_name!r} declares pipe_parallel but there is "
            f"no producer-consumer edge to overlap",
            "clear pipe_parallel or introduce the stage communication it "
            "claims",
        )
    elif not spec.pipe_parallel and derived.has_chunkable:
        drift(
            "RPL202",
            f"spec {spec.full_name!r} declares pipe_parallel=False but the "
            f"pipeline marks stages chunkable (explicitly parallelizable)",
            "set pipe_parallel=True or drop the chunkable markers",
        )

    if spec.regular_pc and not derived.regular_pc:
        drift(
            "RPL203",
            f"spec {spec.full_name!r} declares regular_pc but every "
            f"producer-consumer edge is consumed irregularly",
            "clear regular_pc, or check the consumer access patterns",
        )
    elif derived.regular_pc and not spec.regular_pc:
        drift(
            "RPL203",
            f"spec {spec.full_name!r} declares regular_pc=False but the "
            f"pipeline has regular producer-consumer constructs",
            "set regular_pc=True on the spec (Table II)",
        )

    if spec.sw_queue and not derived.sw_queue:
        drift(
            "RPL204",
            f"spec {spec.full_name!r} declares sw_queue but the pipeline "
            f"has no worklist structure (RANDOM-written, GPU-read temporary)",
            "clear sw_queue or model the worklist buffer",
        )
    elif derived.sw_queue and not spec.sw_queue:
        drift(
            "RPL204",
            f"spec {spec.full_name!r} declares sw_queue=False but the "
            f"pipeline contains a worklist structure",
            "set sw_queue=True on the spec (Table II)",
        )

    return findings
