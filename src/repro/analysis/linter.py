"""Lint entry points: pipelines, benchmarks, and the whole registry.

The linter is pure analysis — it never mutates a pipeline and never
simulates.  Three entry points cover the common shapes:

* :func:`lint_pipeline` — one pipeline, optionally against its spec.
* :func:`lint_benchmark` — one spec: copy form, limited-copy form, and the
  Table II spec-consistency family.
* :func:`lint_registry` — every simulatable registered benchmark (the CI
  gate).

:func:`assert_lint_clean` is the post-transform assertion hook: transforms
and their tests call it on freshly produced pipelines so a regression in
``remove_copies`` / ``fission_async_streams`` / ``migrate_compute`` that
introduces a hazard fails loudly at the source, and
:class:`repro.experiments.runner.SweepRunner` uses it as a simulation
pre-flight.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.dataflow.rules import check_dataflow_family
from repro.analysis.diagnostics import LintReport, Severity
from repro.analysis.hazards import check_hazards
from repro.analysis.memo import LintMemo, default_memo
from repro.analysis.memspace import check_memspace_family
from repro.analysis.spec_rules import check_spec_consistency
from repro.pipeline.graph import Pipeline
from repro.pipeline.transforms import remove_copies
from repro.workloads.registry import simulatable_specs
from repro.workloads.spec import BenchmarkSpec


class LintError(ValueError):
    """Raised by :func:`assert_lint_clean` when findings reach the threshold."""

    def __init__(self, report: LintReport, threshold: Severity) -> None:
        self.report = report
        self.threshold = threshold
        offending = report.at_least(threshold)
        details = "\n".join(f"  {d.format()}" for d in offending)
        super().__init__(
            f"pipeline lint failed: {len(offending)} finding(s) at or above "
            f"{threshold.value}\n{details}"
        )


def lint_pipeline(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
    *,
    opportunities: bool = False,
) -> LintReport:
    """Run every applicable rule over one pipeline.

    The hazard, memory-space, and dataflow-defect families always run;
    the Table II family runs only when a ``spec`` is supplied and the
    pipeline is the copy form (the form Table II characterizes).
    ``opportunities`` additionally enables the RPL303-305 opportunity
    rules, which report optimization headroom rather than defects and
    fire on healthy bulk-synchronous pipelines by design.
    """
    report = LintReport(pipelines=[pipeline.name])
    report.extend(check_hazards(pipeline))
    report.extend(check_memspace_family(pipeline, spec))
    if spec is not None:
        report.extend(check_spec_consistency(pipeline, spec))
    report.extend(
        check_dataflow_family(pipeline, spec, opportunities=opportunities)
    )
    return report


def lint_pipeline_memoized(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
    *,
    opportunities: bool = False,
    memo: Optional[LintMemo] = None,
) -> LintReport:
    """Memoized :func:`lint_pipeline` keyed by pipeline content hash.

    Identical (pipeline, spec, opportunities) triples are analysed once
    per process; see :mod:`repro.analysis.memo`.  The default memo is
    shared with SweepRunner preflight and the static advisor.
    """
    active = memo if memo is not None else default_memo()
    return active.get_or_compute(
        pipeline,
        spec,
        opportunities,
        lambda: lint_pipeline(pipeline, spec, opportunities=opportunities),
    )


def lint_benchmark(
    spec: BenchmarkSpec, *, opportunities: bool = False
) -> LintReport:
    """Lint a benchmark's copy and limited-copy forms plus its spec flags."""
    pipeline = spec.pipeline()
    report = lint_pipeline(pipeline, spec, opportunities=opportunities)
    limited = remove_copies(pipeline)
    limited_report = lint_pipeline(
        limited.with_stages(
            limited.stages, name=f"{pipeline.name} [limited-copy]"
        ),
        spec,
        opportunities=opportunities,
    )
    report.merge(limited_report)
    return report


def lint_registry(
    specs: Optional[Iterable[BenchmarkSpec]] = None,
    *,
    opportunities: bool = False,
) -> LintReport:
    """Lint every simulatable benchmark (or an explicit subset)."""
    chosen: List[BenchmarkSpec] = (
        list(specs) if specs is not None else list(simulatable_specs())
    )
    report = LintReport()
    for spec in chosen:
        if not spec.simulatable:
            continue
        report.merge(lint_benchmark(spec, opportunities=opportunities))
    return report


def assert_lint_clean(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
    *,
    threshold: Severity = Severity.ERROR,
    memoize: bool = False,
) -> LintReport:
    """Lint a pipeline and raise :class:`LintError` on findings at or above
    ``threshold``.  Returns the (clean-enough) report otherwise.

    ``memoize`` routes the lint through the process-wide content-hash
    memo — the sweep preflight sets it so the 46x2 sweep (and repeated
    ``pair()`` calls) lint each distinct pipeline once.
    """
    report = (
        lint_pipeline_memoized(pipeline, spec)
        if memoize
        else lint_pipeline(pipeline, spec)
    )
    if not report.clean(threshold):
        raise LintError(report, threshold)
    return report
