"""Lint entry points: pipelines, benchmarks, and the whole registry.

The linter is pure analysis — it never mutates a pipeline and never
simulates.  Three entry points cover the common shapes:

* :func:`lint_pipeline` — one pipeline, optionally against its spec.
* :func:`lint_benchmark` — one spec: copy form, limited-copy form, and the
  Table II spec-consistency family.
* :func:`lint_registry` — every simulatable registered benchmark (the CI
  gate).

:func:`assert_lint_clean` is the post-transform assertion hook: transforms
and their tests call it on freshly produced pipelines so a regression in
``remove_copies`` / ``fission_async_streams`` / ``migrate_compute`` that
introduces a hazard fails loudly at the source, and
:class:`repro.experiments.runner.SweepRunner` uses it as a simulation
pre-flight.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.diagnostics import LintReport, Severity
from repro.analysis.hazards import check_hazards
from repro.analysis.memspace import check_memspace_family
from repro.analysis.spec_rules import check_spec_consistency
from repro.pipeline.graph import Pipeline
from repro.pipeline.transforms import remove_copies
from repro.workloads.registry import simulatable_specs
from repro.workloads.spec import BenchmarkSpec


class LintError(ValueError):
    """Raised by :func:`assert_lint_clean` when findings reach the threshold."""

    def __init__(self, report: LintReport, threshold: Severity) -> None:
        self.report = report
        self.threshold = threshold
        offending = report.at_least(threshold)
        details = "\n".join(f"  {d.format()}" for d in offending)
        super().__init__(
            f"pipeline lint failed: {len(offending)} finding(s) at or above "
            f"{threshold.value}\n{details}"
        )


def lint_pipeline(
    pipeline: Pipeline, spec: Optional[BenchmarkSpec] = None
) -> LintReport:
    """Run every applicable rule over one pipeline.

    The hazard and memory-space families always run; the Table II family
    runs only when a ``spec`` is supplied and the pipeline is the copy form
    (the form Table II characterizes).
    """
    report = LintReport(pipelines=[pipeline.name])
    report.extend(check_hazards(pipeline))
    report.extend(check_memspace_family(pipeline, spec))
    if spec is not None:
        report.extend(check_spec_consistency(pipeline, spec))
    return report


def lint_benchmark(spec: BenchmarkSpec) -> LintReport:
    """Lint a benchmark's copy and limited-copy forms plus its spec flags."""
    pipeline = spec.pipeline()
    report = lint_pipeline(pipeline, spec)
    limited = remove_copies(pipeline)
    limited_report = lint_pipeline(
        limited.with_stages(
            limited.stages, name=f"{pipeline.name} [limited-copy]"
        ),
        spec,
    )
    report.merge(limited_report)
    return report


def lint_registry(
    specs: Optional[Iterable[BenchmarkSpec]] = None,
) -> LintReport:
    """Lint every simulatable benchmark (or an explicit subset)."""
    chosen: List[BenchmarkSpec] = (
        list(specs) if specs is not None else list(simulatable_specs())
    )
    report = LintReport()
    for spec in chosen:
        if not spec.simulatable:
            continue
        report.merge(lint_benchmark(spec))
    return report


def assert_lint_clean(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
    *,
    threshold: Severity = Severity.ERROR,
) -> LintReport:
    """Lint a pipeline and raise :class:`LintError` on findings at or above
    ``threshold``.  Returns the (clean-enough) report otherwise."""
    report = lint_pipeline(pipeline, spec)
    if not report.clean(threshold):
        raise LintError(report, threshold)
    return report
