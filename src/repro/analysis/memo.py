"""Content-hash memoization of lint reports.

A sweep preflights 46 benchmarks x 2 forms, several of which share
pipeline structure (scale sweeps, repeated ``pair()`` calls, the static
advisor walking the same registry), and linting is pure: the report is a
function of (pipeline, spec, opportunities) alone.  :class:`LintMemo`
keys reports by a SHA-256 over the canonical JSON of exactly those
inputs — the same canonicalization the persistent result cache uses —
so identical pipelines are linted once per process.

The memo is in-memory only: lint runs in milliseconds, so the win is
skipping *re-analysis inside one process* (a 46x2 preflight plus advisor
pass would otherwise lint many pipelines twice), not surviving restarts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.analysis.diagnostics import LintReport
from repro.pipeline.graph import Pipeline
from repro.sim.resultcache import canonical, spec_fingerprint
from repro.workloads.spec import BenchmarkSpec


def pipeline_content_hash(
    pipeline: Pipeline,
    spec: Optional[BenchmarkSpec] = None,
    *,
    opportunities: bool = False,
) -> str:
    """Stable digest of everything a lint run's output depends on."""
    payload = {
        "pipeline": canonical(pipeline),
        "spec": spec_fingerprint(spec) if spec is not None else None,
        "opportunities": opportunities,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class LintMemo:
    """In-process cache of lint reports keyed by pipeline content hash."""

    hits: int = 0
    misses: int = 0
    _entries: Dict[str, LintReport] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self,
        pipeline: Pipeline,
        spec: Optional[BenchmarkSpec],
        opportunities: bool,
        compute: Callable[[], LintReport],
    ) -> LintReport:
        """Return the memoized report, computing and storing it on miss.

        Always hands back a fresh :class:`LintReport` copy: reports are
        mutable (callers merge them), and a shared instance would let one
        caller's merge pollute every later hit.
        """
        key = pipeline_content_hash(
            pipeline, spec, opportunities=opportunities
        )
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            cached = compute()
            self._entries[key] = cached
        else:
            self.hits += 1
        return LintReport(
            diagnostics=list(cached.diagnostics),
            pipelines=list(cached.pipelines),
        )


#: The process-wide memo shared by SweepRunner preflight and the static
#: advisor.  Tests that need isolation call :func:`reset_default_memo`.
_DEFAULT_MEMO = LintMemo()


def default_memo() -> LintMemo:
    return _DEFAULT_MEMO


def reset_default_memo() -> None:
    _DEFAULT_MEMO.clear()
